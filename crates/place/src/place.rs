//! Global placement (parallel recursive min-cut), row legalization, and
//! region-windowed simulated-annealing refinement, behind the
//! incremental [`Placer`] session type.
//!
//! The placer is organised like the timing kernel: one expensive full
//! construction ([`Placer::new`]), then cheap incremental maintenance
//! ([`Placer::replace_cell`] re-legalizes only the touched row window,
//! [`Placer::apply`] re-indexes after a netlist compaction). The free
//! function [`place`] remains as a thin one-shot wrapper.
//!
//! Parallelism runs on the shared `smt_base::par::parallel_map` pool in
//! two places — the independent sub-regions of each recursive-bisection
//! level, and the disjoint annealing windows — and is deterministic for
//! a fixed seed at *any* thread count: every region and window carries
//! its own seed, workers never share mutable state, and results are
//! committed in item order.

use crate::fm::{bipartition, FmConfig, Hypergraph};
use smt_base::fingerprint::Fnv64;
use smt_base::geom::{Point, Rect};
use smt_base::par::parallel_map;
use smt_base::rng::SplitMix64;
use smt_cells::library::Library;
use smt_netlist::netlist::{CompactMap, InstId, NetDriver, NetId, Netlist, PortDir};
use std::sync::atomic::{AtomicU64, Ordering};

/// Placer options.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// Target row utilization (fraction of row sites occupied).
    pub utilization: f64,
    /// Stop recursive bisection at regions of this many cells.
    pub min_partition: usize,
    /// Simulated-annealing moves per cell (0 disables refinement).
    pub anneal_moves_per_cell: usize,
    /// RNG seed (placement is deterministic for a fixed seed).
    pub seed: u64,
    /// Target cells per annealing window. Designs larger than one
    /// window anneal as a grid of independent windows in parallel;
    /// smaller designs keep the single global annealing chain.
    pub anneal_window: usize,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            utilization: 0.70,
            min_partition: 12,
            anneal_moves_per_cell: 40,
            seed: 42,
            anneal_window: 512,
        }
    }
}

/// Why a [`PlacerConfig`] cannot produce a placement.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// Utilization must be a finite fraction in `(0, 1]`; zero (or
    /// negative, or NaN) utilization asks for an infinite die.
    BadUtilization {
        /// The rejected value.
        value: f64,
    },
    /// `min_partition` of zero never terminates the bisection.
    ZeroPartition,
    /// `anneal_window` of zero cannot hold any cell.
    ZeroWindow,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::BadUtilization { value } => {
                write!(f, "placer utilization must be in (0, 1], got {value}")
            }
            PlaceError::ZeroPartition => {
                f.write_str("placer min_partition must be at least 1 cell")
            }
            PlaceError::ZeroWindow => f.write_str("placer anneal_window must be at least 1 cell"),
        }
    }
}

impl std::error::Error for PlaceError {}

impl PlacerConfig {
    /// Checks the config invariants (mirrors `FamilyConfig::validate` in
    /// `smt-circuits`): degenerate values error here instead of hanging
    /// the bisection or exploding the floorplan.
    ///
    /// # Errors
    ///
    /// [`PlaceError`] naming the offending knob.
    pub fn validate(&self) -> Result<(), PlaceError> {
        if !(self.utilization.is_finite() && self.utilization > 0.0 && self.utilization <= 1.0) {
            return Err(PlaceError::BadUtilization {
                value: self.utilization,
            });
        }
        if self.min_partition == 0 {
            return Err(PlaceError::ZeroPartition);
        }
        if self.anneal_window == 0 {
            return Err(PlaceError::ZeroWindow);
        }
        Ok(())
    }

    /// Stable content fingerprint over every placement-affecting knob —
    /// one third of a placement-cache key (with the netlist and library
    /// fingerprints).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_f64(self.utilization);
        h.write_usize(self.min_partition);
        h.write_usize(self.anneal_moves_per_cell);
        h.write_u64(self.seed);
        h.write_usize(self.anneal_window);
        h.finish()
    }
}

/// Lifetime count of *full* placements performed by this process
/// ([`Placer::new`] / [`place`]; cache hits and incremental updates do
/// not count). Lets tests assert that warm paths — what-if forks,
/// cached suite runs — really stopped re-placing.
pub fn full_place_runs() -> u64 {
    FULL_PLACE_RUNS.load(Ordering::Relaxed)
}

static FULL_PLACE_RUNS: AtomicU64 = AtomicU64::new(0);

/// A legalized placement: instance locations on rows plus port locations
/// on the die boundary.
#[derive(Debug)]
pub struct Placement {
    /// Location of each instance slot (tombstoned slots keep their last
    /// position; nobody queries them).
    pub locs: Vec<Point>,
    /// Location of each port, on the die edge.
    pub port_locs: Vec<Point>,
    /// Die outline.
    pub die: Rect,
    /// Row y-coordinates.
    pub row_ys: Vec<f64>,
    /// Whether each slot was ever deliberately placed (initial placement
    /// or [`Placement::set_loc`]). Parallel to `locs`.
    pub(crate) placed: Vec<bool>,
    /// Times [`Placement::loc`] fell back to the die centre for a
    /// never-placed instance — a flow stage created a cell and forgot to
    /// place it.
    pub(crate) fallback_hits: AtomicU64,
}

impl Clone for Placement {
    fn clone(&self) -> Self {
        Placement {
            locs: self.locs.clone(),
            port_locs: self.port_locs.clone(),
            die: self.die,
            row_ys: self.row_ys.clone(),
            placed: self.placed.clone(),
            fallback_hits: AtomicU64::new(self.fallback_hits.load(Ordering::Relaxed)),
        }
    }
}

impl Placement {
    /// Assembles a placement from already-legal parts (the DEF reader,
    /// hand-built test fixtures). Every slot in `locs` counts as
    /// deliberately placed.
    pub fn from_parts(
        locs: Vec<Point>,
        port_locs: Vec<Point>,
        die: Rect,
        row_ys: Vec<f64>,
    ) -> Self {
        let placed = vec![true; locs.len()];
        Placement {
            locs,
            port_locs,
            die,
            row_ys,
            placed,
            fallback_hits: AtomicU64::new(0),
        }
    }

    /// Location of an instance. Instances created after placement that
    /// were never given a location via [`Placement::set_loc`] read as the
    /// die centre (flow stages place the cells they create; the fallback
    /// keeps estimation robust while they do) — every such read is
    /// counted in [`Placement::fallback_hits`]. Use
    /// [`Placement::try_loc`] where an unplaced cell should be an error
    /// instead of a silent default.
    pub fn loc(&self, inst: InstId) -> Point {
        match self.try_loc(inst) {
            Some(p) => p,
            None => {
                self.fallback_hits.fetch_add(1, Ordering::Relaxed);
                self.die.center()
            }
        }
    }

    /// Location of an instance, or `None` when it was never placed.
    pub fn try_loc(&self, inst: InstId) -> Option<Point> {
        let i = inst.index();
        if *self.placed.get(i)? {
            self.locs.get(i).copied()
        } else {
            None
        }
    }

    /// Times [`Placement::loc`] silently defaulted to the die centre.
    /// A non-zero count after a flow means some stage created cells
    /// without placing them.
    pub fn fallback_hits(&self) -> u64 {
        self.fallback_hits.load(Ordering::Relaxed)
    }

    /// Records (or overrides) the location of an instance — used by the
    /// later flow stages (CTS buffers, switches, holders, ECO cells) that
    /// create instances after initial placement. Grows the table as needed.
    pub fn set_loc(&mut self, inst: InstId, loc: Point) {
        if inst.index() >= self.locs.len() {
            self.locs.resize(inst.index() + 1, Point::ORIGIN);
            self.placed.resize(inst.index() + 1, false);
        }
        self.locs[inst.index()] = loc;
        self.placed[inst.index()] = true;
    }

    /// Location of a port. Ports created after placement (e.g. the `mte`
    /// enable added by the SMT transforms) default to the left die edge.
    pub fn port_loc(&self, port: smt_netlist::netlist::PortId) -> Point {
        self.port_locs
            .get(port.index())
            .copied()
            .unwrap_or(Point::new(
                self.die.lo.x,
                (self.die.lo.y + self.die.hi.y) / 2.0,
            ))
    }

    /// Bounding box of a net's pins (instance centers + port locations).
    pub fn net_bbox(&self, netlist: &Netlist, net: NetId) -> Option<Rect> {
        let n = netlist.net(net);
        let mut pts: Vec<Point> = Vec::new();
        if let Some(NetDriver::Inst(pr)) = n.driver {
            pts.push(self.loc(pr.inst));
        }
        if let Some(NetDriver::Port(p)) = n.driver {
            pts.push(self.port_loc(p));
        }
        for pr in &n.loads {
            pts.push(self.loc(pr.inst));
        }
        for p in &n.port_loads {
            pts.push(self.port_loc(*p));
        }
        Rect::bounding(pts)
    }

    /// Half-perimeter wirelength of one net, µm.
    pub fn net_hpwl(&self, netlist: &Netlist, net: NetId) -> f64 {
        self.net_bbox(netlist, net)
            .map(|r| r.half_perimeter())
            .unwrap_or(0.0)
    }

    /// Total HPWL, µm.
    pub fn hpwl(&self, netlist: &Netlist) -> f64 {
        netlist
            .nets()
            .map(|(id, _)| self.net_hpwl(netlist, id))
            .sum()
    }
}

/// Width of a cell in placement sites.
fn cell_sites(lib: &Library, netlist: &Netlist, inst: InstId) -> usize {
    let cell = lib.cell(netlist.inst(inst).cell);
    let w = cell.area.um2() / lib.tech.row_height_um;
    (w / lib.tech.site_width_um).ceil().max(1.0) as usize
}

/// Places a netlist: recursive FM bisection for global positions, Tetris
/// row legalization, then annealing refinement. Deterministic for a fixed
/// seed. Thin wrapper over [`Placer::new`] for one-shot callers.
///
/// # Panics
///
/// Panics when `config` is invalid ([`PlacerConfig::validate`]); use
/// [`Placer::new`] where the error should surface as a value.
pub fn place(netlist: &Netlist, lib: &Library, config: &PlacerConfig) -> Placement {
    Placer::new(netlist, lib, config)
        .expect("invalid placer config")
        .into_placement()
}

// ---------------------------------------------------------------------------
// The Placer session
// ---------------------------------------------------------------------------

/// An incremental placement session, mirroring `IncrementalSta`: one
/// expensive full placement at construction, then window-local
/// maintenance as the netlist evolves. Clones freely (flow checkpoints
/// fork it with the rest of the design state).
#[derive(Debug, Clone)]
pub struct Placer {
    config: PlacerConfig,
    placement: Placement,
}

impl Placer {
    /// Runs a full placement on the shared worker pool (one worker per
    /// core).
    ///
    /// # Errors
    ///
    /// [`PlaceError`] when the config is invalid; nothing is placed.
    pub fn new(
        netlist: &Netlist,
        lib: &Library,
        config: &PlacerConfig,
    ) -> Result<Self, PlaceError> {
        Self::with_threads(netlist, lib, config, 0)
    }

    /// Like [`Placer::new`] with an explicit worker cap (`0` = one per
    /// core). The placement is bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// [`PlaceError`] when the config is invalid.
    pub fn with_threads(
        netlist: &Netlist,
        lib: &Library,
        config: &PlacerConfig,
        threads: usize,
    ) -> Result<Self, PlaceError> {
        config.validate()?;
        FULL_PLACE_RUNS.fetch_add(1, Ordering::Relaxed);
        let placement = full_place(netlist, lib, config, threads);
        Ok(Placer {
            config: config.clone(),
            placement,
        })
    }

    /// Wraps an existing placement (a cache hit, a DEF import) in a
    /// session without re-placing anything.
    pub fn from_placement(placement: Placement, config: PlacerConfig) -> Self {
        Placer { config, placement }
    }

    /// The session's configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// The current placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Mutable access for stages that place the cells they create
    /// ([`Placement::set_loc`]).
    pub fn placement_mut(&mut self) -> &mut Placement {
        &mut self.placement
    }

    /// Unwraps the placement, ending the session.
    pub fn into_placement(self) -> Placement {
        self.placement
    }

    /// Window-local incremental re-place after `inst`'s cell type (and
    /// so possibly its footprint) changed via `Netlist::replace_cell`:
    /// re-packs only the row holding `inst`, leaving every other row
    /// untouched. An unplaced instance is first dropped at the die
    /// centre. O(row) — never a full re-place.
    pub fn replace_cell(&mut self, netlist: &Netlist, lib: &Library, inst: InstId) {
        if self.placement.try_loc(inst).is_none() {
            let c = self.placement.die.center();
            let y = self.nearest_row_y(c.y);
            self.placement.set_loc(inst, Point::new(c.x, y));
        }
        let y = self.nearest_row_y(self.placement.loc(inst).y);
        self.repack_row(netlist, lib, y);
    }

    /// [`Placer::replace_cell`] for a batch: each touched row is
    /// re-packed once, in ascending row order.
    pub fn replace_cells(&mut self, netlist: &Netlist, lib: &Library, insts: &[InstId]) {
        let mut rows: Vec<u64> = Vec::new();
        for &inst in insts {
            if self.placement.try_loc(inst).is_none() {
                let c = self.placement.die.center();
                let y = self.nearest_row_y(c.y);
                self.placement.set_loc(inst, Point::new(c.x, y));
            }
            rows.push(self.nearest_row_y(self.placement.loc(inst).y).to_bits());
        }
        rows.sort_unstable();
        rows.dedup();
        for y in rows {
            self.repack_row(netlist, lib, f64::from_bits(y));
        }
    }

    /// Re-indexes the placement after `Netlist::compact()` squeezed out
    /// tombstones: slot `old` moves to `map.new_id(old)`, dead slots are
    /// dropped. The fallback-hit counter carries over.
    pub fn apply(&mut self, map: &CompactMap) {
        let live = (0..map.old_capacity())
            .filter(|&i| map.new_id(InstId(i as u32)).is_some())
            .count();
        let mut locs = vec![Point::ORIGIN; live];
        let mut placed = vec![false; live];
        for old in 0..map.old_capacity() {
            let Some(new) = map.new_id(InstId(old as u32)) else {
                continue;
            };
            if old < self.placement.locs.len() && self.placement.placed[old] {
                locs[new.index()] = self.placement.locs[old];
                placed[new.index()] = true;
            }
        }
        self.placement.locs = locs;
        self.placement.placed = placed;
    }

    fn nearest_row_y(&self, y: f64) -> f64 {
        let mut best = y;
        let mut best_d = f64::INFINITY;
        for &ry in &self.placement.row_ys {
            let d = (ry - y).abs();
            if d < best_d {
                best_d = d;
                best = ry;
            }
        }
        best
    }

    /// Deterministically re-packs every cell sitting within half a row
    /// height of `row_y` onto that row, left to right in current-x
    /// order (instance index breaks ties).
    fn repack_row(&mut self, netlist: &Netlist, lib: &Library, row_y: f64) {
        let half = lib.tech.row_height_um / 2.0;
        let mut members: Vec<(InstId, f64)> = netlist
            .instances()
            .filter_map(|(id, _)| {
                self.placement
                    .try_loc(id)
                    .filter(|p| (p.y - row_y).abs() < half)
                    .map(|p| (id, p.x))
            })
            .collect();
        members.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let site_w = lib.tech.site_width_um;
        let mut x = 0.0;
        for (id, _) in members {
            let w = cell_sites(lib, netlist, id) as f64 * site_w;
            self.placement.set_loc(id, Point::new(x + w / 2.0, row_y));
            x += w;
        }
    }
}

// ---------------------------------------------------------------------------
// Full placement
// ---------------------------------------------------------------------------

/// One bisection work item: a region of the die, the cells assigned to
/// it, and the sub-hypergraph restricted to those cells (net pin lists
/// in *member-local* indices, inherited filtered from the parent so the
/// per-level cost is proportional to the level's pins, not to
/// `regions × all nets`).
struct RegionTask {
    /// Dense cell indices (into the placement-order instance list).
    members: Vec<usize>,
    /// Nets with ≥2 member pins, as indices into `members`.
    nets: Vec<Vec<usize>>,
    rect: Rect,
    seed: u64,
}

/// Splits one region: FM bipartition, halve the rect along its long
/// axis, and filter the net lists down to each child. Pure — safe to
/// fan out across regions.
fn split_region(task: &RegionTask, weights: &[f64]) -> Vec<RegionTask> {
    let w: Vec<f64> = task.members.iter().map(|&m| weights[m]).collect();
    let h = Hypergraph::new(task.members.len(), task.nets.clone(), w);
    let side = bipartition(
        &h,
        FmConfig {
            seed: task.seed,
            ..FmConfig::default()
        },
    );
    let region = task.rect;
    let (r0, r1) = if region.width() >= region.height() {
        let mid = (region.lo.x + region.hi.x) / 2.0;
        (
            Rect::new(region.lo, Point::new(mid, region.hi.y)),
            Rect::new(Point::new(mid, region.lo.y), region.hi),
        )
    } else {
        let mid = (region.lo.y + region.hi.y) / 2.0;
        (
            Rect::new(region.lo, Point::new(region.hi.x, mid)),
            Rect::new(Point::new(region.lo.x, mid), region.hi),
        )
    };
    let mut left = Vec::new();
    let mut right = Vec::new();
    // Old-local → child-local translation for the net filter below.
    let mut child_local = vec![usize::MAX; task.members.len()];
    for (li, &m) in task.members.iter().enumerate() {
        if side[li] {
            child_local[li] = right.len();
            right.push(m);
        } else {
            child_local[li] = left.len();
            left.push(m);
        }
    }
    let mut left_nets = Vec::new();
    let mut right_nets = Vec::new();
    for net in &task.nets {
        let mut l = Vec::new();
        let mut r = Vec::new();
        for &p in net {
            if side[p] {
                r.push(child_local[p]);
            } else {
                l.push(child_local[p]);
            }
        }
        if l.len() >= 2 {
            left_nets.push(l);
        }
        if r.len() >= 2 {
            right_nets.push(r);
        }
    }
    vec![
        RegionTask {
            members: left,
            nets: left_nets,
            rect: r0,
            seed: task.seed.wrapping_mul(6364136223846793005).wrapping_add(1),
        },
        RegionTask {
            members: right,
            nets: right_nets,
            rect: r1,
            seed: task.seed.wrapping_mul(6364136223846793005).wrapping_add(2),
        },
    ]
}

/// Level-synchronous parallel recursive bisection: each level's regions
/// are independent `(members, nets, rect, seed)` items fanned out on
/// the shared pool. Deterministic at any thread count — every region's
/// output depends only on its own seeded content, and children are
/// collected in item order.
fn bisect_targets(
    n: usize,
    all_nets: Vec<Vec<usize>>,
    weights: &[f64],
    die: Rect,
    config: &PlacerConfig,
    threads: usize,
) -> Vec<Point> {
    let mut targets = vec![Point::ORIGIN; n];
    let mut frontier = vec![RegionTask {
        members: (0..n).collect(),
        nets: all_nets,
        rect: die,
        seed: config.seed,
    }];
    while !frontier.is_empty() {
        let mut work = Vec::new();
        for task in frontier.drain(..) {
            if task.members.len() <= config.min_partition {
                let c = task.rect.center();
                for &m in &task.members {
                    targets[m] = c;
                }
            } else {
                work.push(task);
            }
        }
        if work.is_empty() {
            break;
        }
        frontier = parallel_map(&work, threads, |task: &RegionTask| {
            split_region(task, weights)
        })
        .into_iter()
        .flatten()
        .collect();
    }
    targets
}

fn full_place(
    netlist: &Netlist,
    lib: &Library,
    config: &PlacerConfig,
    threads: usize,
) -> Placement {
    let insts: Vec<InstId> = netlist.instances().map(|(id, _)| id).collect();
    let site_w = lib.tech.site_width_um;
    let row_h = lib.tech.row_height_um;

    // ---- floorplan ---------------------------------------------------
    let total_sites: usize = insts.iter().map(|&i| cell_sites(lib, netlist, i)).sum();
    let needed = (total_sites as f64 / config.utilization).ceil().max(4.0);
    // Square-ish die: rows * sites_per_row = needed, rows*row_h ≈ spr*site_w.
    let rows = ((needed * site_w / row_h).sqrt().ceil() as usize).max(1);
    let sites_per_row = (needed / rows as f64).ceil() as usize + 2;
    let die = Rect::new(
        Point::ORIGIN,
        Point::new(sites_per_row as f64 * site_w, rows as f64 * row_h),
    );
    let row_ys: Vec<f64> = (0..rows).map(|r| (r as f64 + 0.5) * row_h).collect();

    // ---- global placement: parallel recursive bisection ---------------
    // Map instance -> dense index.
    let dense: Vec<usize> = insts.iter().map(|i| i.index()).collect();
    let mut dense_of = vec![usize::MAX; netlist.inst_capacity()];
    for (d, &slot) in dense.iter().enumerate() {
        dense_of[slot] = d;
    }
    let weights: Vec<f64> = insts
        .iter()
        .map(|&i| cell_sites(lib, netlist, i) as f64)
        .collect();

    // Hypergraph over all cells (ports ignored: they pull via annealing).
    let mut all_nets: Vec<Vec<usize>> = Vec::new();
    for (_, net) in netlist.nets() {
        let mut cells: Vec<usize> = Vec::new();
        if let Some(NetDriver::Inst(pr)) = net.driver {
            cells.push(dense_of[pr.inst.index()]);
        }
        for pr in &net.loads {
            cells.push(dense_of[pr.inst.index()]);
        }
        cells.sort_unstable();
        cells.dedup();
        if cells.len() >= 2 {
            all_nets.push(cells);
        }
    }

    let targets = bisect_targets(insts.len(), all_nets, &weights, die, config, threads);

    // ---- legalization: Tetris packing per row -------------------------
    // Assign cells to the nearest row by target y, then pack by target x.
    let mut row_members: Vec<Vec<usize>> = vec![Vec::new(); rows];
    let mut order: Vec<usize> = (0..insts.len()).collect();
    order.sort_by(|&a, &b| targets[a].x.total_cmp(&targets[b].x));
    let mut row_fill = vec![0usize; rows];
    for &d in &order {
        let want_row = ((targets[d].y / row_h) as usize).min(rows - 1);
        // Find the least-filled row near the wanted one.
        let mut best_row = want_row;
        let mut best_score = f64::INFINITY;
        for (r, &fill) in row_fill.iter().enumerate() {
            let dist = (r as f64 - want_row as f64).abs();
            let fill_pen = fill as f64 / sites_per_row as f64;
            let score = dist
                + 8.0 * fill_pen.powi(2) * rows as f64 * 0.25
                + if fill + sites(&weights, d) > sites_per_row {
                    1e9
                } else {
                    0.0
                };
            if score < best_score {
                best_score = score;
                best_row = r;
            }
        }
        row_fill[best_row] += sites(&weights, d);
        row_members[best_row].push(d);
    }

    let mut locs = vec![Point::ORIGIN; netlist.inst_capacity()];
    let mut placed = vec![false; netlist.inst_capacity()];
    for (r, members) in row_members.iter().enumerate() {
        let mut x = 0.0;
        for &d in members {
            let w = sites(&weights, d) as f64 * site_w;
            let center = Point::new(x + w / 2.0, row_ys[r]);
            locs[insts[d].index()] = center;
            placed[insts[d].index()] = true;
            x += w;
        }
    }

    // ---- ports on the boundary ----------------------------------------
    let n_ports = netlist.ports().count().max(1);
    let mut port_locs = Vec::with_capacity(n_ports);
    let mut in_i = 0usize;
    let mut out_i = 0usize;
    let n_in = netlist
        .ports()
        .filter(|(_, p)| p.dir == PortDir::Input)
        .count()
        .max(1);
    let n_out = (n_ports - n_in.min(n_ports)).max(1);
    for (_, p) in netlist.ports() {
        let loc = match p.dir {
            PortDir::Input => {
                in_i += 1;
                Point::new(
                    die.lo.x,
                    die.lo.y + die.height() * in_i as f64 / (n_in + 1) as f64,
                )
            }
            PortDir::Output => {
                out_i += 1;
                Point::new(
                    die.hi.x,
                    die.lo.y + die.height() * out_i as f64 / (n_out + 1) as f64,
                )
            }
        };
        port_locs.push(loc);
    }

    let mut placement = Placement {
        locs,
        port_locs,
        die,
        row_ys,
        placed,
        fallback_hits: AtomicU64::new(0),
    };

    // ---- annealing refinement: same-width swaps ------------------------
    if config.anneal_moves_per_cell > 0 && insts.len() >= 2 {
        anneal_windows(netlist, &insts, &weights, &mut placement, config, threads);
    }
    placement
}

fn sites(weights: &[f64], d: usize) -> usize {
    weights[d] as usize
}

// ---------------------------------------------------------------------------
// Annealing
// ---------------------------------------------------------------------------

/// Region-windowed annealing refinement. Designs up to one
/// `anneal_window` keep the original single global annealing chain
/// (bit-identical to the pre-window placer); larger designs are cut
/// into a grid of disjoint windows annealed independently — each window
/// worker owns a snapshot, swaps only its own members, and derives its
/// RNG from the window index, so the result is deterministic at any
/// thread count.
fn anneal_windows(
    netlist: &Netlist,
    insts: &[InstId],
    weights: &[f64],
    placement: &mut Placement,
    config: &PlacerConfig,
    threads: usize,
) {
    let n = insts.len();
    let wanted = n.div_ceil(config.anneal_window.max(1));
    let base_seed = config.seed ^ 0x5157_1057;
    if wanted <= 1 {
        let members: Vec<usize> = (0..n).collect();
        let temp0 = placement.die.half_perimeter() * 0.05;
        let moves = config.anneal_moves_per_cell * n;
        anneal_one(
            netlist, insts, weights, placement, &members, base_seed, temp0, moves,
        );
        return;
    }

    // A square-ish wx × wy grid of windows over the die.
    let wx = (wanted as f64).sqrt().ceil().max(1.0) as usize;
    let wy = wanted.div_ceil(wx);
    let die = placement.die;
    let step_x = die.width() / wx as f64;
    let step_y = die.height() / wy as f64;
    let mut members_of: Vec<Vec<usize>> = vec![Vec::new(); wx * wy];
    for (d, &id) in insts.iter().enumerate() {
        let p = placement.locs[id.index()];
        let cx = (((p.x - die.lo.x) / step_x) as usize).min(wx - 1);
        let cy = (((p.y - die.lo.y) / step_y) as usize).min(wy - 1);
        members_of[cy * wx + cx].push(d);
    }
    let window_hp = (step_x + step_y) * 0.05;
    let windows: Vec<(usize, Vec<usize>)> = members_of
        .into_iter()
        .enumerate()
        .filter(|(_, m)| m.len() >= 2)
        .collect();
    // Each worker anneals a clone restricted to its window and reports
    // the member slots it settled; windows are disjoint by construction
    // so the commits never conflict.
    let refined: Vec<Vec<(usize, Point)>> =
        parallel_map(&windows, threads, |(w, members): &(usize, Vec<usize>)| {
            let mut scratch = placement.clone();
            let seed = base_seed.wrapping_add((*w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let moves = config.anneal_moves_per_cell * members.len();
            anneal_one(
                netlist,
                insts,
                weights,
                &mut scratch,
                members,
                seed,
                window_hp,
                moves,
            );
            members
                .iter()
                .map(|&d| (insts[d].index(), scratch.locs[insts[d].index()]))
                .collect()
        });
    for updates in refined {
        for (slot, p) in updates {
            placement.locs[slot] = p;
        }
    }
}

/// One simulated-annealing chain over equal-footprint position swaps
/// among `members` (dense indices). Keeps the placement legal by
/// construction. This is the original global annealing loop, seeded and
/// scoped per window.
#[allow(clippy::too_many_arguments)]
fn anneal_one(
    netlist: &Netlist,
    insts: &[InstId],
    weights: &[f64],
    placement: &mut Placement,
    members: &[usize],
    seed: u64,
    temp0: f64,
    moves: usize,
) {
    let mut rng = SplitMix64::new(seed);
    // Group dense indices by footprint so swaps stay legal. Ordered map:
    // the group iteration order feeds the seeded RNG's swap choices, so a
    // hash map's per-instance ordering would break the placement
    // determinism that checkpoints and sweeps rely on.
    let mut by_width: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for &d in members {
        by_width.entry(weights[d] as usize).or_default().push(d);
    }
    let groups: Vec<&Vec<usize>> = by_width.values().filter(|g| g.len() >= 2).collect();
    if groups.is_empty() {
        return;
    }

    // Cost of all nets touching an instance.
    let inst_nets = |inst: InstId| -> Vec<NetId> {
        let i = netlist.inst(inst);
        let mut v: Vec<NetId> = i.conns.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    let mut temp = temp0;
    let cooling = (0.02f64).powf(1.0 / moves.max(1) as f64);

    for _ in 0..moves {
        let group = groups[rng.next_below(groups.len())];
        let a = group[rng.next_below(group.len())];
        let b = group[rng.next_below(group.len())];
        if a == b {
            temp *= cooling;
            continue;
        }
        let (ia, ib) = (insts[a], insts[b]);
        let mut nets: Vec<NetId> = inst_nets(ia);
        nets.extend(inst_nets(ib));
        nets.sort_unstable();
        nets.dedup();
        let before: f64 = nets.iter().map(|&n| placement.net_hpwl(netlist, n)).sum();
        placement.locs.swap(ia.index(), ib.index());
        let after: f64 = nets.iter().map(|&n| placement.net_hpwl(netlist, n)).sum();
        let delta = after - before;
        let accept = delta <= 0.0 || rng.next_f64() < (-delta / temp.max(1e-9)).exp();
        if !accept {
            placement.locs.swap(ia.index(), ib.index());
        }
        temp *= cooling;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_cells::library::Library;

    fn lib() -> Library {
        Library::industrial_130nm()
    }

    /// A chain of inverters: placement should not scatter it randomly.
    fn chain(lib: &Library, len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let mut prev = n.add_input("a");
        let inv = lib.find_id("INV_X1_L").unwrap();
        for i in 0..len {
            let next = n.add_net(&format!("w{i}"));
            let u = n.add_instance(&format!("u{i}"), inv, lib);
            n.connect_by_name(u, "A", prev, lib).unwrap();
            n.connect_by_name(u, "Z", next, lib).unwrap();
            prev = next;
        }
        n.expose_output("z", prev);
        n
    }

    #[test]
    fn placement_is_legal() {
        let lib = lib();
        let n = chain(&lib, 60);
        let p = place(&n, &lib, &PlacerConfig::default());
        // All cells inside the die.
        for (id, _) in n.instances() {
            assert!(p.die.contains(p.loc(id)), "cell {} at {}", id, p.loc(id));
        }
        // No overlaps: per row, sort by x and check center distances.
        let mut by_row: std::collections::HashMap<i64, Vec<(f64, f64)>> = Default::default();
        for (id, inst) in n.instances() {
            let cell = lib.cell(inst.cell);
            let w = cell.area.um2() / lib.tech.row_height_um;
            let loc = p.loc(id);
            by_row
                .entry((loc.y * 1000.0) as i64)
                .or_default()
                .push((loc.x, w));
        }
        for (_, mut cells) in by_row {
            cells.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in cells.windows(2) {
                let (x0, w0) = pair[0];
                let (x1, w1) = pair[1];
                assert!(
                    x1 - x0 >= (w0 + w1) / 2.0 - 1e-6,
                    "overlap: {x0},{w0} vs {x1},{w1}"
                );
            }
        }
    }

    #[test]
    fn annealing_does_not_worsen_hpwl_much_and_usually_helps() {
        let lib = lib();
        let n = chain(&lib, 80);
        let base = place(
            &n,
            &lib,
            &PlacerConfig {
                anneal_moves_per_cell: 0,
                ..PlacerConfig::default()
            },
        );
        let refined = place(&n, &lib, &PlacerConfig::default());
        // Same die, same legality; refined should not be dramatically worse.
        assert!(refined.hpwl(&n) <= base.hpwl(&n) * 1.10);
    }

    #[test]
    fn hpwl_positive_and_bbox_sane() {
        let lib = lib();
        let n = chain(&lib, 10);
        let p = place(&n, &lib, &PlacerConfig::default());
        assert!(p.hpwl(&n) > 0.0);
        let w0 = n.find_net("w0").unwrap();
        let bbox = p.net_bbox(&n, w0).unwrap();
        assert!(p.die.intersects(&bbox));
    }

    #[test]
    fn deterministic() {
        let lib = lib();
        let n = chain(&lib, 30);
        let p1 = place(&n, &lib, &PlacerConfig::default());
        let p2 = place(&n, &lib, &PlacerConfig::default());
        assert_eq!(p1.hpwl(&n), p2.hpwl(&n));
    }

    #[test]
    fn ports_on_boundary() {
        let lib = lib();
        let n = chain(&lib, 10);
        let p = place(&n, &lib, &PlacerConfig::default());
        for (pid, port) in n.ports() {
            let loc = p.port_locs[pid.index()];
            let on_edge = (loc.x - p.die.lo.x).abs() < 1e-9 || (loc.x - p.die.hi.x).abs() < 1e-9;
            assert!(on_edge, "port {} at {}", port.name, loc);
        }
    }

    #[test]
    fn connected_cells_end_up_close() {
        // In a chain, average wirelength per net should be far below the
        // die diagonal (i.e. the min-cut actually clusters neighbours).
        let lib = lib();
        let n = chain(&lib, 100);
        let p = place(&n, &lib, &PlacerConfig::default());
        let nets: Vec<_> = n.nets().map(|(id, _)| id).collect();
        let avg = p.hpwl(&n) / nets.len() as f64;
        assert!(
            avg < p.die.half_perimeter() / 3.0,
            "avg = {avg}, die = {}",
            p.die.half_perimeter()
        );
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = PlacerConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        let zero_util = PlacerConfig {
            utilization: 0.0,
            ..ok.clone()
        };
        assert!(matches!(
            zero_util.validate(),
            Err(PlaceError::BadUtilization { .. })
        ));
        let nan_util = PlacerConfig {
            utilization: f64::NAN,
            ..ok.clone()
        };
        assert!(matches!(
            nan_util.validate(),
            Err(PlaceError::BadUtilization { .. })
        ));
        let over_util = PlacerConfig {
            utilization: 1.5,
            ..ok.clone()
        };
        assert!(over_util.validate().is_err());
        let zero_part = PlacerConfig {
            min_partition: 0,
            ..ok.clone()
        };
        assert_eq!(zero_part.validate(), Err(PlaceError::ZeroPartition));
        let zero_window = PlacerConfig {
            anneal_window: 0,
            ..ok
        };
        assert_eq!(zero_window.validate(), Err(PlaceError::ZeroWindow));
        // And the session constructor refuses instead of degenerating.
        let lib = lib();
        let n = chain(&lib, 4);
        assert!(Placer::new(&n, &lib, &zero_part).is_err());
    }

    #[test]
    fn config_fingerprint_tracks_every_knob() {
        let base = PlacerConfig::default().fingerprint();
        for cfg in [
            PlacerConfig {
                utilization: 0.6,
                ..PlacerConfig::default()
            },
            PlacerConfig {
                min_partition: 13,
                ..PlacerConfig::default()
            },
            PlacerConfig {
                anneal_moves_per_cell: 41,
                ..PlacerConfig::default()
            },
            PlacerConfig {
                seed: 43,
                ..PlacerConfig::default()
            },
            PlacerConfig {
                anneal_window: 513,
                ..PlacerConfig::default()
            },
        ] {
            assert_ne!(cfg.fingerprint(), base, "{cfg:?}");
        }
    }

    #[test]
    fn try_loc_exposes_unplaced_cells_and_loc_counts_fallbacks() {
        let lib = lib();
        let mut n = chain(&lib, 8);
        let p = place(&n, &lib, &PlacerConfig::default());
        assert_eq!(p.fallback_hits(), 0);
        // A cell created after placement is unplaced until set_loc.
        let inv = lib.find_id("INV_X1_L").unwrap();
        let late = n.add_instance("late", inv, &lib);
        assert_eq!(p.try_loc(late), None);
        assert_eq!(p.loc(late), p.die.center());
        assert_eq!(p.fallback_hits(), 1, "fallback reads are counted");
        let mut p = p;
        p.set_loc(late, Point::new(1.0, 2.0));
        assert_eq!(p.try_loc(late), Some(Point::new(1.0, 2.0)));
        assert_eq!(p.fallback_hits(), 1, "placed reads are free");
        // The counter survives cloning (checkpoint forks).
        assert_eq!(p.clone().fallback_hits(), 1);
    }

    #[test]
    fn placer_replace_cell_relegalizes_only_the_touched_row() {
        let lib = lib();
        let mut n = chain(&lib, 40);
        let mut placer = Placer::new(&n, &lib, &PlacerConfig::default()).unwrap();
        let victim = n
            .instances()
            .map(|(id, _)| id)
            .nth(7)
            .expect("chain has cells");
        let row_y = placer.placement().loc(victim).y;
        let before: Vec<(InstId, Point)> = n
            .instances()
            .map(|(id, _)| (id, placer.placement().loc(id)))
            .collect();
        // Swap to a 4x drive: a wider footprint that no longer fits its slot.
        let wide = lib.find_id("INV_X4_L").expect("library has INV_X4_L");
        n.replace_cell(victim, wide, &lib).expect("variant swap");
        placer.replace_cell(&n, &lib, victim);
        // Off-row cells kept their exact locations.
        for (id, old) in &before {
            let now = placer.placement().loc(*id);
            if (old.y - row_y).abs() > 1e-9 {
                assert_eq!((now.x, now.y), (old.x, old.y), "off-row cell {id} moved");
            } else {
                assert_eq!(now.y, row_y, "row member {id} left its row");
            }
        }
        // The touched row is overlap-free under the new widths.
        let mut row: Vec<(f64, f64)> = n
            .instances()
            .filter(|(id, _)| (placer.placement().loc(*id).y - row_y).abs() < 1e-9)
            .map(|(id, inst)| {
                let w = lib.cell(inst.cell).area.um2() / lib.tech.row_height_um;
                (placer.placement().loc(id).x, w)
            })
            .collect();
        row.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in row.windows(2) {
            let (x0, w0) = pair[0];
            let (x1, w1) = pair[1];
            assert!(x1 - x0 >= (w0 + w1) / 2.0 - 1e-6, "overlap after re-place");
        }
    }

    #[test]
    fn placer_apply_follows_a_compaction() {
        let lib = lib();
        let mut n = chain(&lib, 10);
        let mut placer = Placer::new(&n, &lib, &PlacerConfig::default()).unwrap();
        let dead = n
            .instances()
            .map(|(id, _)| id)
            .nth(3)
            .expect("chain has cells");
        let survivor = n
            .instances()
            .map(|(id, _)| id)
            .nth(8)
            .expect("chain has cells");
        let survivor_loc = placer.placement().loc(survivor);
        n.remove_instance(dead);
        let map = n.compact();
        placer.apply(&map);
        let new_id = map.new_id(survivor).expect("survivor kept");
        assert_eq!(placer.placement().try_loc(new_id), Some(survivor_loc));
        // Every live instance is still placed after re-indexing.
        for (id, _) in n.instances() {
            assert!(placer.placement().try_loc(id).is_some(), "{id} unplaced");
        }
    }

    #[test]
    fn parallel_placement_is_bit_identical_across_thread_counts() {
        let lib = lib();
        // Big enough to exercise multiple bisection levels and >1 anneal
        // window.
        let n = chain(&lib, 700);
        let cfg = PlacerConfig {
            anneal_window: 128,
            ..PlacerConfig::default()
        };
        let serial = Placer::with_threads(&n, &lib, &cfg, 1).unwrap();
        let wide = Placer::with_threads(&n, &lib, &cfg, 8).unwrap();
        for (id, _) in n.instances() {
            let a = serial.placement().loc(id);
            let b = wide.placement().loc(id);
            assert_eq!(
                (a.x.to_bits(), a.y.to_bits()),
                (b.x.to_bits(), b.y.to_bits()),
                "cell {id} differs between 1 and 8 workers"
            );
        }
    }

    #[test]
    fn windowed_annealing_still_improves_or_holds_hpwl() {
        let lib = lib();
        let n = chain(&lib, 700);
        let cfg = PlacerConfig {
            anneal_window: 128,
            ..PlacerConfig::default()
        };
        let base = place(
            &n,
            &lib,
            &PlacerConfig {
                anneal_moves_per_cell: 0,
                ..cfg.clone()
            },
        );
        let refined = place(&n, &lib, &cfg);
        assert!(refined.hpwl(&n) <= base.hpwl(&n) * 1.10);
    }
}
