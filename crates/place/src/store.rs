//! Digest-verified text serialization of [`Placement`]s — the on-disk
//! format behind the flow's placement cache.
//!
//! The format follows the cache's SNL conventions: line-oriented text, a
//! version header, and a trailing FNV-1a digest over every preceding
//! line so a truncated or bit-rotted entry is detected on load instead
//! of silently mis-placing a design. Coordinates are written as the IEEE
//! bit patterns of their `f64` values (`to_bits` hex), so
//! encode → decode → encode is bit-identical — the property the cache's
//! canonicalise-once warm-run guarantee rests on.

use crate::place::Placement;
use smt_base::fingerprint::Fnv64;
use smt_base::geom::{Point, Rect};
use std::fmt::Write as _;
use std::sync::atomic::AtomicU64;

const MAGIC: &str = "SMTPLC 1";

/// Why a placement entry failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementDecodeError {
    /// 1-based line of the offending text, 0 when the file ends early.
    pub line: usize,
    /// What went wrong.
    pub what: String,
}

impl std::fmt::Display for PlacementDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "placement decode, line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for PlacementDecodeError {}

fn err(line: usize, what: impl Into<String>) -> PlacementDecodeError {
    PlacementDecodeError {
        line,
        what: what.into(),
    }
}

/// Serialises a placement. The fallback-hit counter is transient
/// diagnostics and is deliberately not stored.
pub fn encode_placement(p: &Placement) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(
        out,
        "die {:016x} {:016x} {:016x} {:016x}",
        p.die.lo.x.to_bits(),
        p.die.lo.y.to_bits(),
        p.die.hi.x.to_bits(),
        p.die.hi.y.to_bits()
    );
    let _ = write!(out, "rows {}", p.row_ys.len());
    for y in &p.row_ys {
        let _ = write!(out, " {:016x}", y.to_bits());
    }
    out.push('\n');
    let _ = writeln!(out, "ports {}", p.port_locs.len());
    for q in &p.port_locs {
        let _ = writeln!(out, "port {:016x} {:016x}", q.x.to_bits(), q.y.to_bits());
    }
    let _ = writeln!(out, "cells {}", p.locs.len());
    for (i, q) in p.locs.iter().enumerate() {
        if p.placed[i] {
            let _ = writeln!(
                out,
                "cell {} {:016x} {:016x}",
                i,
                q.x.to_bits(),
                q.y.to_bits()
            );
        }
    }
    let _ = writeln!(out, "digest {:016x}", digest_of(&out));
    out
}

/// FNV-1a over every full line already in `body` (everything before the
/// digest line itself).
fn digest_of(body: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(body);
    h.finish()
}

/// Decodes [`encode_placement`] output, verifying the trailing digest.
///
/// # Errors
///
/// [`PlacementDecodeError`] naming the first bad line — wrong magic,
/// malformed fields, out-of-range cell indices, a missing or mismatched
/// digest.
pub fn decode_placement(text: &str) -> Result<Placement, PlacementDecodeError> {
    let mut lines = text.lines().enumerate();
    let (_, magic) = lines.next().ok_or_else(|| err(0, "empty entry"))?;
    if magic != MAGIC {
        return Err(err(1, format!("bad magic `{magic}`, want `{MAGIC}`")));
    }

    let bits = |line: usize, tok: &str| -> Result<f64, PlacementDecodeError> {
        u64::from_str_radix(tok, 16)
            .map(f64::from_bits)
            .map_err(|_| err(line, format!("bad f64 bits `{tok}`")))
    };

    // die
    let (i, l) = lines.next().ok_or_else(|| err(0, "missing die line"))?;
    let line = i + 1;
    let toks: Vec<&str> = l.split_whitespace().collect();
    if toks.len() != 5 || toks[0] != "die" {
        return Err(err(line, "want `die lox loy hix hiy`"));
    }
    let die = Rect::new(
        Point::new(bits(line, toks[1])?, bits(line, toks[2])?),
        Point::new(bits(line, toks[3])?, bits(line, toks[4])?),
    );

    // rows
    let (i, l) = lines.next().ok_or_else(|| err(0, "missing rows line"))?;
    let line = i + 1;
    let toks: Vec<&str> = l.split_whitespace().collect();
    if toks.len() < 2 || toks[0] != "rows" {
        return Err(err(line, "want `rows n y..`"));
    }
    let n_rows: usize = toks[1]
        .parse()
        .map_err(|_| err(line, format!("bad row count `{}`", toks[1])))?;
    if toks.len() != 2 + n_rows {
        return Err(err(
            line,
            format!("want {n_rows} row ys, got {}", toks.len() - 2),
        ));
    }
    let mut row_ys = Vec::with_capacity(n_rows);
    for t in &toks[2..] {
        row_ys.push(bits(line, t)?);
    }

    // ports
    let (i, l) = lines.next().ok_or_else(|| err(0, "missing ports line"))?;
    let line = i + 1;
    let n_ports: usize = l
        .strip_prefix("ports ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| err(line, "want `ports n`"))?;
    let mut port_locs = Vec::with_capacity(n_ports);
    for _ in 0..n_ports {
        let (i, l) = lines.next().ok_or_else(|| err(0, "truncated port list"))?;
        let line = i + 1;
        let toks: Vec<&str> = l.split_whitespace().collect();
        if toks.len() != 3 || toks[0] != "port" {
            return Err(err(line, "want `port xbits ybits`"));
        }
        port_locs.push(Point::new(bits(line, toks[1])?, bits(line, toks[2])?));
    }

    // cells
    let (i, l) = lines.next().ok_or_else(|| err(0, "missing cells line"))?;
    let line = i + 1;
    let capacity: usize = l
        .strip_prefix("cells ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| err(line, "want `cells capacity`"))?;
    let mut locs = vec![Point::ORIGIN; capacity];
    let mut placed = vec![false; capacity];
    let mut saw_digest = false;
    for (i, l) in lines {
        let line = i + 1;
        if let Some(rest) = l.strip_prefix("cell ") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 3 {
                return Err(err(line, "want `cell index xbits ybits`"));
            }
            let idx: usize = toks[0]
                .parse()
                .map_err(|_| err(line, format!("bad cell index `{}`", toks[0])))?;
            if idx >= capacity {
                return Err(err(
                    line,
                    format!("cell index {idx} >= capacity {capacity}"),
                ));
            }
            locs[idx] = Point::new(bits(line, toks[1])?, bits(line, toks[2])?);
            placed[idx] = true;
        } else if let Some(rest) = l.strip_prefix("digest ") {
            let want = u64::from_str_radix(rest.trim(), 16)
                .map_err(|_| err(line, format!("bad digest `{rest}`")))?;
            // The digest covers everything up to (not including) its own line.
            let body_len = text
                .find("\ndigest ")
                .map(|p| p + 1)
                .ok_or_else(|| err(line, "digest line not found in body"))?;
            let got = digest_of(&text[..body_len]);
            if got != want {
                return Err(err(
                    line,
                    format!("digest mismatch: entry says {want:016x}, content is {got:016x}"),
                ));
            }
            saw_digest = true;
        } else if !l.trim().is_empty() {
            return Err(err(line, format!("unexpected line `{l}`")));
        }
    }
    if !saw_digest {
        return Err(err(0, "missing trailing digest"));
    }
    Ok(Placement {
        locs,
        port_locs,
        die,
        row_ys,
        placed,
        fallback_hits: AtomicU64::new(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlacerConfig};
    use smt_cells::library::Library;
    use smt_netlist::netlist::{InstId, Netlist};

    fn sample() -> (Netlist, Library, Placement) {
        let lib = Library::industrial_130nm();
        let mut n = Netlist::new("s");
        let mut prev = n.add_input("a");
        let inv = lib.find_id("INV_X1_L").unwrap();
        for i in 0..20 {
            let w = n.add_net(&format!("w{i}"));
            let u = n.add_instance(&format!("u{i}"), inv, &lib);
            n.connect_by_name(u, "A", prev, &lib).unwrap();
            n.connect_by_name(u, "Z", w, &lib).unwrap();
            prev = w;
        }
        n.expose_output("z", prev);
        let p = place(&n, &lib, &PlacerConfig::default());
        (n, lib, p)
    }

    #[test]
    fn round_trip_is_bit_identical_and_reencode_is_canonical() {
        let (n, _, p) = sample();
        let text = encode_placement(&p);
        let back = decode_placement(&text).expect("decode");
        for (id, _) in n.instances() {
            let a = p.loc(id);
            let b = back.loc(id);
            assert_eq!(
                (a.x.to_bits(), a.y.to_bits()),
                (b.x.to_bits(), b.y.to_bits())
            );
        }
        assert_eq!(p.row_ys, back.row_ys);
        assert_eq!(p.port_locs, back.port_locs);
        assert_eq!(p.die, back.die);
        // Canonical: encoding the decoded placement reproduces the text.
        assert_eq!(encode_placement(&back), text);
    }

    #[test]
    fn unplaced_slots_survive_the_round_trip() {
        let (_, _, mut p) = sample();
        // Grow the table with one placed straggler; the slot between
        // stays unplaced and must still be unplaced after a round trip.
        let cap = p.locs.len();
        p.set_loc(
            InstId((cap + 1) as u32),
            smt_base::geom::Point::new(3.0, 4.0),
        );
        let back = decode_placement(&encode_placement(&p)).expect("decode");
        assert_eq!(back.try_loc(InstId(cap as u32)), None);
        assert_eq!(
            back.try_loc(InstId((cap + 1) as u32)),
            Some(smt_base::geom::Point::new(3.0, 4.0))
        );
    }

    #[test]
    fn corruption_is_detected() {
        let (_, _, p) = sample();
        let text = encode_placement(&p);
        // Whitespace tampering parses structurally but changes the
        // digested body.
        let broken = text.replacen("port ", "port  ", 1);
        assert_ne!(broken, text);
        assert!(decode_placement(&broken).is_err());
        // Truncation loses the digest line.
        let cut = &text[..text.len() - 20];
        assert!(decode_placement(cut).is_err());
        // Garbage magic.
        assert!(decode_placement("SMTXYZ 9\n").is_err());
        // Empty.
        assert!(decode_placement("").is_err());
    }
}
