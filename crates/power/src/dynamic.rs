//! Dynamic (switching) power estimation from toggle statistics.
//!
//! Not part of the paper's Table 1 (which is standby leakage), but the
//! flow reports it so the examples can show the full power picture:
//! `P = α · C · V² · f` summed over nets, with α from random simulation.

use smt_base::units::{Cap, Power};
use smt_cells::library::Library;
use smt_netlist::netlist::{NetId, Netlist};
use smt_sim::ToggleStats;

/// Per-net capacitance supplier (pin caps + wire cap).
fn net_cap(netlist: &Netlist, lib: &Library, net: NetId, wire_cap: impl Fn(NetId) -> Cap) -> Cap {
    let n = netlist.net(net);
    let pins: Cap = n
        .loads
        .iter()
        .map(|pr| lib.cell(netlist.inst(pr.inst).cell).pins[pr.pin].cap)
        .sum();
    pins + wire_cap(net)
}

/// Estimates dynamic power at a clock frequency.
///
/// * `toggles` — per-net activity from [`smt_sim::estimate_toggles`];
/// * `freq_ghz` — clock frequency in GHz;
/// * `wire_cap` — wire capacitance per net (estimate or extracted).
pub fn dynamic_power(
    netlist: &Netlist,
    lib: &Library,
    toggles: &ToggleStats,
    freq_ghz: f64,
    wire_cap: impl Fn(NetId) -> Cap,
) -> Power {
    let vdd = lib.tech.vdd.volts();
    let mut nw = 0.0;
    for (id, _) in netlist.nets() {
        let c = net_cap(netlist, lib, id, &wire_cap);
        let alpha = toggles.activity(id);
        // 0.5 · C[fF] · V² · (α · f)[GHz] gives µW; ×1000 for nW.
        nw += 0.5 * c.ff() * vdd * vdd * alpha * freq_ghz * 1e3;
    }
    Power::new(nw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_sim::estimate_toggles;

    #[test]
    fn power_scales_with_frequency_and_activity() {
        let lib = Library::industrial_130nm();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let z = n.add_output("z");
        let u = n.add_instance("u", lib.find_id("INV_X2_L").unwrap(), &lib);
        n.connect_by_name(u, "A", a, &lib).unwrap();
        n.connect_by_name(u, "Z", z, &lib).unwrap();
        let stats = estimate_toggles(&n, &lib, 256, 1).unwrap();
        let p1 = dynamic_power(&n, &lib, &stats, 1.0, |_| Cap::new(2.0));
        let p2 = dynamic_power(&n, &lib, &stats, 2.0, |_| Cap::new(2.0));
        assert!(p1.nw() > 0.0);
        assert!((p2.nw() / p1.nw() - 2.0).abs() < 1e-9);
        // More wire cap, more power.
        let p3 = dynamic_power(&n, &lib, &stats, 1.0, |_| Cap::new(20.0));
        assert!(p3 > p1);
    }
}
