//! Standby and active leakage analysis with per-class breakdown.
//!
//! This module computes the leakage column of the paper's Table 1. The
//! accounting follows the physics of each technique:
//!
//! * **plain low/high-Vth cells** leak their state-dependent subthreshold
//!   current in both modes — low-Vth critical-path cells are what make the
//!   Dual-Vth baseline leak;
//! * **conventional MT-cells** (embedded switch) leak through their own
//!   off footer in standby — one worst-case-sized switch *per cell*;
//! * **improved MT-cells** (VGND port) leak only a residual in standby;
//!   the real leakage path is the *shared* switch cell, counted once per
//!   cluster — the diversity-sized shared switch is why the improved
//!   technique wins the leakage comparison too;
//! * flip-flops stay powered (they hold state) and leak always;
//! * holders and MTE buffers leak their (high-Vth, small) figure.

use smt_base::units::{Current, Power};
use smt_cells::cell::{CellRole, VthClass};
use smt_cells::library::Library;
use smt_netlist::netlist::Netlist;
use smt_sim::{Simulator, Value};

/// Leakage power split by contributor class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeakageBreakdown {
    /// Low-Vth logic cells.
    pub low_vth: Current,
    /// High-Vth logic cells.
    pub high_vth: Current,
    /// Conventional MT-cells (their embedded off switch + holder).
    pub mt_embedded: Current,
    /// Improved MT-cells' residual (gated logic floor).
    pub mt_vgnd_residual: Current,
    /// Shared footer switch cells (off in standby).
    pub shared_switches: Current,
    /// Output holders.
    pub holders: Current,
    /// Flip-flops (always powered).
    pub flip_flops: Current,
    /// Clock buffers.
    pub clock_buffers: Current,
}

impl LeakageBreakdown {
    /// Total leakage current.
    pub fn total(&self) -> Current {
        self.low_vth
            + self.high_vth
            + self.mt_embedded
            + self.mt_vgnd_residual
            + self.shared_switches
            + self.holders
            + self.flip_flops
            + self.clock_buffers
    }

    /// Total leakage power at the technology's supply.
    pub fn power(&self, lib: &Library) -> Power {
        self.total() * lib.tech.vdd
    }
}

/// How cell input states are chosen for the state-dependent model.
#[derive(Debug, Clone, Copy)]
pub enum StateSource<'a> {
    /// Equal-probability average over all input states.
    Mean,
    /// Read input states from a simulator snapshot (run it in the desired
    /// mode first). Unknown (`X`) inputs fall back to the cell's mean.
    Snapshot(&'a Simulator),
}

fn cell_state_leak(
    netlist: &Netlist,
    lib: &Library,
    inst: smt_netlist::netlist::InstId,
    source: StateSource<'_>,
) -> Current {
    let i = netlist.inst(inst);
    let cell = lib.cell(i.cell);
    match source {
        StateSource::Mean => cell.leakage.mean(),
        StateSource::Snapshot(sim) => {
            let pins = cell.logic_input_pins();
            let mut state = 0u32;
            for (k, &pin) in pins.iter().enumerate() {
                match i.net_on(pin).map(|n| sim.value(n)) {
                    Some(Value::One) => state |= 1 << k,
                    Some(Value::Zero) => {}
                    _ => return cell.leakage.mean(),
                }
            }
            cell.leakage.state(state)
        }
    }
}

/// Computes the standby-mode leakage breakdown (footer switches off).
pub fn standby_leakage(
    netlist: &Netlist,
    lib: &Library,
    source: StateSource<'_>,
) -> LeakageBreakdown {
    let mut b = LeakageBreakdown::default();
    for (id, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        match cell.role {
            CellRole::Sequential => b.flip_flops += cell.standby_leak,
            CellRole::Switch => b.shared_switches += cell.standby_leak,
            CellRole::Holder => b.holders += cell.standby_leak,
            CellRole::ClockBuf => b.clock_buffers += cell.standby_leak,
            CellRole::Logic => match cell.vth {
                VthClass::Low => b.low_vth += cell_state_leak(netlist, lib, id, source),
                VthClass::High => b.high_vth += cell_state_leak(netlist, lib, id, source),
                VthClass::MtEmbedded => b.mt_embedded += cell.standby_leak,
                VthClass::MtVgnd => b.mt_vgnd_residual += cell.standby_leak,
            },
        }
    }
    b
}

/// Computes active-mode leakage (footer switches on: MT logic leaks like
/// low-Vth logic; switches leak nothing while conducting).
pub fn active_leakage(
    netlist: &Netlist,
    lib: &Library,
    source: StateSource<'_>,
) -> LeakageBreakdown {
    let mut b = LeakageBreakdown::default();
    for (id, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        match cell.role {
            CellRole::Sequential => b.flip_flops += cell.standby_leak,
            CellRole::Switch => {} // conducting: subthreshold path shorted
            CellRole::Holder => b.holders += cell.standby_leak,
            CellRole::ClockBuf => b.clock_buffers += cell.standby_leak,
            CellRole::Logic => {
                let leak = cell_state_leak(netlist, lib, id, source);
                match cell.vth {
                    VthClass::Low => b.low_vth += leak,
                    VthClass::High => b.high_vth += leak,
                    VthClass::MtEmbedded => b.mt_embedded += leak,
                    VthClass::MtVgnd => b.mt_vgnd_residual += leak,
                }
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_sim::Mode;

    fn lib() -> Library {
        Library::industrial_130nm()
    }

    fn one_gate(lib: &Library, cell: &str) -> Netlist {
        let mut n = Netlist::new("g");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let z = n.add_output("z");
        let u = n.add_instance("u", lib.find_id(cell).unwrap(), lib);
        n.connect_by_name(u, "A", a, lib).unwrap();
        n.connect_by_name(u, "B", b, lib).unwrap();
        n.connect_by_name(u, "Z", z, lib).unwrap();
        n
    }

    #[test]
    fn low_vth_dominates_dual_vth_standby() {
        let lib = lib();
        let low = one_gate(&lib, "ND2_X1_L");
        let high = one_gate(&lib, "ND2_X1_H");
        let bl = standby_leakage(&low, &lib, StateSource::Mean);
        let bh = standby_leakage(&high, &lib, StateSource::Mean);
        assert!(bl.total().ua() > bh.total().ua() * 50.0);
    }

    #[test]
    fn state_dependence_from_snapshot() {
        let lib = lib();
        let n = one_gate(&lib, "ND2_X1_L");
        let mut sim = Simulator::new(&n, &lib).unwrap();
        let a = n.find_net("a").unwrap();
        let b = n.find_net("b").unwrap();
        // 00: deepest stack, least leakage.
        sim.set_input(a, Value::Zero);
        sim.set_input(b, Value::Zero);
        sim.propagate(&n, &lib);
        let leak00 = standby_leakage(&n, &lib, StateSource::Snapshot(&sim)).total();
        // 11: pull-up pair off in parallel, most leakage.
        sim.set_input(a, Value::One);
        sim.set_input(b, Value::One);
        sim.propagate(&n, &lib);
        let leak11 = standby_leakage(&n, &lib, StateSource::Snapshot(&sim)).total();
        assert!(leak11 > leak00, "11: {leak11}, 00: {leak00}");
        // Mean sits between extremes.
        let mean = standby_leakage(&n, &lib, StateSource::Mean).total();
        assert!(mean >= leak00 && mean <= leak11);
    }

    #[test]
    fn mt_variants_cut_standby_but_not_active() {
        let lib = lib();
        let low = one_gate(&lib, "ND2_X1_L");
        let mv = one_gate(&lib, "ND2_X1_MV");
        let mc = one_gate(&lib, "ND2_X1_MC");
        let s_low = standby_leakage(&low, &lib, StateSource::Mean).total();
        let s_mv = standby_leakage(&mv, &lib, StateSource::Mean).total();
        let s_mc = standby_leakage(&mc, &lib, StateSource::Mean).total();
        assert!(s_mv.ua() < s_low.ua() / 100.0, "gated residual is tiny");
        assert!(s_mc < s_low);
        assert!(s_mv < s_mc, "shared-switch variant beats embedded");
        // Active mode: MT logic leaks like low-Vth logic.
        let a_low = active_leakage(&low, &lib, StateSource::Mean).total();
        let a_mv = active_leakage(&mv, &lib, StateSource::Mean).total();
        assert!((a_low.ua() - a_mv.ua()).abs() / a_low.ua() < 1e-9);
    }

    #[test]
    fn switch_cells_count_only_in_standby() {
        let lib = lib();
        let mut n = one_gate(&lib, "ND2_X1_MV");
        let mte = n.add_input("mte");
        let vg = n.add_net("vg");
        let u = n.find_inst("u").unwrap();
        n.connect_by_name(u, "VGND", vg, &lib).unwrap();
        let sw = n.add_instance("sw", lib.find_id("SW_W16").unwrap(), &lib);
        n.connect_by_name(sw, "VGND", vg, &lib).unwrap();
        n.connect_by_name(sw, "MTE", mte, &lib).unwrap();
        let standby = standby_leakage(&n, &lib, StateSource::Mean);
        assert!(standby.shared_switches.ua() > 0.0);
        let active = active_leakage(&n, &lib, StateSource::Mean);
        assert_eq!(active.shared_switches, Current::ZERO);
        // Power conversion sane: 1 µA at 1.2 V = 1.2 µW.
        let p = standby.power(&lib);
        assert!((p.nw() - standby.total().ua() * 1200.0).abs() < 1e-6);
    }

    #[test]
    fn standby_snapshot_with_holder_keeps_states_known() {
        // MT inverter -> high-Vth inverter with holder on the boundary:
        // in standby the held net reads 1, so the high-Vth cell's state
        // stays known and its stack leakage is computed exactly.
        let lib = lib();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let mte = n.add_input("mte");
        let w = n.add_net("w");
        let z = n.add_output("z");
        let u1 = n.add_instance("u1", lib.find_id("INV_X1_MV").unwrap(), &lib);
        let u2 = n.add_instance("u2", lib.find_id("INV_X1_H").unwrap(), &lib);
        let h = n.add_instance("h", lib.holder(), &lib);
        n.connect_by_name(u1, "A", a, &lib).unwrap();
        n.connect_by_name(u1, "Z", w, &lib).unwrap();
        n.connect_by_name(u2, "A", w, &lib).unwrap();
        n.connect_by_name(u2, "Z", z, &lib).unwrap();
        n.connect_by_name(h, "A", w, &lib).unwrap();
        n.connect_by_name(h, "MTE", mte, &lib).unwrap();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.set_input(a, Value::One);
        sim.set_mode(Mode::Standby);
        sim.propagate(&n, &lib);
        assert_eq!(sim.value(w), Value::One);
        let b = standby_leakage(&n, &lib, StateSource::Snapshot(&sim));
        // u2 input = 1 -> its PMOS leaks; exact state used, not the mean.
        let u2_cell = lib.find("INV_X1_H").unwrap();
        assert!((b.high_vth.ua() - u2_cell.leakage.state(1).ua()).abs() < 1e-12);
    }
}
