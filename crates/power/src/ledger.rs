//! Delta-aware leakage ledger.
//!
//! [`LeakageLedger`] caches, per instance slot, everything the leakage
//! accounting of [`crate::leakage`] needs — the cell and the captured
//! standby input state — so that:
//!
//! * per-corner signoff re-prices the same rows at each corner library
//!   without re-walking the netlist and simulator snapshot per corner;
//! * after an ECO, [`LeakageLedger::refresh`] re-derives rows and
//!   reports exactly which instances' contributions changed (scoped by a
//!   [`DeltaBasis`] diff), which the incrementality tests assert.
//!
//! Pricing replays the *same* per-class accumulation sequence as
//! [`crate::leakage::standby_leakage`] / [`crate::leakage::active_leakage`]
//! (instance-id order, identical float reads), so ledger totals are
//! bit-identical to the from-scratch walks at every library.

use crate::leakage::LeakageBreakdown;
use smt_cells::cell::{CellId, CellRole, VthClass};
use smt_cells::library::Library;
use smt_netlist::netlist::{InstId, Netlist};
use smt_netlist::DeltaBasis;
use smt_sim::{Simulator, Value};

/// Cached leakage inputs of one instance slot.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LedgerRow {
    alive: bool,
    cell: CellId,
    /// Captured standby input state; `None` when any input was unknown
    /// or unconnected (prices as the cell's mean, exactly like
    /// `cell_state_leak`).
    state: Option<u32>,
}

const DEAD_ROW: LedgerRow = LedgerRow {
    alive: false,
    cell: CellId(0),
    state: None,
};

/// Which operating mode a [`LeakageLedger::price`] call accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PricingMode {
    /// Standby (footer switches off), states from the captured snapshot —
    /// matches `standby_leakage(…, StateSource::Snapshot)`.
    Standby,
    /// Active with mean states — matches
    /// `active_leakage(…, StateSource::Mean)`.
    ActiveMean,
}

/// Per-instance leakage rows plus the netlist basis they were captured
/// against.
#[derive(Debug, Clone, Default)]
pub struct LeakageLedger {
    rows: Vec<LedgerRow>,
    basis: DeltaBasis,
    /// Rows whose contribution changed in the last refresh.
    pub last_changed: usize,
    /// Rows carried over unchanged by the last refresh.
    pub last_reused: usize,
}

impl LeakageLedger {
    /// Captures rows for every instance from the standby simulator
    /// snapshot (run it in `Mode::Standby` first).
    pub fn capture(netlist: &Netlist, lib: &Library, sim: &Simulator) -> Self {
        let mut ledger = LeakageLedger::default();
        ledger.rows = build_rows(netlist, lib, sim);
        ledger.basis = DeltaBasis::of(netlist);
        ledger.last_changed = ledger.rows.len();
        ledger.last_reused = 0;
        ledger
    }

    /// Re-derives the rows against the current netlist and snapshot and
    /// updates the basis, returning how many instances' leakage inputs
    /// actually moved. `sim` must be the canonical standby snapshot of
    /// `netlist` (the flow's fixed alternating-input vector): the
    /// snapshot is then a pure function of the netlist, so a clean
    /// [`DeltaBasis`] diff proves every row is still exact and the
    /// rebuild is skipped outright. A non-empty delta re-derives rows
    /// and counts the changed contributions (state shifts can radiate
    /// past the structural delta through the simulator, so the re-read
    /// covers all rows; the cheap integer work here is what keeps the
    /// re-priced totals bit-identical).
    pub fn refresh(&mut self, netlist: &Netlist, lib: &Library, sim: &Simulator) -> usize {
        if self.basis.diff(netlist).is_empty() {
            self.last_changed = 0;
            self.last_reused = self.rows.len();
            return 0;
        }
        let rows = build_rows(netlist, lib, sim);
        let mut changed = 0usize;
        for (i, row) in rows.iter().enumerate() {
            if self.rows.get(i) != Some(row) {
                changed += 1;
            }
        }
        self.last_changed = changed;
        self.last_reused = rows.len() - changed;
        self.rows = rows;
        self.basis = DeltaBasis::of(netlist);
        changed
    }

    /// Prices the cached rows at `lib` — bit-identical to the matching
    /// from-scratch leakage walk over the netlist the rows were captured
    /// from, at any library sharing the cell set (corner libraries do).
    pub fn price(&self, lib: &Library, mode: PricingMode) -> LeakageBreakdown {
        let mut b = LeakageBreakdown::default();
        for row in &self.rows {
            if !row.alive {
                continue;
            }
            let cell = lib.cell(row.cell);
            let state_leak = match row.state {
                Some(s) => cell.leakage.state(s),
                None => cell.leakage.mean(),
            };
            match mode {
                PricingMode::Standby => match cell.role {
                    CellRole::Sequential => b.flip_flops += cell.standby_leak,
                    CellRole::Switch => b.shared_switches += cell.standby_leak,
                    CellRole::Holder => b.holders += cell.standby_leak,
                    CellRole::ClockBuf => b.clock_buffers += cell.standby_leak,
                    CellRole::Logic => match cell.vth {
                        VthClass::Low => b.low_vth += state_leak,
                        VthClass::High => b.high_vth += state_leak,
                        VthClass::MtEmbedded => b.mt_embedded += cell.standby_leak,
                        VthClass::MtVgnd => b.mt_vgnd_residual += cell.standby_leak,
                    },
                },
                PricingMode::ActiveMean => match cell.role {
                    CellRole::Sequential => b.flip_flops += cell.standby_leak,
                    CellRole::Switch => {} // conducting: subthreshold path shorted
                    CellRole::Holder => b.holders += cell.standby_leak,
                    CellRole::ClockBuf => b.clock_buffers += cell.standby_leak,
                    CellRole::Logic => {
                        let leak = cell.leakage.mean();
                        match cell.vth {
                            VthClass::Low => b.low_vth += leak,
                            VthClass::High => b.high_vth += leak,
                            VthClass::MtEmbedded => b.mt_embedded += leak,
                            VthClass::MtVgnd => b.mt_vgnd_residual += leak,
                        }
                    }
                },
            }
        }
        b
    }
}

/// One row per instance slot (dead slots get [`DEAD_ROW`] so indices
/// stay aligned), states read exactly like `cell_state_leak` with a
/// snapshot source: any unknown or unconnected logic input collapses the
/// row to the mean.
fn build_rows(netlist: &Netlist, lib: &Library, sim: &Simulator) -> Vec<LedgerRow> {
    let mut rows = Vec::with_capacity(netlist.inst_capacity());
    for i in 0..netlist.inst_capacity() {
        let inst = netlist.inst(InstId(i as u32));
        if inst.dead {
            rows.push(DEAD_ROW);
            continue;
        }
        let cell = lib.cell(inst.cell);
        let pins = cell.logic_input_pins();
        let mut state = Some(0u32);
        for (k, &pin) in pins.iter().enumerate() {
            match inst.net_on(pin).map(|n| sim.value(n)) {
                Some(Value::One) => {
                    if let Some(s) = state.as_mut() {
                        *s |= 1 << k;
                    }
                }
                Some(Value::Zero) => {}
                _ => {
                    state = None;
                    break;
                }
            }
        }
        rows.push(LedgerRow {
            alive: true,
            cell: inst.cell,
            state,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leakage::{active_leakage, standby_leakage, StateSource};
    use smt_sim::Mode;

    fn mixed(lib: &Library) -> Netlist {
        let mut n = Netlist::new("mixed");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let w = n.add_net("w");
        let z = n.add_output("z");
        let g1 = n.add_instance("g1", lib.find_id("ND2_X1_L").unwrap(), lib);
        let g2 = n.add_instance("g2", lib.find_id("INV_X1_H").unwrap(), lib);
        n.connect_by_name(g1, "A", a, lib).unwrap();
        n.connect_by_name(g1, "B", b, lib).unwrap();
        n.connect_by_name(g1, "Z", w, lib).unwrap();
        n.connect_by_name(g2, "A", w, lib).unwrap();
        n.connect_by_name(g2, "Z", z, lib).unwrap();
        n
    }

    fn standby_snapshot(n: &Netlist, lib: &Library) -> Simulator {
        let mut sim = Simulator::new(n, lib).unwrap();
        sim.set_input(n.find_net("a").unwrap(), Value::One);
        sim.set_input(n.find_net("b").unwrap(), Value::Zero);
        sim.set_mode(Mode::Standby);
        sim.propagate(n, lib);
        sim
    }

    #[test]
    fn ledger_prices_bit_identical_to_full_walks() {
        let lib = Library::industrial_130nm();
        let n = mixed(&lib);
        let sim = standby_snapshot(&n, &lib);
        let ledger = LeakageLedger::capture(&n, &lib, &sim);
        let full_s = standby_leakage(&n, &lib, StateSource::Snapshot(&sim));
        let full_a = active_leakage(&n, &lib, StateSource::Mean);
        assert_eq!(ledger.price(&lib, PricingMode::Standby), full_s);
        assert_eq!(ledger.price(&lib, PricingMode::ActiveMean), full_a);
    }

    #[test]
    fn refresh_scopes_changes_to_the_swap() {
        let lib = Library::industrial_130nm();
        let mut n = mixed(&lib);
        let sim = standby_snapshot(&n, &lib);
        let mut ledger = LeakageLedger::capture(&n, &lib, &sim);

        let g1 = n.find_inst("g1").unwrap();
        n.replace_cell(g1, lib.find_id("ND2_X1_H").unwrap(), &lib)
            .unwrap();
        let sim2 = standby_snapshot(&n, &lib);
        let changed = ledger.refresh(&n, &lib, &sim2);
        assert_eq!(changed, 1, "only the swapped gate's row moves");
        assert_eq!(ledger.last_reused, n.inst_capacity() - 1);

        let full = standby_leakage(&n, &lib, StateSource::Snapshot(&sim2));
        assert_eq!(ledger.price(&lib, PricingMode::Standby), full);
    }
}
