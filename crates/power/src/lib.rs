//! # smt-power
//!
//! Power analysis for the Selective-MT reproduction:
//!
//! * [`leakage`] — standby and active leakage with a per-class breakdown
//!   (low/high-Vth logic, embedded vs shared switches, holders, FFs) —
//!   the machinery behind the paper's Table 1 leakage column;
//! * [`vgnd`] — virtual-ground voltage-bounce analysis per cluster,
//!   electromigration checks, and bounce→delay derate conversion;
//! * [`dynamic`] — switching power from simulated toggle rates.

pub mod dynamic;
pub mod leakage;
pub mod ledger;
pub mod report;
pub mod vgnd;
pub mod wakeup;

pub use dynamic::dynamic_power;
pub use leakage::{active_leakage, standby_leakage, LeakageBreakdown, StateSource};
pub use ledger::{LeakageLedger, PricingMode};
pub use report::{
    gating_potential, render_corner_leakage, render_standby_report, top_leakers, GatingPotential,
};
pub use vgnd::{analyze_vgnd, bounce_derates, cluster_current, ClusterBounce};
pub use wakeup::{analyze_wakeup, ClusterWakeup, WakeupReport};
