//! Power report writer: per-class leakage breakdown plus the top
//! individual leakers, as a plain-text block (the power-signoff view of
//! the design).

use crate::leakage::{active_leakage, standby_leakage, LeakageBreakdown, StateSource};
use smt_base::units::Current;
use smt_cells::cell::{CellRole, VthClass};
use smt_cells::corner::CornerLibrary;
use smt_cells::library::Library;
use smt_netlist::netlist::Netlist;
use std::fmt::Write as _;

/// One ranked leaker.
#[derive(Debug, Clone)]
pub struct Leaker {
    /// Instance name.
    pub inst: String,
    /// Cell type.
    pub cell: String,
    /// Standby leakage contribution.
    pub leak: Current,
}

/// Ranks the top `k` standby leakers of a design.
pub fn top_leakers(netlist: &Netlist, lib: &Library, k: usize) -> Vec<Leaker> {
    let mut all: Vec<Leaker> = netlist
        .instances()
        .map(|(_, inst)| {
            let cell = lib.cell(inst.cell);
            Leaker {
                inst: inst.name.clone(),
                cell: cell.name.clone(),
                leak: cell.standby_leak,
            }
        })
        .collect();
    all.sort_by(|a, b| b.leak.total_cmp(&a.leak));
    all.truncate(k);
    all
}

fn class_rows(b: &LeakageBreakdown) -> [(&'static str, Current); 8] {
    [
        ("low-Vth logic", b.low_vth),
        ("high-Vth logic", b.high_vth),
        ("MT-cells (embedded switch)", b.mt_embedded),
        ("MT-cells (gated residual)", b.mt_vgnd_residual),
        ("shared footer switches", b.shared_switches),
        ("output holders", b.holders),
        ("flip-flops", b.flip_flops),
        ("clock buffers", b.clock_buffers),
    ]
}

/// Renders the standby power report: totals, per-class breakdown with
/// percentages, and the top leakers.
pub fn render_standby_report(
    netlist: &Netlist,
    lib: &Library,
    source: StateSource<'_>,
    top_k: usize,
) -> String {
    let b = standby_leakage(netlist, lib, source);
    let total = b.total();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "standby power report: {} total ({} at {})",
        total,
        b.power(lib),
        lib.tech.vdd
    );
    let _ = writeln!(out, "  {:<28} {:>12} {:>7}", "class", "uA", "share");
    for (name, i) in class_rows(&b) {
        if i.ua() == 0.0 {
            continue;
        }
        let share = if total.ua() > 0.0 {
            100.0 * i.ua() / total.ua()
        } else {
            0.0
        };
        let _ = writeln!(out, "  {:<28} {:>12.6} {:>6.1}%", name, i.ua(), share);
    }
    let _ = writeln!(out, "  top leakers:");
    for l in top_leakers(netlist, lib, top_k) {
        let _ = writeln!(
            out,
            "    {:<24} {:<14} {:>12.6} uA",
            l.inst,
            l.cell,
            l.leak.ua()
        );
    }
    out
}

/// Renders the per-corner leakage table: the same design re-priced at
/// every corner library (standby and active totals plus power at the
/// corner's supply). This is how much the Table 1 leakage column swings
/// across PVT — temperature moves the subthreshold swing, so the hot
/// corner dominates standby and the cold corner barely leaks at all.
pub fn render_corner_leakage(
    netlist: &Netlist,
    corners: &[CornerLibrary],
    source: StateSource<'_>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "per-corner leakage: {:<8} {:>14} {:>14} {:>12}",
        "corner", "standby uA", "active uA", "power"
    );
    for cl in corners {
        let standby = standby_leakage(netlist, &cl.lib, source);
        let active = active_leakage(netlist, &cl.lib, source);
        let _ = writeln!(
            out,
            "                    {:<8} {:>14.6} {:>14.6} {:>12}",
            cl.corner.name,
            standby.total().ua(),
            active.total().ua(),
            standby.power(&cl.lib),
        );
    }
    out
}

/// Quick census of how much of the design's cell population can be gated
/// at all: the structural upper bound on what any MTCMOS technique can
/// save.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GatingPotential {
    /// Leakage of cells a perfect gating scheme could eliminate
    /// (combinational logic of any Vth).
    pub gateable: Current,
    /// Leakage of cells that must stay powered (FFs, clock, holders,
    /// switches).
    pub always_on: Current,
}

impl GatingPotential {
    /// Best-case post-gating leakage fraction.
    pub fn floor_fraction(&self) -> f64 {
        let total = self.gateable.ua() + self.always_on.ua();
        if total == 0.0 {
            return 0.0;
        }
        self.always_on.ua() / total
    }
}

/// Computes the gating potential of a design in its *current* Vth
/// assignment (mean-state leakage).
pub fn gating_potential(netlist: &Netlist, lib: &Library) -> GatingPotential {
    let mut g = GatingPotential::default();
    for (_, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        match cell.role {
            CellRole::Logic => {
                // Gateable regardless of current flavour.
                let leak = match cell.vth {
                    VthClass::MtEmbedded | VthClass::MtVgnd => cell.leakage.mean(),
                    _ => cell.standby_leak,
                };
                g.gateable += leak;
            }
            _ => g.always_on += cell.standby_leak,
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(lib: &Library) -> Netlist {
        let mut n = Netlist::new("d");
        let clk = n.add_clock("clk");
        let a = n.add_input("a");
        let w = n.add_net("w");
        let z = n.add_output("z");
        let g1 = n.add_instance("big_leaker", lib.find_id("ND4_X4_L").unwrap(), lib);
        let g2 = n.add_instance("quiet", lib.find_id("INV_X1_H").unwrap(), lib);
        let ff = n.add_instance("ff", lib.find_id("DFF_X1_H").unwrap(), lib);
        for pin in ["A", "B", "C", "D"] {
            n.connect_by_name(g1, pin, a, lib).unwrap();
        }
        n.connect_by_name(g1, "Z", w, lib).unwrap();
        n.connect_by_name(g2, "A", w, lib).unwrap();
        n.connect_by_name(g2, "Z", z, lib).unwrap();
        n.connect_by_name(ff, "D", w, lib).unwrap();
        n.connect_by_name(ff, "CK", clk, lib).unwrap();
        let q = n.add_output("q");
        n.connect_by_name(ff, "Q", q, lib).unwrap();
        n
    }

    #[test]
    fn top_leakers_ranked() {
        let lib = Library::industrial_130nm();
        let n = design(&lib);
        let top = top_leakers(&n, &lib, 2);
        assert_eq!(top[0].inst, "big_leaker");
        assert!(top[0].leak > top[1].leak);
    }

    #[test]
    fn report_text_is_complete() {
        let lib = Library::industrial_130nm();
        let n = design(&lib);
        let text = render_standby_report(&n, &lib, StateSource::Mean, 3);
        assert!(text.contains("standby power report"));
        assert!(text.contains("low-Vth logic"));
        assert!(text.contains("flip-flops"));
        assert!(text.contains("big_leaker"));
        assert!(text.contains("%"));
    }

    #[test]
    fn gating_potential_bounds_the_techniques() {
        let lib = Library::industrial_130nm();
        let n = design(&lib);
        let g = gating_potential(&n, &lib);
        assert!(g.gateable.ua() > 0.0);
        assert!(g.always_on.ua() > 0.0);
        let f = g.floor_fraction();
        assert!((0.0..1.0).contains(&f));
        // The big low-Vth NAND dominates: floor is small.
        assert!(f < 0.2, "floor {f}");
    }
}
