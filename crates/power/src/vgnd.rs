//! Virtual-ground (VGND) electrical analysis.
//!
//! When a cluster of improved MT-cells switches, the current through the
//! shared footer raises the virtual ground above true ground ("voltage
//! bounce"). The paper's back-end optimizer sizes each switch "so that the
//! voltage bounce of each VGND line may not exceed the upper limit which
//! the designer specifies". This module evaluates that bounce for every
//! VGND net, checks the electromigration rating, and converts bounce into
//! the per-cell delay-derate factors the STA consumes.

use smt_base::units::{Current, Res, Volt};
use smt_cells::cell::CellRole;
use smt_cells::library::Library;
use smt_netlist::netlist::{InstId, NetId, Netlist};

/// Electrical summary of one VGND cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBounce {
    /// The VGND net.
    pub net: NetId,
    /// The switch instance footing the cluster.
    pub switch: InstId,
    /// MT-cells in the cluster.
    pub mt_cells: Vec<InstId>,
    /// Diversity-discounted simultaneous switching current.
    pub current: Current,
    /// Switch on-resistance.
    pub switch_res: Res,
    /// VGND wire resistance contribution (half the net length).
    pub wire_res: Res,
    /// Worst-case voltage bounce.
    pub bounce: Volt,
    /// Whether the current respects the switch's EM rating.
    pub em_ok: bool,
    /// VGND net wire length used, µm.
    pub wire_length_um: f64,
}

impl ClusterBounce {
    /// Delay-derate factor for cells in this cluster:
    /// `1 + k · ΔV / VDD`.
    pub fn delay_factor(&self, lib: &Library) -> f64 {
        1.0 + lib.tech.bounce_delay_sens * self.bounce.volts() / lib.tech.vdd.volts()
    }
}

/// Computes the simultaneous-switching current of a set of MT-cells:
/// `max(peak_i) + simultaneity · Σ(other peaks)`.
///
/// The conventional technique has no sharing, so each embedded switch sees
/// its own full peak; sharing lets the optimizer bank on switching
/// diversity — this asymmetry is the physical source of the paper's area
/// and leakage win.
pub fn cluster_current(lib: &Library, netlist: &Netlist, cells: &[InstId]) -> Current {
    let mut peaks: Vec<f64> = cells
        .iter()
        .filter_map(|&c| {
            lib.cell(netlist.inst(c).cell)
                .mt
                .map(|m| m.peak_current.ua())
        })
        .collect();
    peaks.sort_by(|a, b| b.total_cmp(a));
    match peaks.split_first() {
        None => Current::ZERO,
        Some((max, rest)) => Current::new(max + lib.tech.simultaneity * rest.iter().sum::<f64>()),
    }
}

/// Analyses every VGND net in the netlist.
///
/// `net_length` supplies each net's wire length (pre-route estimate or
/// post-route extraction) so this crate stays independent of the placer
/// and router.
pub fn analyze_vgnd(
    netlist: &Netlist,
    lib: &Library,
    net_length: impl Fn(NetId) -> f64,
) -> Vec<ClusterBounce> {
    let mut out = Vec::new();
    for (net_id, net) in netlist.nets() {
        let mut switch = None;
        let mut mt_cells = Vec::new();
        for pr in &net.loads {
            let cell = lib.cell(netlist.inst(pr.inst).cell);
            if !cell.pins[pr.pin].is_vgnd {
                continue;
            }
            if cell.role == CellRole::Switch {
                switch = Some(pr.inst);
            } else {
                mt_cells.push(pr.inst);
            }
        }
        let Some(switch) = switch else { continue };
        if mt_cells.is_empty() {
            continue;
        }
        let spec = lib
            .cell(netlist.inst(switch).cell)
            .switch
            .expect("switch cell has a spec");
        let current = cluster_current(lib, netlist, &mt_cells);
        let len = net_length(net_id);
        // Distributed wide power strap: effective IR contribution is half
        // the total R, scaled by the VGND strap-width factor.
        let wire_res =
            Res::new(lib.tech.wire_res(len).kohm() * 0.5 * lib.tech.vgnd_wire_res_factor);
        let bounce = current * spec.on_res + current * wire_res;
        out.push(ClusterBounce {
            net: net_id,
            switch,
            mt_cells,
            current,
            switch_res: spec.on_res,
            wire_res,
            bounce,
            em_ok: current.ua() <= spec.max_current.ua(),
            wire_length_um: len,
        });
    }
    out
}

/// Converts cluster bounce into per-instance delay factors,
/// `(instance, factor)` pairs for every MT-cell.
pub fn bounce_derates(lib: &Library, clusters: &[ClusterBounce]) -> Vec<(InstId, f64)> {
    let mut out = Vec::new();
    for c in clusters {
        let f = c.delay_factor(lib);
        for &cell in &c.mt_cells {
            out.push((cell, f));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_cells::cell::VthClass;

    fn lib() -> Library {
        Library::industrial_130nm()
    }

    /// `k` MT NAND cells on one VGND net with the given switch.
    fn cluster(lib: &Library, k: usize, sw: &str) -> (Netlist, NetId) {
        let mut n = Netlist::new("c");
        let mte = n.add_input("mte");
        let vg = n.add_net("vg");
        let mv = lib.find_id("ND2_X1_MV").unwrap();
        for i in 0..k {
            let a = n.add_input(&format!("a{i}"));
            let b = n.add_input(&format!("b{i}"));
            let z = n.add_output(&format!("z{i}"));
            let u = n.add_instance(&format!("u{i}"), mv, lib);
            n.connect_by_name(u, "A", a, lib).unwrap();
            n.connect_by_name(u, "B", b, lib).unwrap();
            n.connect_by_name(u, "Z", z, lib).unwrap();
            n.connect_by_name(u, "VGND", vg, lib).unwrap();
        }
        let s = n.add_instance("sw", lib.find_id(sw).unwrap(), lib);
        n.connect_by_name(s, "VGND", vg, lib).unwrap();
        n.connect_by_name(s, "MTE", mte, lib).unwrap();
        (n, vg)
    }

    #[test]
    fn bounce_scales_with_cluster_size_and_switch_width() {
        let lib = lib();
        let (n4, _) = cluster(&lib, 4, "SW_W32");
        let (n16, _) = cluster(&lib, 16, "SW_W32");
        let b4 = analyze_vgnd(&n4, &lib, |_| 50.0);
        let b16 = analyze_vgnd(&n16, &lib, |_| 50.0);
        assert_eq!(b4.len(), 1);
        assert_eq!(b16.len(), 1);
        assert!(b16[0].bounce > b4[0].bounce);
        // Wider switch, less bounce.
        let (n16w, _) = cluster(&lib, 16, "SW_W128");
        let bw = analyze_vgnd(&n16w, &lib, |_| 50.0);
        assert!(bw[0].bounce < b16[0].bounce);
    }

    #[test]
    fn diversity_discount_applies() {
        let lib = lib();
        let (n, _) = cluster(&lib, 10, "SW_W32");
        let cells: Vec<InstId> = n
            .instances()
            .filter(|(_, i)| lib.cell(i.cell).is_mt())
            .map(|(id, _)| id)
            .collect();
        let i_cluster = cluster_current(&lib, &n, &cells);
        let peak_one = lib.find("ND2_X1_MV").unwrap().mt.unwrap().peak_current;
        // Far below the undiscounted sum, at least one full peak.
        assert!(i_cluster.ua() < 10.0 * peak_one.ua() * 0.6);
        assert!(i_cluster.ua() >= peak_one.ua());
        // Exact formula.
        let expect = peak_one.ua() * (1.0 + lib.tech.simultaneity * 9.0);
        assert!((i_cluster.ua() - expect).abs() < 1e-9);
    }

    #[test]
    fn em_violation_detected_on_narrow_switch() {
        let lib = lib();
        let (n, _) = cluster(&lib, 40, "SW_W2");
        let b = analyze_vgnd(&n, &lib, |_| 50.0);
        assert!(!b[0].em_ok, "40 cells on a 2 µm switch must violate EM");
    }

    #[test]
    fn wire_length_adds_bounce() {
        let lib = lib();
        let (n, _) = cluster(&lib, 8, "SW_W64");
        let short = analyze_vgnd(&n, &lib, |_| 10.0);
        let long = analyze_vgnd(&n, &lib, |_| 2000.0);
        assert!(long[0].bounce > short[0].bounce);
    }

    #[test]
    fn derates_cover_all_mt_cells_and_exceed_one() {
        let lib = lib();
        let (n, _) = cluster(&lib, 8, "SW_W32");
        let clusters = analyze_vgnd(&n, &lib, |_| 100.0);
        let derates = bounce_derates(&lib, &clusters);
        assert_eq!(derates.len(), 8);
        for (_, f) in &derates {
            assert!(*f > 1.0 && *f < 2.0, "factor {f}");
        }
        let _ = VthClass::MtVgnd;
    }
}
