//! Wake-up cost analysis for power-gated clusters.
//!
//! Power gating is not free to leave: when `MTE` re-asserts, every
//! cluster's virtual-ground rail (charged toward VDD while floating) must
//! be discharged through its footer switch before the MT-cells compute
//! reliably. Two quantities matter at system level:
//!
//! * **wake-up energy** — `E = C_vgnd · VDD²` per sleep/wake cycle
//!   (crowbar + rail recharge), which sets the *break-even standby time*:
//!   sleeping shorter than break-even wastes energy;
//! * **wake-up latency** — a few RC time constants of
//!   `R_switch · C_vgnd`, which bounds how quickly the block can resume.
//!
//! The paper's improved technique changes both: shared switches mean fewer,
//! larger VGND rails (more C per rail, less switch R), so latency stays
//! comparable while the energy is set by the same total capacitance.

use crate::vgnd::analyze_vgnd;
use smt_base::units::{Cap, Current, Time, Volt};
use smt_cells::library::Library;
use smt_netlist::netlist::{NetId, Netlist};

/// Wake-up figures for one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterWakeup {
    /// The VGND net.
    pub net: NetId,
    /// VGND rail capacitance (wire + MT-cell source diffusion).
    pub rail_cap: Cap,
    /// Energy to cycle this cluster through sleep/wake once, femtojoules.
    pub energy_fj: f64,
    /// Time constant `R_sw · C_rail`.
    pub tau: Time,
    /// Latency to settle within ~5% (3τ).
    pub latency: Time,
}

/// Whole-design wake-up summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WakeupReport {
    /// Per-cluster figures.
    pub clusters: Vec<ClusterWakeup>,
    /// Total energy per sleep/wake cycle, femtojoules.
    pub total_energy_fj: f64,
    /// Worst cluster latency.
    pub worst_latency: Time,
}

impl WakeupReport {
    /// Minimum standby duration for which sleeping saves energy, given the
    /// leakage saved while asleep:
    /// `t_breakeven = E_cycle / P_saved`.
    pub fn break_even(&self, leakage_saved: Current, vdd: Volt) -> Time {
        let p_saved_nw = (leakage_saved * vdd).nw();
        if p_saved_nw <= 0.0 {
            return Time::new(f64::INFINITY);
        }
        // fJ / nW = µs; Time is ps, so ×1e6.
        Time::new(self.total_energy_fj / p_saved_nw * 1e6)
    }
}

/// Diffusion capacitance per µm of gated NMOS width hanging on the rail,
/// fF/µm (source/drain junction of the MT-cells' foot).
const CDIFF_FF_PER_UM: f64 = 0.8;

/// Analyses wake-up cost for every VGND cluster.
///
/// `net_length` supplies VGND wire lengths (estimate or extracted), as in
/// [`crate::vgnd::analyze_vgnd`].
pub fn analyze_wakeup(
    netlist: &Netlist,
    lib: &Library,
    net_length: impl Fn(NetId) -> f64,
) -> WakeupReport {
    let vdd = lib.tech.vdd;
    let clusters = analyze_vgnd(netlist, lib, &net_length);
    let mut out = WakeupReport::default();
    for c in clusters {
        let wire = lib.tech.wire_cap(c.wire_length_um);
        let diff_width: f64 = c
            .mt_cells
            .iter()
            .map(|&m| lib.cell(netlist.inst(m).cell).nmos_width_um)
            .sum();
        let rail_cap = wire + Cap::new(diff_width * CDIFF_FF_PER_UM);
        // E = C·V²: fF · V² = fJ.
        let energy_fj = rail_cap.ff() * vdd.volts() * vdd.volts();
        let tau = c.switch_res * rail_cap;
        let latency = tau * 3.0;
        out.total_energy_fj += energy_fj;
        out.worst_latency = out.worst_latency.max(latency);
        out.clusters.push(ClusterWakeup {
            net: c.net,
            rail_cap,
            energy_fj,
            tau,
            latency,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(lib: &Library, k: usize, sw: &str) -> Netlist {
        let mut n = Netlist::new("c");
        let mte = n.add_input("mte");
        let vg = n.add_net("vg");
        let mv = lib.find_id("ND2_X1_MV").unwrap();
        for i in 0..k {
            let a = n.add_input(&format!("a{i}"));
            let b = n.add_input(&format!("b{i}"));
            let z = n.add_output(&format!("z{i}"));
            let u = n.add_instance(&format!("u{i}"), mv, lib);
            n.connect_by_name(u, "A", a, lib).unwrap();
            n.connect_by_name(u, "B", b, lib).unwrap();
            n.connect_by_name(u, "Z", z, lib).unwrap();
            n.connect_by_name(u, "VGND", vg, lib).unwrap();
        }
        let s = n.add_instance("sw", lib.find_id(sw).unwrap(), lib);
        n.connect_by_name(s, "VGND", vg, lib).unwrap();
        n.connect_by_name(s, "MTE", mte, lib).unwrap();
        n
    }

    #[test]
    fn energy_scales_with_cluster_size() {
        let lib = Library::industrial_130nm();
        let small = analyze_wakeup(&cluster(&lib, 4, "SW_W32"), &lib, |_| 40.0);
        let big = analyze_wakeup(&cluster(&lib, 16, "SW_W32"), &lib, |_| 40.0);
        assert_eq!(small.clusters.len(), 1);
        assert!(big.total_energy_fj > small.total_energy_fj * 2.0);
    }

    #[test]
    fn wider_switch_wakes_faster() {
        let lib = Library::industrial_130nm();
        let narrow = analyze_wakeup(&cluster(&lib, 8, "SW_W8"), &lib, |_| 40.0);
        let wide = analyze_wakeup(&cluster(&lib, 8, "SW_W128"), &lib, |_| 40.0);
        assert!(wide.worst_latency < narrow.worst_latency);
        // Energy is a property of the rail, not the switch.
        assert!((wide.total_energy_fj - narrow.total_energy_fj).abs() < 1e-9);
    }

    #[test]
    fn break_even_is_finite_and_sane() {
        let lib = Library::industrial_130nm();
        let r = analyze_wakeup(&cluster(&lib, 8, "SW_W32"), &lib, |_| 40.0);
        // Saving 1 µA of leakage at 1.2 V: break-even in the µs range for
        // tens of fJ per cycle.
        let t = r.break_even(Current::new(1.0), lib.tech.vdd);
        assert!(t.is_finite());
        assert!(t.ps() > 0.0);
        assert!(t.ns() < 1e6, "break-even {} unexpectedly long", t);
        // Zero savings: never worth sleeping.
        assert!(!r.break_even(Current::ZERO, lib.tech.vdd).is_finite());
    }

    #[test]
    fn latency_is_three_tau() {
        let lib = Library::industrial_130nm();
        let r = analyze_wakeup(&cluster(&lib, 8, "SW_W32"), &lib, |_| 40.0);
        let c = &r.clusters[0];
        assert!((c.latency.ps() - 3.0 * c.tau.ps()).abs() < 1e-9);
    }
}
