//! High-fanout net buffering.
//!
//! The MT enable signal "has many fanouts, as MTE is necessary to be
//! connected to all switch transistors and output holders. So, buffers
//! need to be inserted to the MTE net appropriately" (Fig. 4, routing
//! stage). This module provides the generic placement-aware buffer-tree
//! builder `smt-core` uses for exactly that, and which is equally useful
//! for reset/scan-enable style nets.

use smt_base::geom::Point;
use smt_cells::cell::CellId;
use smt_cells::library::Library;
use smt_netlist::netlist::{NetId, Netlist, PinRef};
use smt_place::Placement;

/// Buffering options.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferingConfig {
    /// Maximum loads per buffer (and per level of the tree).
    pub max_fanout: usize,
    /// Buffer cell to insert.
    pub buffer: CellId,
}

/// Outcome of buffering one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferingReport {
    /// Buffers inserted.
    pub buffers: usize,
    /// Levels of buffering added (0 = net was already under the budget).
    pub levels: usize,
}

/// Buffers a high-fanout net into a geometric tree so no net carries more
/// than `max_fanout` loads. Loads are grouped by proximity (median splits)
/// and each group is moved behind a buffer placed at the group's centroid.
///
/// Returns how many buffers/levels were inserted.
pub fn buffer_net(
    netlist: &mut Netlist,
    placement: &mut Placement,
    lib: &Library,
    net: NetId,
    config: &BufferingConfig,
) -> BufferingReport {
    let mut report = BufferingReport::default();
    let frontier = net;
    loop {
        let loads = netlist.net(frontier).loads.clone();
        if loads.len() <= config.max_fanout {
            return report;
        }
        report.levels += 1;
        // Median-split the loads until every group fits the budget.
        let groups = split_geometric(&loads, config.max_fanout, placement);
        for (gi, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let centroid = {
                let n = group.len() as f64;
                Point::new(
                    group.iter().map(|p| placement.loc(p.inst).x).sum::<f64>() / n,
                    group.iter().map(|p| placement.loc(p.inst).y).sum::<f64>() / n,
                )
            };
            let hint = format!("hfb{}_{}", report.levels, gi);
            let (buf, _new_net) = netlist.insert_buffer(frontier, group, config.buffer, &hint, lib);
            placement.set_loc(buf, centroid);
            report.buffers += 1;
        }
        // The frontier net now feeds the level's buffers; if there are
        // still too many of them, loop and buffer the buffers.
    }
}

/// Splits loads into geometric clusters of at most `max_size` pins via
/// recursive median cuts, alternating axes.
fn split_geometric(loads: &[PinRef], max_size: usize, placement: &Placement) -> Vec<Vec<PinRef>> {
    let mut done: Vec<Vec<PinRef>> = Vec::new();
    let mut work: Vec<(Vec<PinRef>, usize)> = vec![(loads.to_vec(), 0)];
    while let Some((mut g, axis)) = work.pop() {
        if g.len() <= max_size {
            done.push(g);
            continue;
        }
        g.sort_by(|a, b| {
            let pa = placement.loc(a.inst);
            let pb = placement.loc(b.inst);
            let (ka, kb) = if axis == 0 {
                (pa.x, pb.x)
            } else {
                (pa.y, pb.y)
            };
            ka.total_cmp(&kb)
        });
        let right = g.split_off(g.len() / 2);
        work.push((g, 1 - axis));
        work.push((right, 1 - axis));
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_cells::cell::VthClass;
    use smt_netlist::check::{analyze, LintPolicy};
    use smt_place::{place, PlacerConfig};
    use smt_sim::check_equivalence;

    fn fanout_net(lib: &Library, loads: usize) -> Netlist {
        let mut n = Netlist::new("hf");
        let a = n.add_input("a");
        let w = n.add_net("w");
        let drv = n.add_instance("drv", lib.find_id("BUF_X4_L").unwrap(), lib);
        n.connect_by_name(drv, "A", a, lib).unwrap();
        n.connect_by_name(drv, "Z", w, lib).unwrap();
        for i in 0..loads {
            let z = n.add_output(&format!("z{i}"));
            let u = n.add_instance(&format!("u{i}"), lib.find_id("INV_X1_L").unwrap(), lib);
            n.connect_by_name(u, "A", w, lib).unwrap();
            n.connect_by_name(u, "Z", z, lib).unwrap();
        }
        n
    }

    #[test]
    fn buffering_caps_fanout_and_preserves_function() {
        let lib = Library::industrial_130nm();
        let reference = fanout_net(&lib, 70);
        let mut n = fanout_net(&lib, 70);
        let mut p = place(&n, &lib, &PlacerConfig::default());
        let w = n.find_net("w").unwrap();
        let cfg = BufferingConfig {
            max_fanout: 8,
            buffer: lib.buffer(2, VthClass::High).unwrap(),
        };
        let report = buffer_net(&mut n, &mut p, &lib, w, &cfg);
        assert!(report.buffers >= 70 / 8);
        assert!(report.levels >= 1);
        // Every net now under the budget.
        for (_, net) in n.nets() {
            assert!(
                net.loads.len() <= 8,
                "net {} fanout {}",
                net.name,
                net.loads.len()
            );
        }
        let report = analyze(&n, &lib, &LintPolicy::structural());
        assert!(report.is_clean(), "{report:?}");
        // Buffering must not change logic.
        let r = check_equivalence(&reference, &n, &lib, 32, 11).unwrap();
        assert!(r.is_equivalent(), "{:?}", r.mismatches.first());
    }

    #[test]
    fn small_nets_untouched() {
        let lib = Library::industrial_130nm();
        let mut n = fanout_net(&lib, 4);
        let mut p = place(&n, &lib, &PlacerConfig::default());
        let w = n.find_net("w").unwrap();
        let cfg = BufferingConfig {
            max_fanout: 8,
            buffer: lib.buffer(2, VthClass::High).unwrap(),
        };
        let before = n.num_instances();
        let report = buffer_net(&mut n, &mut p, &lib, w, &cfg);
        assert_eq!(report, BufferingReport::default());
        assert_eq!(n.num_instances(), before);
    }
}
