//! Clock tree synthesis: recursive geometric clustering with buffer
//! insertion ("Routing (including CTS)" in Fig. 4).
//!
//! Sinks (FF clock pins) are split by the median coordinate, alternating
//! axes, until clusters fit under one buffer's fanout budget; a buffer is
//! placed at each cluster's centroid and the tree is built bottom-up to a
//! root buffer on the clock port. Insertion delay and skew are estimated
//! with the same linear-delay + wire-Elmore models the STA uses.

use smt_base::fingerprint::Fnv64;
use smt_base::geom::Point;
use smt_base::units::{Cap, Time};
use smt_cells::library::Library;
use smt_netlist::netlist::{InstId, Netlist, PinRef};
use smt_place::Placement;
use std::sync::atomic::{AtomicU64, Ordering};

static FULL_CTS_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of from-scratch clock-tree syntheses since process start.
/// [`CtsSession`] replays do not count; tests use the delta of this
/// counter to assert session reuse.
pub fn full_cts_runs() -> u64 {
    FULL_CTS_RUNS.load(Ordering::Relaxed)
}

/// CTS options.
#[derive(Debug, Clone, PartialEq)]
pub struct CtsConfig {
    /// Max sinks (or child buffers) per clock buffer.
    pub max_fanout: usize,
    /// Drive strength of inserted clock buffers.
    pub buffer_drive: u8,
}

impl Default for CtsConfig {
    fn default() -> Self {
        CtsConfig {
            max_fanout: 8,
            buffer_drive: 4,
        }
    }
}

/// CTS outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CtsReport {
    /// Buffers inserted.
    pub buffers: usize,
    /// Tree depth in buffer levels.
    pub levels: usize,
    /// Estimated min/max insertion delay over all FF clock pins.
    pub insertion_min: Time,
    /// See [`CtsReport::insertion_min`].
    pub insertion_max: Time,
}

impl CtsReport {
    /// Estimated clock skew.
    pub fn skew(&self) -> Time {
        self.insertion_max - self.insertion_min
    }
}

struct Cluster {
    /// Sink pins (FF CK pins or child buffer A pins).
    sinks: Vec<PinRef>,
    centroid: Point,
}

/// One recorded buffer insertion of a CTS run: everything needed to
/// replay it verbatim on a structurally identical netlist.
#[derive(Debug, Clone, PartialEq)]
struct CtsOp {
    buf_cell: smt_cells::cell::CellId,
    sinks: Vec<PinRef>,
    loc: Point,
    hint: String,
}

/// Incremental CTS session: caches a full synthesis as a fingerprint of
/// its inputs plus the ordered buffer-insertion ops and the resulting
/// report. When [`CtsSession::run`] sees the same fingerprint again
/// (same clock sinks, sink locations, FF cells, buffer cell, config and
/// netlist id counters), it replays the recorded insertions — producing
/// byte-identical buffer names, ids and placements — and returns the
/// cached report, skipping the median-split clustering and the
/// insertion-delay estimate. Any input drift misses the fingerprint and
/// falls back to full synthesis, so results are always bit-identical to
/// the from-scratch path.
#[derive(Debug, Clone, Default)]
pub struct CtsSession {
    fp: Option<u64>,
    ops: Vec<CtsOp>,
    report: Option<CtsReport>,
    /// True when the last [`CtsSession::run`] replayed the cache.
    pub last_replayed: bool,
}

impl CtsSession {
    /// An empty session (first run is always a full synthesis).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs CTS, replaying the cached synthesis when the inputs are
    /// provably unchanged.
    pub fn run(
        &mut self,
        netlist: &mut Netlist,
        placement: &mut Placement,
        lib: &Library,
        config: &CtsConfig,
    ) -> Option<CtsReport> {
        let fp = cts_fp(netlist, placement, lib, config);
        if self.fp == Some(fp) {
            self.last_replayed = true;
            for op in &self.ops {
                insert_buffer(netlist, placement, lib, op);
            }
            return self.report.clone();
        }
        self.last_replayed = false;
        let mut ops = Vec::new();
        let report = synthesize_recording(netlist, placement, lib, config, &mut ops);
        self.fp = Some(fp);
        self.ops = ops;
        self.report = report.clone();
        report
    }
}

/// Fingerprint of every input a CTS run depends on: the config, the
/// buffer cell, the clock net and its ordered sink pins, every
/// sequential instance (id, cell, location, clock binding — the
/// insertion-delay estimate walks all of them), the die (port
/// locations), and the netlist's id counters (inserted buffer names and
/// ids must replay identically).
fn cts_fp(netlist: &Netlist, placement: &Placement, lib: &Library, config: &CtsConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(config.max_fanout);
    h.write_u8(config.buffer_drive);
    h.write_usize(netlist.inst_capacity());
    h.write_usize(netlist.num_nets());
    h.write_f64(placement.die.lo.x);
    h.write_f64(placement.die.lo.y);
    h.write_f64(placement.die.hi.x);
    h.write_f64(placement.die.hi.y);
    match lib
        .clock_buffer(config.buffer_drive)
        .or_else(|| lib.clock_buffer(1))
    {
        Some(c) => h.write_u64(u64::from(c.0)),
        None => h.write_u8(0),
    }
    match netlist.clock_net() {
        None => h.write_u8(0),
        Some(clock) => {
            h.write_u8(1);
            h.write_u64(u64::from(clock.0));
            let net = netlist.net(clock);
            h.write_usize(net.loads.len());
            for pr in &net.loads {
                h.write_u64(u64::from(pr.inst.0));
                h.write_usize(pr.pin);
            }
        }
    }
    for (id, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        if !cell.is_sequential() {
            continue;
        }
        h.write_u64(u64::from(id.0));
        h.write_u64(u64::from(inst.cell.0));
        let loc = placement.loc(id);
        h.write_f64(loc.x);
        h.write_f64(loc.y);
        match cell
            .pins
            .iter()
            .position(|p| p.is_clock)
            .and_then(|ck| inst.net_on(ck))
        {
            Some(n) => {
                h.write_u8(1);
                h.write_u64(u64::from(n.0));
            }
            None => h.write_u8(0),
        }
    }
    h.finish()
}

/// Runs CTS on the netlist's clock net. Returns `None` when the design has
/// no clock or no FFs.
///
/// New buffers are placed via [`Placement::set_loc`]; FF `CK` pins are
/// rewired to leaf buffer nets.
pub fn synthesize_clock_tree(
    netlist: &mut Netlist,
    placement: &mut Placement,
    lib: &Library,
    config: &CtsConfig,
) -> Option<CtsReport> {
    synthesize_recording(netlist, placement, lib, config, &mut Vec::new())
}

fn synthesize_recording(
    netlist: &mut Netlist,
    placement: &mut Placement,
    lib: &Library,
    config: &CtsConfig,
    ops: &mut Vec<CtsOp>,
) -> Option<CtsReport> {
    FULL_CTS_RUNS.fetch_add(1, Ordering::Relaxed);
    let clock = netlist.clock_net()?;
    let sinks: Vec<PinRef> = netlist.net(clock).loads.clone();
    if sinks.is_empty() {
        return None;
    }
    let buf_cell = lib
        .clock_buffer(config.buffer_drive)
        .or_else(|| lib.clock_buffer(1))
        .expect("library has clock buffers");

    // Recursive split into leaf clusters.
    let mut leaves: Vec<Cluster> = Vec::new();
    let mut stack = vec![(sinks, 0usize)];
    while let Some((mut group, axis)) = stack.pop() {
        if group.len() <= config.max_fanout {
            let centroid = centroid_of(&group, placement);
            leaves.push(Cluster {
                sinks: group,
                centroid,
            });
            continue;
        }
        group.sort_by(|a, b| {
            let pa = placement.loc(a.inst);
            let pb = placement.loc(b.inst);
            let (ka, kb) = if axis == 0 {
                (pa.x, pb.x)
            } else {
                (pa.y, pb.y)
            };
            ka.total_cmp(&kb)
        });
        let mid = group.len() / 2;
        let right = group.split_off(mid);
        stack.push((group, 1 - axis));
        stack.push((right, 1 - axis));
    }

    // Build buffers bottom-up: leaves first, then merge upwards until one
    // root remains.
    let mut buffers = 0usize;
    let mut levels = 1usize;
    let mut level: Vec<(InstId, Point)> = Vec::new();
    for (i, leaf) in leaves.iter().enumerate() {
        let op = CtsOp {
            buf_cell,
            sinks: leaf.sinks.clone(),
            loc: leaf.centroid,
            hint: format!("ctsl{i}"),
        };
        let (buf, _net) = insert_buffer(netlist, placement, lib, &op);
        ops.push(op);
        buffers += 1;
        level.push((buf, leaf.centroid));
    }
    while level.len() > config.max_fanout {
        levels += 1;
        let mut next: Vec<(InstId, Point)> = Vec::new();
        for (i, chunk) in level.chunks(config.max_fanout).enumerate() {
            let pins: Vec<PinRef> = chunk
                .iter()
                .map(|(b, _)| PinRef {
                    inst: *b,
                    pin: lib
                        .cell(netlist.inst(*b).cell)
                        .pin_index("A")
                        .expect("buf A"),
                })
                .collect();
            let c = Point::new(
                chunk.iter().map(|(_, p)| p.x).sum::<f64>() / chunk.len() as f64,
                chunk.iter().map(|(_, p)| p.y).sum::<f64>() / chunk.len() as f64,
            );
            let op = CtsOp {
                buf_cell,
                sinks: pins,
                loc: c,
                hint: format!("ctsm{levels}_{i}"),
            };
            let (buf, _net) = insert_buffer(netlist, placement, lib, &op);
            ops.push(op);
            buffers += 1;
            next.push((buf, c));
        }
        level = next;
    }
    // Root buffer on the clock port.
    levels += 1;
    let pins: Vec<PinRef> = level
        .iter()
        .map(|(b, _)| PinRef {
            inst: *b,
            pin: lib
                .cell(netlist.inst(*b).cell)
                .pin_index("A")
                .expect("buf A"),
        })
        .collect();
    let root_loc = centroid_points(&level.iter().map(|(_, p)| *p).collect::<Vec<_>>());
    let op = CtsOp {
        buf_cell,
        sinks: pins,
        loc: root_loc,
        hint: "ctsroot".to_owned(),
    };
    let (_root, _net) = insert_buffer(netlist, placement, lib, &op);
    ops.push(op);
    buffers += 1;

    // Insertion delay estimate per FF sink: walk up the buffer chain.
    let report = estimate_insertion(netlist, placement, lib, clock);
    Some(CtsReport {
        buffers,
        levels,
        insertion_min: report.0,
        insertion_max: report.1,
    })
}

fn centroid_of(pins: &[PinRef], placement: &Placement) -> Point {
    let pts: Vec<Point> = pins.iter().map(|p| placement.loc(p.inst)).collect();
    centroid_points(&pts)
}

fn centroid_points(pts: &[Point]) -> Point {
    let n = pts.len().max(1) as f64;
    Point::new(
        pts.iter().map(|p| p.x).sum::<f64>() / n,
        pts.iter().map(|p| p.y).sum::<f64>() / n,
    )
}

/// Inserts one buffer driving the op's sinks, rewiring them from
/// whatever net they were on (they must share one net — the clock or a
/// parent buffer net).
fn insert_buffer(
    netlist: &mut Netlist,
    placement: &mut Placement,
    lib: &Library,
    op: &CtsOp,
) -> (InstId, smt_netlist::netlist::NetId) {
    let src = netlist
        .inst(op.sinks[0].inst)
        .net_on(op.sinks[0].pin)
        .expect("sink pin is connected");
    let (buf, net) = netlist.insert_buffer(src, &op.sinks, op.buf_cell, &op.hint, lib);
    placement.set_loc(buf, op.loc);
    (buf, net)
}

/// Walks the buffer tree from each FF clock pin to the clock source and
/// sums stage delays.
fn estimate_insertion(
    netlist: &Netlist,
    placement: &Placement,
    lib: &Library,
    clock_root: smt_netlist::netlist::NetId,
) -> (Time, Time) {
    let mut min = Time::new(f64::INFINITY);
    let mut max = Time::ZERO;
    for (id, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        if !cell.is_sequential() {
            continue;
        }
        let ck_pin = cell
            .pins
            .iter()
            .position(|p| p.is_clock)
            .expect("sequential cell has a clock pin");
        let Some(mut net) = inst.net_on(ck_pin) else {
            continue;
        };
        let mut delay = Time::ZERO;
        let mut hops = 0;
        loop {
            if net == clock_root || hops > 64 {
                break;
            }
            let driver = match netlist.net(net).driver {
                Some(smt_netlist::netlist::NetDriver::Inst(pr)) => pr,
                _ => break,
            };
            let dcell = lib.cell(netlist.inst(driver.inst).cell);
            let arc = dcell.arcs.first();
            // Load on the driver's output net: pin caps + wire estimate.
            let load: Cap = netlist
                .net(net)
                .loads
                .iter()
                .map(|pr| {
                    let c = lib.cell(netlist.inst(pr.inst).cell);
                    c.pins[pr.pin].cap
                })
                .sum::<Cap>()
                + wire_cap_of(netlist, placement, lib, net);
            if let Some(arc) = arc {
                delay += arc.delay(Time::new(30.0), load);
            }
            let in_pin = dcell.pin_index("A").unwrap_or(0);
            match netlist.inst(driver.inst).net_on(in_pin) {
                Some(up) => net = up,
                None => break,
            }
            hops += 1;
        }
        min = min.min(delay);
        max = max.max(delay);
        let _ = id;
    }
    if !min.is_finite() {
        (Time::ZERO, Time::ZERO)
    } else {
        (min, max)
    }
}

fn wire_cap_of(
    netlist: &Netlist,
    placement: &Placement,
    lib: &Library,
    net: smt_netlist::netlist::NetId,
) -> Cap {
    lib.tech.wire_cap(placement.net_hpwl(netlist, net) * 1.2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_netlist::check::{analyze, LintPolicy};
    use smt_place::{place, PlacerConfig};

    fn many_ffs(lib: &Library, count: usize) -> Netlist {
        let mut n = Netlist::new("ffs");
        let clk = n.add_clock("clk");
        let d = n.add_input("d");
        let dff = lib.find_id("DFF_X1_L").unwrap();
        let mut prev = d;
        for i in 0..count {
            let q = n.add_net(&format!("q{i}"));
            let ff = n.add_instance(&format!("ff{i}"), dff, lib);
            n.connect_by_name(ff, "D", prev, lib).unwrap();
            n.connect_by_name(ff, "CK", clk, lib).unwrap();
            n.connect_by_name(ff, "Q", q, lib).unwrap();
            prev = q;
        }
        n.expose_output("z", prev);
        n
    }

    #[test]
    fn cts_builds_a_tree_and_caps_fanout() {
        let lib = Library::industrial_130nm();
        let mut n = many_ffs(&lib, 60);
        let mut p = place(&n, &lib, &PlacerConfig::default());
        let report = synthesize_clock_tree(&mut n, &mut p, &lib, &CtsConfig::default())
            .expect("has clock and FFs");
        assert!(report.buffers >= 60 / 8, "buffers = {}", report.buffers);
        assert!(report.levels >= 2);
        // Clock root now feeds only buffers; every net fanout ≤ max.
        let clock = n.clock_net().unwrap();
        assert!(n.net(clock).loads.len() <= 8);
        for (_, net) in n.nets() {
            let clocked = net
                .loads
                .iter()
                .any(|pr| lib.cell(n.inst(pr.inst).cell).pins[pr.pin].is_clock);
            if clocked {
                assert!(
                    net.loads.len() <= 8,
                    "net {} fanout {}",
                    net.name,
                    net.loads.len()
                );
            }
        }
        // Netlist still structurally clean.
        let lint = analyze(&n, &lib, &LintPolicy::structural());
        assert!(lint.is_clean(), "{lint:?}");
        // Skew is a finite, non-negative estimate.
        assert!(report.skew().ps() >= 0.0);
        assert!(report.insertion_max.ps() > 0.0);
    }

    #[test]
    fn no_clock_no_cts() {
        let lib = Library::industrial_130nm();
        let mut n = Netlist::new("comb");
        let a = n.add_input("a");
        let z = n.add_output("z");
        let u = n.add_instance("u", lib.find_id("INV_X1_L").unwrap(), &lib);
        n.connect_by_name(u, "A", a, &lib).unwrap();
        n.connect_by_name(u, "Z", z, &lib).unwrap();
        let mut p = place(&n, &lib, &PlacerConfig::default());
        assert!(synthesize_clock_tree(&mut n, &mut p, &lib, &CtsConfig::default()).is_none());
    }

    #[test]
    fn session_replay_is_bit_identical_and_skips_synthesis() {
        let lib = Library::industrial_130nm();
        let n0 = many_ffs(&lib, 40);
        let p0 = place(&n0, &lib, &PlacerConfig::default());
        let cfg = CtsConfig::default();

        let mut s = CtsSession::new();
        let before = full_cts_runs();
        let mut n1 = n0.clone();
        let mut p1 = p0.clone();
        let r1 = s.run(&mut n1, &mut p1, &lib, &cfg).unwrap();
        assert!(!s.last_replayed);
        assert_eq!(full_cts_runs() - before, 1);

        // Same pre-CTS state again: the session replays without a
        // synthesis and rebuilds the identical tree.
        let mut n2 = n0.clone();
        let mut p2 = p0.clone();
        let r2 = s.run(&mut n2, &mut p2, &lib, &cfg).unwrap();
        assert!(s.last_replayed);
        assert_eq!(full_cts_runs() - before, 1);
        assert_eq!(r1, r2);
        assert_eq!(
            smt_netlist::verilog::write_with_lib(&n1, &lib),
            smt_netlist::verilog::write_with_lib(&n2, &lib)
        );
        for (id, _) in n1.instances() {
            assert_eq!(p1.loc(id), p2.loc(id));
        }

        // A moved FF misses the fingerprint and re-synthesises.
        let mut n3 = n0.clone();
        let mut p3 = p0.clone();
        let ff = n3.find_inst("ff3").unwrap();
        let loc = p3.loc(ff);
        p3.set_loc(ff, Point::new(loc.x + 24.0, loc.y));
        s.run(&mut n3, &mut p3, &lib, &cfg).unwrap();
        assert!(!s.last_replayed);
        assert_eq!(full_cts_runs() - before, 2);
    }

    #[test]
    fn buffers_are_placed() {
        let lib = Library::industrial_130nm();
        let mut n = many_ffs(&lib, 30);
        let mut p = place(&n, &lib, &PlacerConfig::default());
        synthesize_clock_tree(&mut n, &mut p, &lib, &CtsConfig::default()).unwrap();
        for (id, inst) in n.instances() {
            if inst.name.starts_with("cts") {
                let loc = p.loc(id);
                assert!(p.die.contains(loc) || loc != Point::ORIGIN, "{}", inst.name);
            }
        }
    }
}
