//! Clock tree synthesis: recursive geometric clustering with buffer
//! insertion ("Routing (including CTS)" in Fig. 4).
//!
//! Sinks (FF clock pins) are split by the median coordinate, alternating
//! axes, until clusters fit under one buffer's fanout budget; a buffer is
//! placed at each cluster's centroid and the tree is built bottom-up to a
//! root buffer on the clock port. Insertion delay and skew are estimated
//! with the same linear-delay + wire-Elmore models the STA uses.

use smt_base::geom::Point;
use smt_base::units::{Cap, Time};
use smt_cells::library::Library;
use smt_netlist::netlist::{InstId, Netlist, PinRef};
use smt_place::Placement;

/// CTS options.
#[derive(Debug, Clone, PartialEq)]
pub struct CtsConfig {
    /// Max sinks (or child buffers) per clock buffer.
    pub max_fanout: usize,
    /// Drive strength of inserted clock buffers.
    pub buffer_drive: u8,
}

impl Default for CtsConfig {
    fn default() -> Self {
        CtsConfig {
            max_fanout: 8,
            buffer_drive: 4,
        }
    }
}

/// CTS outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CtsReport {
    /// Buffers inserted.
    pub buffers: usize,
    /// Tree depth in buffer levels.
    pub levels: usize,
    /// Estimated min/max insertion delay over all FF clock pins.
    pub insertion_min: Time,
    /// See [`CtsReport::insertion_min`].
    pub insertion_max: Time,
}

impl CtsReport {
    /// Estimated clock skew.
    pub fn skew(&self) -> Time {
        self.insertion_max - self.insertion_min
    }
}

struct Cluster {
    /// Sink pins (FF CK pins or child buffer A pins).
    sinks: Vec<PinRef>,
    centroid: Point,
}

/// Runs CTS on the netlist's clock net. Returns `None` when the design has
/// no clock or no FFs.
///
/// New buffers are placed via [`Placement::set_loc`]; FF `CK` pins are
/// rewired to leaf buffer nets.
pub fn synthesize_clock_tree(
    netlist: &mut Netlist,
    placement: &mut Placement,
    lib: &Library,
    config: &CtsConfig,
) -> Option<CtsReport> {
    let clock = netlist.clock_net()?;
    let sinks: Vec<PinRef> = netlist.net(clock).loads.clone();
    if sinks.is_empty() {
        return None;
    }
    let buf_cell = lib
        .clock_buffer(config.buffer_drive)
        .or_else(|| lib.clock_buffer(1))
        .expect("library has clock buffers");

    // Recursive split into leaf clusters.
    let mut leaves: Vec<Cluster> = Vec::new();
    let mut stack = vec![(sinks, 0usize)];
    while let Some((mut group, axis)) = stack.pop() {
        if group.len() <= config.max_fanout {
            let centroid = centroid_of(&group, placement);
            leaves.push(Cluster {
                sinks: group,
                centroid,
            });
            continue;
        }
        group.sort_by(|a, b| {
            let pa = placement.loc(a.inst);
            let pb = placement.loc(b.inst);
            let (ka, kb) = if axis == 0 {
                (pa.x, pb.x)
            } else {
                (pa.y, pb.y)
            };
            ka.total_cmp(&kb)
        });
        let mid = group.len() / 2;
        let right = group.split_off(mid);
        stack.push((group, 1 - axis));
        stack.push((right, 1 - axis));
    }

    // Build buffers bottom-up: leaves first, then merge upwards until one
    // root remains.
    let mut buffers = 0usize;
    let mut levels = 1usize;
    let mut level: Vec<(InstId, Point)> = Vec::new();
    for (i, leaf) in leaves.iter().enumerate() {
        let (buf, _net) = insert_buffer(
            netlist,
            placement,
            lib,
            buf_cell,
            &leaf.sinks,
            leaf.centroid,
            &format!("ctsl{i}"),
        );
        buffers += 1;
        level.push((buf, leaf.centroid));
    }
    while level.len() > config.max_fanout {
        levels += 1;
        let mut next: Vec<(InstId, Point)> = Vec::new();
        for (i, chunk) in level.chunks(config.max_fanout).enumerate() {
            let pins: Vec<PinRef> = chunk
                .iter()
                .map(|(b, _)| PinRef {
                    inst: *b,
                    pin: lib
                        .cell(netlist.inst(*b).cell)
                        .pin_index("A")
                        .expect("buf A"),
                })
                .collect();
            let c = Point::new(
                chunk.iter().map(|(_, p)| p.x).sum::<f64>() / chunk.len() as f64,
                chunk.iter().map(|(_, p)| p.y).sum::<f64>() / chunk.len() as f64,
            );
            let (buf, _net) = insert_buffer(
                netlist,
                placement,
                lib,
                buf_cell,
                &pins,
                c,
                &format!("ctsm{levels}_{i}"),
            );
            buffers += 1;
            next.push((buf, c));
        }
        level = next;
    }
    // Root buffer on the clock port.
    levels += 1;
    let pins: Vec<PinRef> = level
        .iter()
        .map(|(b, _)| PinRef {
            inst: *b,
            pin: lib
                .cell(netlist.inst(*b).cell)
                .pin_index("A")
                .expect("buf A"),
        })
        .collect();
    let root_loc = centroid_points(&level.iter().map(|(_, p)| *p).collect::<Vec<_>>());
    let (_root, _net) = insert_buffer(
        netlist, placement, lib, buf_cell, &pins, root_loc, "ctsroot",
    );
    buffers += 1;

    // Insertion delay estimate per FF sink: walk up the buffer chain.
    let report = estimate_insertion(netlist, placement, lib, clock);
    Some(CtsReport {
        buffers,
        levels,
        insertion_min: report.0,
        insertion_max: report.1,
    })
}

fn centroid_of(pins: &[PinRef], placement: &Placement) -> Point {
    let pts: Vec<Point> = pins.iter().map(|p| placement.loc(p.inst)).collect();
    centroid_points(&pts)
}

fn centroid_points(pts: &[Point]) -> Point {
    let n = pts.len().max(1) as f64;
    Point::new(
        pts.iter().map(|p| p.x).sum::<f64>() / n,
        pts.iter().map(|p| p.y).sum::<f64>() / n,
    )
}

/// Inserts one buffer driving `sinks`, rewiring them from whatever net they
/// were on (they must share one net — the clock or a parent buffer net).
fn insert_buffer(
    netlist: &mut Netlist,
    placement: &mut Placement,
    lib: &Library,
    buf_cell: smt_cells::cell::CellId,
    sinks: &[PinRef],
    loc: Point,
    hint: &str,
) -> (InstId, smt_netlist::netlist::NetId) {
    let src = netlist
        .inst(sinks[0].inst)
        .net_on(sinks[0].pin)
        .expect("sink pin is connected");
    let (buf, net) = netlist.insert_buffer(src, sinks, buf_cell, hint, lib);
    placement.set_loc(buf, loc);
    (buf, net)
}

/// Walks the buffer tree from each FF clock pin to the clock source and
/// sums stage delays.
fn estimate_insertion(
    netlist: &Netlist,
    placement: &Placement,
    lib: &Library,
    clock_root: smt_netlist::netlist::NetId,
) -> (Time, Time) {
    let mut min = Time::new(f64::INFINITY);
    let mut max = Time::ZERO;
    for (id, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        if !cell.is_sequential() {
            continue;
        }
        let ck_pin = cell
            .pins
            .iter()
            .position(|p| p.is_clock)
            .expect("sequential cell has a clock pin");
        let Some(mut net) = inst.net_on(ck_pin) else {
            continue;
        };
        let mut delay = Time::ZERO;
        let mut hops = 0;
        loop {
            if net == clock_root || hops > 64 {
                break;
            }
            let driver = match netlist.net(net).driver {
                Some(smt_netlist::netlist::NetDriver::Inst(pr)) => pr,
                _ => break,
            };
            let dcell = lib.cell(netlist.inst(driver.inst).cell);
            let arc = dcell.arcs.first();
            // Load on the driver's output net: pin caps + wire estimate.
            let load: Cap = netlist
                .net(net)
                .loads
                .iter()
                .map(|pr| {
                    let c = lib.cell(netlist.inst(pr.inst).cell);
                    c.pins[pr.pin].cap
                })
                .sum::<Cap>()
                + wire_cap_of(netlist, placement, lib, net);
            if let Some(arc) = arc {
                delay += arc.delay(Time::new(30.0), load);
            }
            let in_pin = dcell.pin_index("A").unwrap_or(0);
            match netlist.inst(driver.inst).net_on(in_pin) {
                Some(up) => net = up,
                None => break,
            }
            hops += 1;
        }
        min = min.min(delay);
        max = max.max(delay);
        let _ = id;
    }
    if !min.is_finite() {
        (Time::ZERO, Time::ZERO)
    } else {
        (min, max)
    }
}

fn wire_cap_of(
    netlist: &Netlist,
    placement: &Placement,
    lib: &Library,
    net: smt_netlist::netlist::NetId,
) -> Cap {
    lib.tech.wire_cap(placement.net_hpwl(netlist, net) * 1.2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_netlist::check::{analyze, LintPolicy};
    use smt_place::{place, PlacerConfig};

    fn many_ffs(lib: &Library, count: usize) -> Netlist {
        let mut n = Netlist::new("ffs");
        let clk = n.add_clock("clk");
        let d = n.add_input("d");
        let dff = lib.find_id("DFF_X1_L").unwrap();
        let mut prev = d;
        for i in 0..count {
            let q = n.add_net(&format!("q{i}"));
            let ff = n.add_instance(&format!("ff{i}"), dff, lib);
            n.connect_by_name(ff, "D", prev, lib).unwrap();
            n.connect_by_name(ff, "CK", clk, lib).unwrap();
            n.connect_by_name(ff, "Q", q, lib).unwrap();
            prev = q;
        }
        n.expose_output("z", prev);
        n
    }

    #[test]
    fn cts_builds_a_tree_and_caps_fanout() {
        let lib = Library::industrial_130nm();
        let mut n = many_ffs(&lib, 60);
        let mut p = place(&n, &lib, &PlacerConfig::default());
        let report = synthesize_clock_tree(&mut n, &mut p, &lib, &CtsConfig::default())
            .expect("has clock and FFs");
        assert!(report.buffers >= 60 / 8, "buffers = {}", report.buffers);
        assert!(report.levels >= 2);
        // Clock root now feeds only buffers; every net fanout ≤ max.
        let clock = n.clock_net().unwrap();
        assert!(n.net(clock).loads.len() <= 8);
        for (_, net) in n.nets() {
            let clocked = net
                .loads
                .iter()
                .any(|pr| lib.cell(n.inst(pr.inst).cell).pins[pr.pin].is_clock);
            if clocked {
                assert!(
                    net.loads.len() <= 8,
                    "net {} fanout {}",
                    net.name,
                    net.loads.len()
                );
            }
        }
        // Netlist still structurally clean.
        let lint = analyze(&n, &lib, &LintPolicy::structural());
        assert!(lint.is_clean(), "{lint:?}");
        // Skew is a finite, non-negative estimate.
        assert!(report.skew().ps() >= 0.0);
        assert!(report.insertion_max.ps() > 0.0);
    }

    #[test]
    fn no_clock_no_cts() {
        let lib = Library::industrial_130nm();
        let mut n = Netlist::new("comb");
        let a = n.add_input("a");
        let z = n.add_output("z");
        let u = n.add_instance("u", lib.find_id("INV_X1_L").unwrap(), &lib);
        n.connect_by_name(u, "A", a, &lib).unwrap();
        n.connect_by_name(u, "Z", z, &lib).unwrap();
        let mut p = place(&n, &lib, &PlacerConfig::default());
        assert!(synthesize_clock_tree(&mut n, &mut p, &lib, &CtsConfig::default()).is_none());
    }

    #[test]
    fn buffers_are_placed() {
        let lib = Library::industrial_130nm();
        let mut n = many_ffs(&lib, 30);
        let mut p = place(&n, &lib, &PlacerConfig::default());
        synthesize_clock_tree(&mut n, &mut p, &lib, &CtsConfig::default()).unwrap();
        for (id, inst) in n.instances() {
            if inst.name.starts_with("cts") {
                let loc = p.loc(id);
                assert!(p.die.contains(loc) || loc != Point::ORIGIN, "{}", inst.name);
            }
        }
    }
}
