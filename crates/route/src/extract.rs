//! Parasitic extraction: per-net RC trees and Elmore delays.
//!
//! Two fidelity levels, matching the two points in Fig. 4 where the flow
//! consumes RC:
//!
//! * [`Parasitics::estimate`] — pre-route, from placement HPWL (what the
//!   first switch-structure construction uses);
//! * [`Parasitics::extract`] — post-route, from the global router's
//!   per-net routed lengths distributed over the net's Steiner topology
//!   (what the re-optimization uses; the "SPEF" of the paper).

use crate::global::{net_pins, GlobalRoute};
use crate::steiner::steiner_tree;
use smt_base::fingerprint::Fnv64;
use smt_base::units::{Cap, Res, Time};
use smt_cells::library::Library;
use smt_netlist::netlist::{NetId, Netlist};
use smt_place::estimate::estimate_net_rc;
use smt_place::Placement;
use std::sync::atomic::{AtomicU64, Ordering};

static REEXTRACTIONS_AVOIDED: AtomicU64 = AtomicU64::new(0);

/// Number of per-net extractions [`Parasitics::update`] skipped because
/// the net's extraction fingerprint was unchanged (process-wide).
pub fn reextractions_avoided() -> u64 {
    REEXTRACTIONS_AVOIDED.load(Ordering::Relaxed)
}

/// Extracted parasitics of one net.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetParasitics {
    /// Wire length, µm.
    pub length_um: f64,
    /// Total wire capacitance (pin caps not included).
    pub wire_cap: Cap,
    /// Total wire resistance.
    pub wire_res: Res,
    /// Per-sink wire Elmore delay (driver resistance excluded), in load
    /// order: instance loads first, then port loads.
    pub sink_elmore: Vec<Time>,
}

impl NetParasitics {
    /// Wire Elmore for the `k`-th sink (instance loads first). Falls back
    /// to the worst sink when the index is out of range (defensive: sink
    /// lists can grow between extraction and query during ECO).
    pub fn elmore(&self, k: usize) -> Time {
        self.sink_elmore
            .get(k)
            .copied()
            .or_else(|| self.sink_elmore.iter().copied().reduce(Time::max))
            .unwrap_or(Time::ZERO)
    }
}

/// Parasitics for every net of a design.
#[derive(Debug, Clone, Default)]
pub struct Parasitics {
    /// Indexed by `NetId::index()`.
    pub nets: Vec<NetParasitics>,
    /// True when produced by post-route extraction.
    pub post_route: bool,
    /// Per-net extraction fingerprints (empty for estimates and parsed
    /// SPEF): everything a net's extraction depends on — pin positions,
    /// sink cells, port loads, routed length — so [`Parasitics::update`]
    /// can prove a cached entry is still exact.
    pub(crate) fps: Vec<u64>,
}

impl Parasitics {
    /// Parasitics of one net. Nets created *after* extraction (hold-fix
    /// buffers, MTE buffers) read as zero-RC — conservative for the ECO
    /// checks that run on them.
    pub fn net(&self, id: NetId) -> &NetParasitics {
        const EMPTY: &NetParasitics = &NetParasitics {
            length_um: 0.0,
            wire_cap: Cap::ZERO,
            wire_res: Res::ZERO,
            sink_elmore: Vec::new(),
        };
        self.nets.get(id.index()).unwrap_or(EMPTY)
    }

    /// Pre-route estimate: lumped RC from placement HPWL; every sink sees
    /// half the wire resistance times the wire cap (π-model average).
    pub fn estimate(netlist: &Netlist, lib: &Library, placement: &Placement) -> Self {
        let mut nets = Vec::with_capacity(netlist.num_nets());
        for (id, net) in netlist.nets() {
            let rc = estimate_net_rc(netlist, lib, placement, id);
            let n_sinks = net.loads.len() + net.port_loads.len();
            let elmore = Time::new(0.5 * rc.res.kohm() * rc.cap.ff());
            nets.push(NetParasitics {
                length_um: rc.length_um,
                wire_cap: rc.cap,
                wire_res: rc.res,
                sink_elmore: vec![elmore; n_sinks],
            });
        }
        Parasitics {
            nets,
            post_route: false,
            fps: Vec::new(),
        }
    }

    /// Post-route extraction: rebuilds each net's Steiner topology, scales
    /// it to the routed length, loads sink pin caps, and computes per-sink
    /// Elmore delays on the RC tree.
    pub fn extract(
        netlist: &Netlist,
        lib: &Library,
        placement: &Placement,
        route: &GlobalRoute,
    ) -> Self {
        let mut nets = Vec::with_capacity(netlist.num_nets());
        let mut fps = Vec::with_capacity(netlist.num_nets());
        for (id, _) in netlist.nets() {
            nets.push(extract_net(netlist, lib, placement, id, route.length(id)));
            fps.push(net_ext_fp(netlist, placement, id, route.length(id)));
        }
        Parasitics {
            nets,
            post_route: true,
            fps,
        }
    }

    /// Incremental post-route re-extraction: nets whose extraction
    /// fingerprint (pins, sink cells, port loads, routed length) is
    /// unchanged from `prev` keep their cached entry; everything else
    /// runs through the same per-net extraction as
    /// [`Parasitics::extract`], so the result is bit-identical to a
    /// from-scratch extraction of the same inputs. `prev` must itself be
    /// post-route with fingerprints (otherwise every net re-extracts and
    /// the call degrades to a full pass).
    pub fn update(
        mut prev: Parasitics,
        netlist: &Netlist,
        lib: &Library,
        placement: &Placement,
        route: &GlobalRoute,
    ) -> Self {
        let reusable = prev.post_route && prev.fps.len() == prev.nets.len();
        let mut nets = Vec::with_capacity(netlist.num_nets());
        let mut fps = Vec::with_capacity(netlist.num_nets());
        for (id, _) in netlist.nets() {
            let fp = net_ext_fp(netlist, placement, id, route.length(id));
            if reusable && prev.fps.get(id.index()) == Some(&fp) {
                REEXTRACTIONS_AVOIDED.fetch_add(1, Ordering::Relaxed);
                // `prev` is consumed, so a proven-fresh entry moves over
                // without cloning its per-sink buffers.
                nets.push(std::mem::take(&mut prev.nets[id.index()]));
            } else {
                nets.push(extract_net(netlist, lib, placement, id, route.length(id)));
            }
            fps.push(fp);
        }
        Parasitics {
            nets,
            post_route: true,
            fps,
        }
    }
}

/// Everything one net's extraction depends on (besides the library,
/// which is fixed for a flow): ordered pin positions, instance-sink
/// cells and pin indices, port-load identities, and the routed length.
/// Pin positions are streamed with [`net_pins`]' framing (driver first,
/// instance loads, then port loads; empty when undriven) without
/// materialising the list — the revalidation scan in
/// [`Parasitics::update`] touches every net, so it must not allocate.
fn net_ext_fp(netlist: &Netlist, placement: &Placement, id: NetId, routed: f64) -> u64 {
    let net = netlist.net(id);
    let mut h = Fnv64::new();
    match net.driver {
        None => h.write_usize(0),
        Some(driver) => {
            let d = match driver {
                smt_netlist::netlist::NetDriver::Inst(pr) => placement.loc(pr.inst),
                smt_netlist::netlist::NetDriver::Port(p) => placement.port_loc(p),
            };
            h.write_usize(1 + net.loads.len() + net.port_loads.len());
            h.write_f64(d.x);
            h.write_f64(d.y);
            for pr in &net.loads {
                let p = placement.loc(pr.inst);
                h.write_f64(p.x);
                h.write_f64(p.y);
            }
            for p in &net.port_loads {
                let p = placement.port_loc(*p);
                h.write_f64(p.x);
                h.write_f64(p.y);
            }
        }
    }
    h.write_usize(net.loads.len());
    for pr in &net.loads {
        h.write_u64(u64::from(pr.inst.0));
        h.write_usize(pr.pin);
        h.write_usize(netlist.inst(pr.inst).cell.0 as usize);
    }
    h.write_usize(net.port_loads.len());
    for p in &net.port_loads {
        h.write_u64(u64::from(p.0));
    }
    h.write_f64(routed);
    h.finish()
}

/// Post-route extraction of one net (the per-net body both
/// [`Parasitics::extract`] and [`Parasitics::update`] share).
fn extract_net(
    netlist: &Netlist,
    lib: &Library,
    placement: &Placement,
    id: NetId,
    route_len: f64,
) -> NetParasitics {
    let net = netlist.net(id);
    let pins = net_pins(netlist, placement, id);
    let n_sinks = net.loads.len() + net.port_loads.len();
    if pins.len() < 2 {
        return NetParasitics::default();
    }
    let tree = steiner_tree(&pins);
    let topo_len = tree.wirelength().max(1e-6);
    let routed = route_len.max(topo_len);
    let scale = routed / topo_len;

    // Sink pin caps, in the same order as `pins[1..]`.
    let mut sink_cap = vec![Cap::ZERO; pins.len()];
    for (k, pr) in net.loads.iter().enumerate() {
        let cell = lib.cell(netlist.inst(pr.inst).cell);
        sink_cap[1 + k] = cell.pins[pr.pin].cap;
    }
    // Port loads get a pad cap.
    for k in 0..net.port_loads.len() {
        sink_cap[1 + net.loads.len() + k] = Cap::new(2.0);
    }

    // Node caps: half of each incident edge's wire cap + pin cap.
    let n_nodes = tree.nodes.len();
    let mut node_cap = vec![Cap::ZERO; n_nodes];
    let mut edge_res = vec![Res::ZERO; n_nodes]; // resistance of edge to parent
    for (child, parent) in tree.edges() {
        let len = tree.nodes[child].manhattan(tree.nodes[parent]) * scale;
        let c = lib.tech.wire_cap(len);
        let r = lib.tech.wire_res(len);
        node_cap[child] += c * 0.5;
        node_cap[parent] += c * 0.5;
        edge_res[child] = r;
    }
    for (i, &c) in sink_cap.iter().enumerate() {
        node_cap[i] += c;
    }

    // Downstream cap per node (children of each node first).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    for (child, parent) in tree.edges() {
        children[parent].push(child);
    }
    let mut down_cap = node_cap.clone();
    // Process nodes in reverse BFS order from root.
    let mut order = vec![0usize];
    let mut qi = 0;
    while qi < order.len() {
        let v = order[qi];
        qi += 1;
        for &c in &children[v] {
            order.push(c);
        }
    }
    for &v in order.iter().rev() {
        for &c in &children[v] {
            let add = down_cap[c];
            down_cap[v] += add;
        }
    }

    // Elmore to each node: parent's + R_edge * down_cap(node).
    let mut elmore = vec![Time::ZERO; n_nodes];
    for &v in &order {
        if v == 0 {
            continue;
        }
        let p = tree.parent[v];
        elmore[v] = elmore[p] + edge_res[v] * down_cap[v];
    }

    let wire_cap = lib.tech.wire_cap(routed);
    let wire_res = lib.tech.wire_res(routed);
    let sink_elmore: Vec<Time> = (0..n_sinks).map(|k| elmore[1 + k]).collect();
    NetParasitics {
        length_um: routed,
        wire_cap,
        wire_res,
        sink_elmore,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{route_global, RouteConfig};
    use smt_place::{place, PlacerConfig};

    fn chain(lib: &Library, len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let mut prev = n.add_input("a");
        let inv = lib.find_id("INV_X1_L").unwrap();
        for i in 0..len {
            let w = n.add_net(&format!("w{i}"));
            let u = n.add_instance(&format!("u{i}"), inv, lib);
            n.connect_by_name(u, "A", prev, lib).unwrap();
            n.connect_by_name(u, "Z", w, lib).unwrap();
            prev = w;
        }
        n.expose_output("z", prev);
        n
    }

    #[test]
    fn estimate_and_extract_are_consistent() {
        let lib = Library::industrial_130nm();
        let n = chain(&lib, 40);
        let p = place(&n, &lib, &PlacerConfig::default());
        let est = Parasitics::estimate(&n, &lib, &p);
        let gr = route_global(&n, &lib, &p, &RouteConfig::default());
        let ext = Parasitics::extract(&n, &lib, &p, &gr);
        assert!(!est.post_route);
        assert!(ext.post_route);
        assert_eq!(est.nets.len(), ext.nets.len());
        // Aggregate lengths agree within a factor (estimate vs routed).
        let le: f64 = est.nets.iter().map(|x| x.length_um).sum();
        let lx: f64 = ext.nets.iter().map(|x| x.length_um).sum();
        assert!(lx > 0.0 && le > 0.0);
        assert!(lx / le < 4.0 && le / lx < 4.0, "est {le} vs ext {lx}");
    }

    #[test]
    fn elmore_increases_with_distance() {
        // Driver with two sinks at different distances: farther sink sees
        // larger wire elmore.
        let lib = Library::industrial_130nm();
        let mut n = Netlist::new("fan");
        let a = n.add_input("a");
        let w = n.add_net("w");
        let z0 = n.add_output("z0");
        let z1 = n.add_output("z1");
        let inv = lib.find_id("INV_X1_L").unwrap();
        let drv = n.add_instance("drv", inv, &lib);
        let s0 = n.add_instance("s0", inv, &lib);
        let s1 = n.add_instance("s1", inv, &lib);
        n.connect_by_name(drv, "A", a, &lib).unwrap();
        n.connect_by_name(drv, "Z", w, &lib).unwrap();
        n.connect_by_name(s0, "A", w, &lib).unwrap();
        n.connect_by_name(s0, "Z", z0, &lib).unwrap();
        n.connect_by_name(s1, "A", w, &lib).unwrap();
        n.connect_by_name(s1, "Z", z1, &lib).unwrap();
        let mut p = place(&n, &lib, &PlacerConfig::default());
        // Force known geometry: s1 is 10x farther.
        p.set_loc(drv, smt_base::geom::Point::new(0.0, 2.0));
        p.set_loc(s0, smt_base::geom::Point::new(8.0, 2.0));
        p.set_loc(s1, smt_base::geom::Point::new(80.0, 2.0));
        let gr = route_global(&n, &lib, &p, &RouteConfig::default());
        let ext = Parasitics::extract(&n, &lib, &p, &gr);
        let pw = ext.net(w);
        assert_eq!(pw.sink_elmore.len(), 2);
        assert!(
            pw.sink_elmore[1] > pw.sink_elmore[0],
            "far sink must be slower: {:?}",
            pw.sink_elmore
        );
    }

    #[test]
    fn elmore_fallback_for_out_of_range_sink() {
        let p = NetParasitics {
            sink_elmore: vec![Time::new(1.0), Time::new(5.0)],
            ..Default::default()
        };
        assert_eq!(p.elmore(0), Time::new(1.0));
        assert_eq!(p.elmore(7), Time::new(5.0));
        let empty = NetParasitics::default();
        assert_eq!(empty.elmore(0), Time::ZERO);
    }
}
