//! Grid-based global routing with congestion-aware maze search and
//! rip-up & reroute.
//!
//! The die is tiled; every tile boundary has a track capacity. Each net's
//! Steiner edges are routed as two-pin connections by A* over the tile
//! graph with a congestion-penalised cost, and nets crossing overflowed
//! edges are ripped up and rerouted with a sharper penalty. The outcome
//! per net is a *routed length*, which extraction converts to post-route
//! RC — the "precise RC information which is generated after routing" of
//! the paper.

use smt_base::geom::Point;
use smt_cells::library::Library;
use smt_netlist::netlist::{NetDriver, NetId, Netlist};
use smt_place::Placement;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Router options.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteConfig {
    /// Tile edge length, µm.
    pub tile_um: f64,
    /// Routing tracks per tile boundary.
    pub capacity: u32,
    /// Rip-up & reroute iterations after the initial pass.
    pub rrr_iterations: usize,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            tile_um: 8.0,
            capacity: 14,
            rrr_iterations: 2,
        }
    }
}

/// Result of global routing.
#[derive(Debug, Clone)]
pub struct GlobalRoute {
    /// Tile size used, µm.
    pub tile_um: f64,
    /// Grid dimensions in tiles.
    pub nx: usize,
    /// Grid dimensions in tiles.
    pub ny: usize,
    /// Routed length per net (µm); 0 for single-pin/unplaced nets.
    pub net_length: Vec<f64>,
    /// Total demand over capacity across edges (0 = congestion-free).
    pub overflow: u64,
    /// Peak edge utilisation (demand / capacity).
    pub peak_utilization: f64,
}

impl GlobalRoute {
    /// Routed length of one net, µm.
    pub fn length(&self, net: NetId) -> f64 {
        self.net_length[net.index()]
    }

    /// Sum of all routed lengths.
    pub fn total_length(&self) -> f64 {
        self.net_length.iter().sum()
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Grid {
    pub(crate) nx: usize,
    pub(crate) ny: usize,
    /// usage of horizontal edges (between (x,y) and (x+1,y)): (nx-1)*ny
    pub(crate) h: Vec<u32>,
    /// usage of vertical edges: nx*(ny-1)
    pub(crate) v: Vec<u32>,
    pub(crate) capacity: u32,
    /// Edge count per usage value, maintained by `apply` so peak
    /// utilisation never needs an O(edges) scan.
    hist: Vec<u64>,
    /// Running total of usage above capacity, maintained by `apply`.
    over: u64,
}

impl Grid {
    pub(crate) fn empty(nx: usize, ny: usize, capacity: u32) -> Grid {
        Grid {
            nx,
            ny,
            h: vec![0; (nx - 1) * ny],
            v: vec![0; nx * (ny - 1)],
            capacity,
            hist: vec![((nx - 1) * ny + nx * (ny - 1)) as u64],
            over: 0,
        }
    }

    fn h_idx(&self, x: usize, y: usize) -> usize {
        y * (self.nx - 1) + x
    }
    fn v_idx(&self, x: usize, y: usize) -> usize {
        y * self.nx + x
    }

    fn edge_cost(&self, usage: u32, weight: f64) -> f64 {
        let u = usage as f64 / self.capacity as f64;
        1.0 + weight * u.powi(3)
    }

    /// A* route between two tiles; returns the tile path.
    pub(crate) fn route(
        &self,
        from: (usize, usize),
        to: (usize, usize),
        weight: f64,
    ) -> Vec<(usize, usize)> {
        let idx = |x: usize, y: usize| y * self.nx + x;
        let mut dist = vec![f64::INFINITY; self.nx * self.ny];
        let mut prev = vec![usize::MAX; self.nx * self.ny];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let h_est = |x: usize, y: usize| {
            ((x as f64 - to.0 as f64).abs() + (y as f64 - to.1 as f64).abs()) * 1.0
        };
        dist[idx(from.0, from.1)] = 0.0;
        let key = |d: f64| (d * 1024.0) as u64;
        heap.push(Reverse((key(h_est(from.0, from.1)), idx(from.0, from.1))));
        while let Some(Reverse((_, u))) = heap.pop() {
            let (x, y) = (u % self.nx, u / self.nx);
            if (x, y) == to {
                break;
            }
            let du = dist[u];
            let mut neighbours: [(isize, isize, f64); 4] =
                [(1, 0, 0.0), (-1, 0, 0.0), (0, 1, 0.0), (0, -1, 0.0)];
            for n in &mut neighbours {
                let nx = x as isize + n.0;
                let ny = y as isize + n.1;
                if nx < 0 || ny < 0 || nx as usize >= self.nx || ny as usize >= self.ny {
                    n.2 = f64::INFINITY;
                    continue;
                }
                let usage = if n.0 != 0 {
                    self.h[self.h_idx(x.min(nx as usize), y)]
                } else {
                    self.v[self.v_idx(x, y.min(ny as usize))]
                };
                n.2 = self.edge_cost(usage, weight);
            }
            for n in neighbours {
                if !n.2.is_finite() {
                    continue;
                }
                let vx = (x as isize + n.0) as usize;
                let vy = (y as isize + n.1) as usize;
                let v = idx(vx, vy);
                let nd = du + n.2;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                    heap.push(Reverse((key(nd + h_est(vx, vy)), v)));
                }
            }
        }
        // Reconstruct.
        let mut path = Vec::new();
        let mut cur = idx(to.0, to.1);
        if prev[cur] == usize::MAX && from != to {
            return vec![from, to]; // disconnected fallback (never with a full grid)
        }
        while cur != usize::MAX {
            path.push((cur % self.nx, cur / self.nx));
            if (cur % self.nx, cur / self.nx) == from {
                break;
            }
            cur = prev[cur];
        }
        path.reverse();
        path
    }

    pub(crate) fn apply(&mut self, path: &[(usize, usize)], dir: i32) {
        for w in path.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            let u = if y0 == y1 {
                let i = self.h_idx(x0.min(x1), y0);
                let old = self.h[i];
                self.h[i] = (old as i64 + dir as i64).max(0) as u32;
                (old, self.h[i])
            } else {
                let i = self.v_idx(x0, y0.min(y1));
                let old = self.v[i];
                self.v[i] = (old as i64 + dir as i64).max(0) as u32;
                (old, self.v[i])
            };
            let (old, new) = u;
            if old == new {
                continue;
            }
            self.hist[old as usize] -= 1;
            if new as usize >= self.hist.len() {
                self.hist.resize(new as usize + 1, 0);
            }
            self.hist[new as usize] += 1;
            // Overflow contribution is max(usage - capacity, 0); a ±1
            // step changes it by ±1 exactly when the higher of the two
            // values is above capacity.
            if old.max(new) > self.capacity {
                if new > old {
                    self.over += 1;
                } else {
                    self.over -= 1;
                }
            }
        }
    }

    pub(crate) fn path_overflows(&self, path: &[(usize, usize)]) -> bool {
        for w in path.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            let usage = if y0 == y1 {
                self.h[self.h_idx(x0.min(x1), y0)]
            } else {
                self.v[self.v_idx(x0, y0.min(y1))]
            };
            if usage > self.capacity {
                return true;
            }
        }
        false
    }

    pub(crate) fn overflow(&self) -> u64 {
        self.over
    }

    pub(crate) fn peak_utilization(&self) -> f64 {
        // `hist` keeps trailing zero buckets after usage drops; the scan
        // is over distinct usage values, not edges.
        let m = self.hist.iter().rposition(|&c| c > 0).unwrap_or(0);
        m as f64 / self.capacity as f64
    }
}

/// Collects the pin points of a net (driver first).
pub(crate) fn net_pins(netlist: &Netlist, placement: &Placement, net: NetId) -> Vec<Point> {
    let n = netlist.net(net);
    let mut pins = Vec::with_capacity(1 + n.loads.len() + n.port_loads.len());
    match n.driver {
        Some(NetDriver::Inst(pr)) => pins.push(placement.loc(pr.inst)),
        Some(NetDriver::Port(p)) => pins.push(placement.port_loc(p)),
        None => return Vec::new(),
    }
    for pr in &n.loads {
        pins.push(placement.loc(pr.inst));
    }
    for p in &n.port_loads {
        pins.push(placement.port_loc(*p));
    }
    pins
}

/// Runs global routing over all multi-pin nets.
///
/// Thin wrapper over [`crate::router::Router`]: the initial pass routes
/// every net independently on an empty grid (a pure function of the
/// net's pin list, which is what makes per-net caching and the
/// incremental [`crate::router::Router::reroute_nets`] path exact), and
/// congestion is then resolved by sequential rip-up & reroute in net-id
/// order against the live grid, so later victims see earlier victims'
/// new paths and the iteration converges deterministically.
pub fn route_global(
    netlist: &Netlist,
    lib: &Library,
    placement: &Placement,
    config: &RouteConfig,
) -> GlobalRoute {
    crate::router::Router::route(netlist, lib, placement, config, 0)
        .global()
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_place::{place, PlacerConfig};

    fn chain(lib: &Library, len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let mut prev = n.add_input("a");
        let inv = lib.find_id("INV_X1_L").unwrap();
        for i in 0..len {
            let w = n.add_net(&format!("w{i}"));
            let u = n.add_instance(&format!("u{i}"), inv, lib);
            n.connect_by_name(u, "A", prev, lib).unwrap();
            n.connect_by_name(u, "Z", w, lib).unwrap();
            prev = w;
        }
        n.expose_output("z", prev);
        n
    }

    #[test]
    fn routes_all_nets_with_positive_length() {
        let lib = Library::industrial_130nm();
        let n = chain(&lib, 50);
        let p = place(&n, &lib, &PlacerConfig::default());
        let gr = route_global(&n, &lib, &p, &RouteConfig::default());
        assert!(gr.total_length() > 0.0);
        // Routed length should be within a sane factor of HPWL.
        let hpwl = p.hpwl(&n);
        assert!(
            gr.total_length() < hpwl * 4.0 + 200.0,
            "routed {} vs hpwl {hpwl}",
            gr.total_length()
        );
    }

    #[test]
    fn congestion_free_small_design() {
        let lib = Library::industrial_130nm();
        let n = chain(&lib, 20);
        let p = place(&n, &lib, &PlacerConfig::default());
        let gr = route_global(&n, &lib, &p, &RouteConfig::default());
        assert_eq!(gr.overflow, 0, "peak = {}", gr.peak_utilization);
    }

    #[test]
    fn tight_capacity_triggers_rrr_but_still_routes() {
        let lib = Library::industrial_130nm();
        let n = chain(&lib, 60);
        let p = place(&n, &lib, &PlacerConfig::default());
        let gr = route_global(
            &n,
            &lib,
            &p,
            &RouteConfig {
                capacity: 1,
                ..RouteConfig::default()
            },
        );
        // Every multi-pin net still gets a length.
        for (id, net) in n.nets() {
            if net.driver.is_some() && !net.loads.is_empty() {
                let pins = net_pins(&n, &p, id);
                let spread = pins.iter().any(|&q| q.manhattan(pins[0]) > gr.tile_um);
                if spread {
                    assert!(gr.length(id) > 0.0, "net {} unrouted", net.name);
                }
            }
        }
    }
}
