//! # smt-route
//!
//! Routing-stage substrates for the Fig. 4 flow:
//!
//! * [`steiner`] — rectilinear Steiner trees per net;
//! * [`global`] — congestion-aware grid global routing (maze search with
//!   rip-up & reroute) producing per-net routed lengths;
//! * [`router`] — the incremental routing session behind it: cached
//!   per-net base routes, delta-scoped `reroute_nets`, and a
//!   `full_route_runs()` reuse counter;
//! * [`extract`] — parasitic extraction at two fidelities: pre-route
//!   estimates from placement and post-route RC trees with per-sink
//!   Elmore delays;
//! * [`spef`] — SPEF-lite text exchange of extracted parasitics (the
//!   artifact the paper's post-route re-optimization consumes);
//! * [`cts`] — clock tree synthesis by recursive geometric clustering;
//! * [`buffering`] — high-fanout buffering, used for the MTE enable net.

pub mod buffering;
pub mod cts;
pub mod extract;
pub mod global;
pub mod router;
pub mod spef;
pub mod steiner;

pub use buffering::{buffer_net, BufferingConfig, BufferingReport};
pub use cts::{full_cts_runs, synthesize_clock_tree, CtsConfig, CtsReport, CtsSession};
pub use extract::{reextractions_avoided, NetParasitics, Parasitics};
pub use global::{route_global, GlobalRoute, RouteConfig};
pub use router::{full_route_runs, Router};
pub use steiner::{steiner_tree, RouteTree};
