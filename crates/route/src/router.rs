//! Incremental global-routing session.
//!
//! [`Router`] mirrors the `Placer` / `IncrementalSta` session pattern for
//! the routing stage: a full [`Router::route`] pass caches one
//! congestion-blind route per net, and [`Router::reroute_nets`] later
//! revalidates only the nets whose pin lists changed (cell swapped, load
//! rebound, instance moved), reusing everything else.
//!
//! The routing algorithm is organised so that reuse is *exact*, not
//! approximate:
//!
//! 1. **Base pass** — every net is routed independently against an
//!    *empty* grid (uniform edge cost, so A* returns an L1-shortest tile
//!    path per Steiner edge). Each net's base route is a pure function of
//!    its ordered pin list, fingerprinted with [`Fnv64`]; nets therefore
//!    never invalidate each other and the pass parallelises over nets
//!    with no ordering effects.
//! 2. **Congestion resolution** — the grid is the sum of all base paths
//!    (commutative, so worker-count invariant). Rip-up & reroute then
//!    walks overflowing nets strictly in net-id order against the live
//!    grid — sequential so the iteration converges rather than
//!    oscillates, and re-derived from the base routes on every refresh
//!    so identical inputs produce identical routes regardless of which
//!    nets were cached.
//!
//! Because the full pass and the incremental pass share this exact code
//! path, an incremental refresh is bit-identical to routing the same
//! netlist from scratch — the property the whole-flow incrementality
//! tests digest-assert.

use crate::global::{net_pins, GlobalRoute, Grid, RouteConfig};
use crate::steiner::steiner_tree;
use smt_base::fingerprint::Fnv64;
use smt_base::geom::{Point, Rect};
use smt_base::par::parallel_map;
use smt_cells::library::Library;
use smt_netlist::netlist::{NetDriver, NetId, Netlist};
use smt_place::Placement;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

static FULL_ROUTE_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of from-scratch global-routing passes since process start.
/// Incremental [`Router::reroute_nets`] refreshes do not count; tests
/// use the delta of this counter to assert session reuse.
pub fn full_route_runs() -> u64 {
    FULL_ROUTE_RUNS.load(Ordering::Relaxed)
}

/// One net's routed tile paths (one per inter-tile Steiner edge) and its
/// total routed length in µm.
#[derive(Debug, Clone, Default, PartialEq)]
struct NetRoute {
    paths: Vec<Vec<(usize, usize)>>,
    length: f64,
}

/// Incremental global-routing session: cached per-net base routes plus
/// the machinery to revalidate only what a netlist delta touched.
#[derive(Debug, Clone)]
pub struct Router {
    config: RouteConfig,
    die: Rect,
    nx: usize,
    ny: usize,
    /// Fingerprint of the ordered pin list each base route was computed
    /// from; `None` marks a slot that has never been routed.
    fp: Vec<Option<u64>>,
    /// Congestion-blind base route per net (pure in the pin list).
    base: Vec<NetRoute>,
    /// Routes after congestion resolution (what the view reports).
    /// Invariant between refreshes: `cur[i] == base[i]` except on the
    /// nets listed in `rrr_touched`.
    cur: Vec<NetRoute>,
    /// Live usage grid: always the edge-wise sum of the `cur` paths,
    /// maintained by ±1 deltas as routes change — a refresh never
    /// re-applies the whole design or clones the grid.
    grid: Grid,
    /// Nets where the last congestion resolution left `cur != base`.
    rrr_touched: Vec<NetId>,
    view: GlobalRoute,
    /// Nets whose base route was rebuilt by the last refresh.
    pub last_rerouted: usize,
    /// Nets whose cached base route survived the last refresh.
    pub last_reused: usize,
}

/// Fingerprint of a net's ordered pin list (driver first, then instance
/// loads in load order, then port loads) — the only input the base route
/// depends on besides die/config, which the session tracks separately.
/// Streamed straight off the netlist without materialising the
/// intermediate `Vec<Point>` that [`net_pins`] builds (hash framing
/// asserted against it in tests) — what keeps the every-net
/// revalidation scan allocation-free.
fn pin_fp_of(netlist: &Netlist, placement: &Placement, id: NetId) -> u64 {
    let n = netlist.net(id);
    let mut h = Fnv64::new();
    let driver = match n.driver {
        Some(NetDriver::Inst(pr)) => placement.loc(pr.inst),
        Some(NetDriver::Port(p)) => placement.port_loc(p),
        None => {
            // `net_pins` returns an empty list for undriven nets.
            h.write_usize(0);
            return h.finish();
        }
    };
    h.write_usize(1 + n.loads.len() + n.port_loads.len());
    h.write_f64(driver.x);
    h.write_f64(driver.y);
    for pr in &n.loads {
        let p = placement.loc(pr.inst);
        h.write_f64(p.x);
        h.write_f64(p.y);
    }
    for p in &n.port_loads {
        let p = placement.port_loc(*p);
        h.write_f64(p.x);
        h.write_f64(p.y);
    }
    h.finish()
}

impl Router {
    /// Full global-routing pass (counts toward [`full_route_runs`]).
    pub fn route(
        netlist: &Netlist,
        lib: &Library,
        placement: &Placement,
        config: &RouteConfig,
        workers: usize,
    ) -> Router {
        FULL_ROUTE_RUNS.fetch_add(1, Ordering::Relaxed);
        let die = placement.die;
        let (nx, ny) = grid_dims(die, config);
        let mut router = Router {
            config: config.clone(),
            die,
            nx,
            ny,
            fp: Vec::new(),
            base: Vec::new(),
            cur: Vec::new(),
            grid: Grid::empty(nx, ny, config.capacity),
            rrr_touched: Vec::new(),
            view: GlobalRoute {
                tile_um: config.tile_um,
                nx,
                ny,
                net_length: Vec::new(),
                overflow: 0,
                peak_utilization: 0.0,
            },
            last_rerouted: 0,
            last_reused: 0,
        };
        router.refresh_inner(netlist, lib, placement, None, workers);
        router
    }

    /// The current route view (same shape [`crate::global::route_global`]
    /// returns).
    pub fn global(&self) -> &GlobalRoute {
        &self.view
    }

    /// Revalidates every net (no candidate scoping).
    pub fn refresh(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        placement: &Placement,
        config: &RouteConfig,
        workers: usize,
    ) {
        self.reroute_nets(netlist, lib, placement, config, None, workers);
    }

    /// Incremental refresh. Only `candidates` (plus any nets created
    /// since the last pass) are checked against their cached pin
    /// fingerprints; stale ones get a fresh base route in parallel and
    /// congestion resolution reruns over the full design. `candidates`
    /// must cover every net whose pins moved or rebound — the flow
    /// derives them from a [`smt_netlist::NetlistDelta`] plus a placement
    /// move scan, which is complete by construction. Passing `None`
    /// checks all nets.
    pub fn reroute_nets(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        placement: &Placement,
        config: &RouteConfig,
        candidates: Option<&BTreeSet<NetId>>,
        workers: usize,
    ) {
        if placement.die != self.die || *config != self.config {
            // Geometry or knobs changed: nothing is reusable.
            *self = Router::route(netlist, lib, placement, config, workers);
            return;
        }
        self.refresh_inner(netlist, lib, placement, candidates, workers);
    }

    /// Digest of the complete routing result (lengths, paths, congestion
    /// figures) for bit-identity and worker-invariance assertions.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(self.nx);
        h.write_usize(self.ny);
        h.write_u64(self.view.overflow);
        h.write_f64(self.view.peak_utilization);
        for nr in &self.cur {
            h.write_f64(nr.length);
            h.write_usize(nr.paths.len());
            for path in &nr.paths {
                h.write_usize(path.len());
                for &(x, y) in path {
                    h.write_usize(x);
                    h.write_usize(y);
                }
            }
        }
        h.finish()
    }

    fn refresh_inner(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        placement: &Placement,
        candidates: Option<&BTreeSet<NetId>>,
        workers: usize,
    ) {
        let _ = lib;
        let known = self.fp.len();
        let num_nets = netlist.num_nets();
        if num_nets < known {
            // Checkpoint forks can rewind past net creations: retire the
            // dropped slots from the live grid before truncating.
            for nr in &self.cur[num_nets..] {
                for path in &nr.paths {
                    self.grid.apply(path, -1);
                }
            }
        }
        self.fp.resize(num_nets, None);
        self.base.resize(num_nets, NetRoute::default());
        self.cur.resize(num_nets, NetRoute::default());
        self.rrr_touched.retain(|id| id.index() < num_nets);

        // Which slots need their base route rebuilt?
        let mut stale: Vec<NetId> = Vec::new();
        let check = |id: NetId, fp: &mut Vec<Option<u64>>, stale: &mut Vec<NetId>| {
            let now = pin_fp_of(netlist, placement, id);
            if fp[id.index()] != Some(now) {
                fp[id.index()] = Some(now);
                stale.push(id);
            }
        };
        match candidates {
            Some(set) => {
                for &id in set {
                    if id.index() < num_nets {
                        check(id, &mut self.fp, &mut stale);
                    }
                }
                // Nets created since the last pass are always checked.
                for i in known..num_nets {
                    let id = NetId(i as u32);
                    if !set.contains(&id) {
                        check(id, &mut self.fp, &mut stale);
                    }
                }
            }
            None => {
                for (id, _) in netlist.nets() {
                    check(id, &mut self.fp, &mut stale);
                }
            }
        }
        stale.sort_unstable();
        self.last_rerouted = stale.len();
        self.last_reused = num_nets - stale.len();
        if stale.is_empty() && num_nets == known {
            // No pin list changed and no net appeared or retired, so
            // every input to congestion resolution is byte-identical to
            // the previous pass — re-running it would reproduce `cur`,
            // the grid, and the view exactly. Keep them.
            return;
        }

        // Restore the `cur == base` starting point for congestion
        // resolution by undoing what the previous resolution overrode
        // (±1 edge updates are exact and commutative, so the live grid
        // tracks along).
        for i in 0..self.rrr_touched.len() {
            let id = self.rrr_touched[i];
            for path in &self.cur[id.index()].paths {
                self.grid.apply(path, -1);
            }
            self.cur[id.index()] = self.base[id.index()].clone();
            for path in &self.cur[id.index()].paths {
                self.grid.apply(path, 1);
            }
        }
        self.rrr_touched.clear();

        // Base pass over stale nets: pure per-net routing against an
        // empty grid, fanned out with order-preserving `parallel_map`.
        // Small deltas stay on this thread — spawning a worker pool
        // costs more than routing a handful of nets.
        let workers = if stale.len() < 32 { 1 } else { workers };
        let empty = Grid::empty(self.nx, self.ny, self.config.capacity);
        let routed = parallel_map(&stale, workers, |&id| {
            self.route_net(netlist, placement, &empty, id, 0.0)
        });
        for (&id, nr) in stale.iter().zip(routed) {
            // `cur == base` holds everywhere now, so swapping a base
            // route in means swapping the same paths out of the grid.
            for path in &self.cur[id.index()].paths {
                self.grid.apply(path, -1);
            }
            self.base[id.index()] = nr;
            self.cur[id.index()] = self.base[id.index()].clone();
            for path in &self.cur[id.index()].paths {
                self.grid.apply(path, 1);
            }
        }
        // The live grid now equals the sum of all base paths — the same
        // state a from-scratch pass reaches before resolution. Moved out
        // so the resolution loop can borrow `self` for routing.
        let mut grid = std::mem::replace(&mut self.grid, Grid::empty(2, 2, 1));

        // Rip-up & reroute: each overflowing net is ripped up and
        // re-routed against the live grid, strictly in net-id order.
        // Sequential on purpose — later victims must see earlier
        // victims' new paths or the iteration oscillates instead of
        // converging. Still deterministic and worker-count invariant:
        // the order is fixed and no workers participate, and because
        // `cur` always starts the resolution equal to the (pure,
        // cacheable) base routes, the outcome is a function of the
        // netlist and placement alone, never of which base routes were
        // cached or what a previous resolution decided.
        for iter in 0..self.config.rrr_iterations {
            if grid.overflow() == 0 {
                break;
            }
            let weight = 8.0 * (iter + 2) as f64;
            let mut changed = false;
            for i in 0..num_nets {
                let id = NetId(i as u32);
                if !self.cur[id.index()]
                    .iter_paths()
                    .any(|p| grid.path_overflows(p))
                {
                    continue;
                }
                for p in self.cur[id.index()].iter_paths() {
                    grid.apply(p, -1);
                }
                let nr = self.route_net(netlist, placement, &grid, id, weight);
                for p in nr.paths.iter() {
                    grid.apply(p, 1);
                }
                self.cur[id.index()] = nr;
                self.rrr_touched.push(id);
                changed = true;
            }
            if !changed {
                break;
            }
        }
        self.rrr_touched.sort_unstable();
        self.rrr_touched.dedup();

        self.view = GlobalRoute {
            tile_um: self.config.tile_um,
            nx: self.nx,
            ny: self.ny,
            net_length: self.cur.iter().map(|nr| nr.length).collect(),
            overflow: grid.overflow(),
            peak_utilization: grid.peak_utilization(),
        };
        self.grid = grid;
    }

    /// Routes one net's Steiner edges over `grid` (the empty grid for
    /// the uniform-cost base pass, or a frozen congestion snapshot minus
    /// the net's own usage during rip-up). The grid is only read —
    /// self-usage between a net's own edges is deliberately not
    /// accumulated, so each route is a pure function of (pin list, grid).
    fn route_net(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        grid: &Grid,
        id: NetId,
        weight: f64,
    ) -> NetRoute {
        let pins = net_pins(netlist, placement, id);
        if pins.len() < 2 {
            return NetRoute::default();
        }
        let tree = steiner_tree(&pins);
        let mut paths = Vec::new();
        let mut length = 0.0;
        for (child, parent) in tree.edges() {
            let from = self.tile_of(tree.nodes[parent]);
            let to = self.tile_of(tree.nodes[child]);
            if from == to {
                // Sub-tile connection: count its direct length.
                length += tree.nodes[parent].manhattan(tree.nodes[child]);
                continue;
            }
            let path = grid.route(from, to, weight);
            length += (path.len().saturating_sub(1)) as f64 * self.config.tile_um;
            paths.push(path);
        }
        NetRoute { paths, length }
    }

    fn tile_of(&self, p: Point) -> (usize, usize) {
        let x = (((p.x - self.die.lo.x) / self.config.tile_um) as usize).min(self.nx - 1);
        let y = (((p.y - self.die.lo.y) / self.config.tile_um) as usize).min(self.ny - 1);
        (x, y)
    }
}

impl NetRoute {
    fn iter_paths(&self) -> impl Iterator<Item = &[(usize, usize)]> {
        self.paths.iter().map(|p| p.as_slice())
    }
}

fn grid_dims(die: Rect, config: &RouteConfig) -> (usize, usize) {
    let nx = ((die.width() / config.tile_um).ceil() as usize).max(2);
    let ny = ((die.height() / config.tile_um).ceil() as usize).max(2);
    (nx, ny)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_place::{place, PlacerConfig};

    fn chain(lib: &Library, len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let mut prev = n.add_input("a");
        let inv = lib.find_id("INV_X1_L").unwrap();
        for i in 0..len {
            let w = n.add_net(&format!("w{i}"));
            let u = n.add_instance(&format!("u{i}"), inv, lib);
            n.connect_by_name(u, "A", prev, lib).unwrap();
            n.connect_by_name(u, "Z", w, lib).unwrap();
            prev = w;
        }
        n.expose_output("z", prev);
        n
    }

    #[test]
    fn streamed_pin_fp_matches_materialised_pin_list() {
        let lib = Library::industrial_130nm();
        let n = chain(&lib, 12);
        let p = place(&n, &lib, &PlacerConfig::default());
        for (id, _) in n.nets() {
            let pins = net_pins(&n, &p, id);
            let mut h = Fnv64::new();
            h.write_usize(pins.len());
            for pt in &pins {
                h.write_f64(pt.x);
                h.write_f64(pt.y);
            }
            assert_eq!(pin_fp_of(&n, &p, id), h.finish(), "net {id:?}");
        }
    }

    #[test]
    fn refresh_without_changes_reroutes_nothing() {
        let lib = Library::industrial_130nm();
        let n = chain(&lib, 30);
        let p = place(&n, &lib, &PlacerConfig::default());
        let cfg = RouteConfig::default();
        let mut r = Router::route(&n, &lib, &p, &cfg, 0);
        let d0 = r.digest();
        r.refresh(&n, &lib, &p, &cfg, 0);
        assert_eq!(r.last_rerouted, 0);
        assert_eq!(r.last_reused, n.num_nets());
        assert_eq!(r.digest(), d0);
    }

    #[test]
    fn incremental_matches_from_scratch_after_a_move() {
        let lib = Library::industrial_130nm();
        let n = chain(&lib, 30);
        let mut p = place(&n, &lib, &PlacerConfig::default());
        let cfg = RouteConfig::default();
        let mut r = Router::route(&n, &lib, &p, &cfg, 0);

        // Move one instance; only its incident nets need rerouting.
        let u7 = n.find_inst("u7").unwrap();
        let loc = p.loc(u7);
        p.set_loc(u7, smt_base::geom::Point::new(loc.x + 16.0, loc.y));
        let cand: BTreeSet<NetId> = n.inst(u7).conns.iter().flatten().copied().collect();
        r.reroute_nets(&n, &lib, &p, &cfg, Some(&cand), 0);
        assert!(r.last_rerouted <= cand.len());
        assert!(r.last_reused >= n.num_nets() - cand.len());

        let scratch = Router::route(&n, &lib, &p, &cfg, 0);
        assert_eq!(r.digest(), scratch.digest());
        assert_eq!(r.global().net_length, scratch.global().net_length);
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let lib = Library::industrial_130nm();
        let n = chain(&lib, 40);
        let p = place(&n, &lib, &PlacerConfig::default());
        let cfg = RouteConfig {
            capacity: 2,
            ..RouteConfig::default()
        };
        let d1 = Router::route(&n, &lib, &p, &cfg, 1).digest();
        for workers in [2, 4, 8] {
            assert_eq!(Router::route(&n, &lib, &p, &cfg, workers).digest(), d1);
        }
    }

    #[test]
    fn full_runs_counter_advances_only_on_full_passes() {
        let lib = Library::industrial_130nm();
        let n = chain(&lib, 10);
        let p = place(&n, &lib, &PlacerConfig::default());
        let cfg = RouteConfig::default();
        let before = full_route_runs();
        let mut r = Router::route(&n, &lib, &p, &cfg, 0);
        r.refresh(&n, &lib, &p, &cfg, 0);
        r.refresh(&n, &lib, &p, &cfg, 0);
        assert_eq!(full_route_runs() - before, 1);
    }
}
