//! SPEF-lite: a compact parasitics exchange format.
//!
//! The paper's flow hands post-route parasitics ("SPEF") to the switch
//! re-optimizer. Real SPEF carries full RC networks; this subset carries
//! what our models consume — per-net totals and per-sink Elmore — in a
//! recognisable shape:
//!
//! ```text
//! *SPEF smt-lite
//! *DESIGN top
//! *NET w4 2.40 0.0048 12.0      // name  cap_fF  res_kOhm  length_um
//! *SINK 0 0.0123                // sink ordinal, wire elmore ps
//! *SINK 1 0.0345
//! *END
//! ```

use crate::extract::{NetParasitics, Parasitics};
use smt_base::units::{Cap, Res, Time};
use smt_netlist::netlist::Netlist;
use std::fmt::Write as _;

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSpefError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseSpefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "spef-lite parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseSpefError {}

/// Serialises parasitics against a netlist (net names come from the
/// netlist; order is preserved on parse).
pub fn write(netlist: &Netlist, parasitics: &Parasitics) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "*SPEF smt-lite");
    let _ = writeln!(out, "*DESIGN {}", netlist.name);
    let _ = writeln!(
        out,
        "*MODE {}",
        if parasitics.post_route {
            "post_route"
        } else {
            "estimated"
        }
    );
    for (id, net) in netlist.nets() {
        let p = parasitics.net(id);
        let _ = writeln!(
            out,
            "*NET {} {:.6} {:.9} {:.4}",
            net.name,
            p.wire_cap.ff(),
            p.wire_res.kohm(),
            p.length_um
        );
        for (k, e) in p.sink_elmore.iter().enumerate() {
            let _ = writeln!(out, "*SINK {} {:.6}", k, e.ps());
        }
    }
    let _ = writeln!(out, "*END");
    out
}

/// Parses SPEF-lite back into [`Parasitics`], matching nets by name.
///
/// # Errors
///
/// [`ParseSpefError`] on malformed lines or nets that do not exist in the
/// netlist.
pub fn parse(text: &str, netlist: &Netlist) -> Result<Parasitics, ParseSpefError> {
    let err = |line: usize, m: String| ParseSpefError { line, message: m };
    let mut nets = vec![NetParasitics::default(); netlist.num_nets()];
    let mut post_route = false;
    let mut current: Option<usize> = None;
    let mut seen_header = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let l = raw.trim();
        if l.is_empty() {
            continue;
        }
        if let Some(rest) = l.strip_prefix("*SPEF") {
            let _ = rest;
            seen_header = true;
            continue;
        }
        if !seen_header {
            return Err(err(line, "missing *SPEF header".to_owned()));
        }
        if l.starts_with("*DESIGN") || l == "*END" {
            continue;
        }
        if let Some(rest) = l.strip_prefix("*MODE") {
            post_route = rest.trim() == "post_route";
            continue;
        }
        if let Some(rest) = l.strip_prefix("*NET") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| err(line, "net line needs a name".to_owned()))?;
            let vals: Vec<f64> = it
                .map(|v| v.parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|_| err(line, "bad number on *NET line".to_owned()))?;
            if vals.len() != 3 {
                return Err(err(line, "*NET needs cap res length".to_owned()));
            }
            let id = netlist
                .find_net(name)
                .ok_or_else(|| err(line, format!("unknown net `{name}`")))?;
            nets[id.index()] = NetParasitics {
                length_um: vals[2],
                wire_cap: Cap::new(vals[0]),
                wire_res: Res::new(vals[1]),
                sink_elmore: Vec::new(),
            };
            current = Some(id.index());
            continue;
        }
        if let Some(rest) = l.strip_prefix("*SINK") {
            let idx = current.ok_or_else(|| err(line, "*SINK before any *NET".to_owned()))?;
            let mut it = rest.split_whitespace();
            let k: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(line, "bad sink ordinal".to_owned()))?;
            let e: f64 = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(line, "bad sink elmore".to_owned()))?;
            let list = &mut nets[idx].sink_elmore;
            if k >= list.len() {
                list.resize(k + 1, Time::ZERO);
            }
            list[k] = Time::new(e);
            continue;
        }
        return Err(err(line, format!("unrecognised line `{l}`")));
    }
    // Parsed parasitics carry no extraction fingerprints: an incremental
    // update after a SPEF round-trip conservatively re-extracts.
    Ok(Parasitics {
        nets,
        post_route,
        fps: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{route_global, RouteConfig};
    use smt_cells::library::Library;
    use smt_place::{place, PlacerConfig};

    #[test]
    fn roundtrip() {
        let lib = Library::industrial_130nm();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let mut prev = a;
        let inv = lib.find_id("INV_X1_L").unwrap();
        for i in 0..10 {
            let w = n.add_net(&format!("w{i}"));
            let u = n.add_instance(&format!("u{i}"), inv, &lib);
            n.connect_by_name(u, "A", prev, &lib).unwrap();
            n.connect_by_name(u, "Z", w, &lib).unwrap();
            prev = w;
        }
        n.expose_output("z", prev);
        let p = place(&n, &lib, &PlacerConfig::default());
        let gr = route_global(&n, &lib, &p, &RouteConfig::default());
        let ext = Parasitics::extract(&n, &lib, &p, &gr);
        let text = write(&n, &ext);
        let back = parse(&text, &n).unwrap();
        assert!(back.post_route);
        for (id, _) in n.nets() {
            let x = ext.net(id);
            let y = back.net(id);
            assert!((x.wire_cap.ff() - y.wire_cap.ff()).abs() < 1e-4);
            assert!((x.length_um - y.length_um).abs() < 1e-3);
            assert_eq!(x.sink_elmore.len(), y.sink_elmore.len());
        }
    }

    #[test]
    fn parse_errors() {
        let n = Netlist::new("t");
        assert!(parse("*NET x 1 2 3\n", &n).is_err()); // no header
        assert!(parse("*SPEF smt-lite\n*NET nope 1 2 3\n", &n).is_err()); // unknown net
        assert!(parse("*SPEF smt-lite\n*SINK 0 1.0\n", &n).is_err()); // sink before net
        assert!(parse("*SPEF smt-lite\nwhat is this\n", &n).is_err());
    }
}
