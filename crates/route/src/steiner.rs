//! Rectilinear Steiner tree construction.
//!
//! Each net is routed as a rectilinear minimum spanning tree (Prim, L1
//! metric) improved by a single pass of Hanan-point Steinerisation: for
//! every tree edge pair sharing a node, try the L-shape corner that
//! shortens total length. This lands within a few percent of optimal RSMT
//! for the fanouts standard-cell nets have, which is all the RC models
//! need.

use smt_base::geom::Point;

/// A routing tree over a net's pins.
///
/// Node 0 is always the driver; nodes `1..n_pins` are the sink pins in
/// input order; nodes beyond that are Steiner points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RouteTree {
    /// Node locations.
    pub nodes: Vec<Point>,
    /// Parent of each node (`usize::MAX` for the root). Tree edges run
    /// `node -> parent`.
    pub parent: Vec<usize>,
}

impl RouteTree {
    /// Total rectilinear wirelength, µm.
    pub fn wirelength(&self) -> f64 {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, &p)| p != usize::MAX)
            .map(|(i, &p)| self.nodes[i].manhattan(self.nodes[p]))
            .sum()
    }

    /// Path length from the root to a node, µm.
    pub fn path_length(&self, mut node: usize) -> f64 {
        let mut len = 0.0;
        while self.parent[node] != usize::MAX {
            let p = self.parent[node];
            len += self.nodes[node].manhattan(self.nodes[p]);
            node = p;
        }
        len
    }

    /// Edge list `(child, parent)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, &p)| p != usize::MAX)
            .map(|(i, &p)| (i, p))
    }
}

/// Builds a Steiner tree over pins; `pins[0]` is the driver.
///
/// # Panics
///
/// Panics if `pins` is empty.
pub fn steiner_tree(pins: &[Point]) -> RouteTree {
    assert!(!pins.is_empty(), "a net needs at least a driver pin");
    let n = pins.len();
    let nodes = pins.to_vec();
    let mut parent = vec![usize::MAX; n];
    if n == 1 {
        return RouteTree { nodes, parent };
    }

    // Prim MST from the driver.
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_link = vec![0usize; n];
    in_tree[0] = true;
    for i in 1..n {
        best_dist[i] = pins[i].manhattan(pins[0]);
    }
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_d = f64::INFINITY;
        for i in 0..n {
            if !in_tree[i] && best_dist[i] < pick_d {
                pick_d = best_dist[i];
                pick = i;
            }
        }
        in_tree[pick] = true;
        parent[pick] = best_link[pick];
        for i in 0..n {
            if !in_tree[i] {
                let d = pins[i].manhattan(pins[pick]);
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_link[i] = pick;
                }
            }
        }
    }

    // Steinerisation: where a node has 2+ children (or child+parent) with
    // overlapping bounding boxes, insert the median corner point.
    // One pass over nodes; insert at most one Steiner point per node.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        if parent[i] != usize::MAX {
            children[parent[i]].push(i);
        }
    }
    let mut tree = RouteTree { nodes, parent };
    for (v, child_list) in children.iter().enumerate() {
        // Case 1: two children — try the median of (v, childA, childB).
        if child_list.len() >= 2 {
            let mut kids = child_list.clone();
            kids.sort_by(|&a, &b| {
                let da = tree.nodes[a].manhattan(tree.nodes[v]);
                let db = tree.nodes[b].manhattan(tree.nodes[v]);
                db.total_cmp(&da)
            });
            let (a, b) = (kids[0], kids[1]);
            // Only if both still hang off v (not rewired by an earlier fix).
            if tree.parent[a] == v && tree.parent[b] == v {
                let s = median_point(tree.nodes[v], tree.nodes[a], tree.nodes[b]);
                let old =
                    tree.nodes[a].manhattan(tree.nodes[v]) + tree.nodes[b].manhattan(tree.nodes[v]);
                let new = s.manhattan(tree.nodes[v])
                    + s.manhattan(tree.nodes[a])
                    + s.manhattan(tree.nodes[b]);
                if new + 1e-9 < old {
                    let sid = tree.nodes.len();
                    tree.nodes.push(s);
                    tree.parent.push(v);
                    tree.parent[a] = sid;
                    tree.parent[b] = sid;
                    continue;
                }
            }
        }
        // Case 2: trunk node — median of (parent, v, longest child).
        if tree.parent[v] != usize::MAX && !child_list.is_empty() {
            let p = tree.parent[v];
            let c = *child_list
                .iter()
                .filter(|&&c| tree.parent[c] == v)
                .max_by(|&&a, &&b| {
                    let da = tree.nodes[a].manhattan(tree.nodes[v]);
                    let db = tree.nodes[b].manhattan(tree.nodes[v]);
                    da.total_cmp(&db)
                })
                .unwrap_or(&usize::MAX);
            if c == usize::MAX {
                continue;
            }
            let s = median_point(tree.nodes[p], tree.nodes[v], tree.nodes[c]);
            let old =
                tree.nodes[v].manhattan(tree.nodes[p]) + tree.nodes[c].manhattan(tree.nodes[v]);
            let new = s.manhattan(tree.nodes[p])
                + s.manhattan(tree.nodes[v])
                + s.manhattan(tree.nodes[c]);
            if new + 1e-9 < old {
                let sid = tree.nodes.len();
                tree.nodes.push(s);
                tree.parent.push(p);
                tree.parent[v] = sid;
                tree.parent[c] = sid;
            }
        }
    }
    tree
}

/// Component-wise median of three points — the optimal Steiner point for
/// three terminals in the L1 metric.
fn median_point(a: Point, b: Point, c: Point) -> Point {
    let med = |x: f64, y: f64, z: f64| {
        let mut v = [x, y, z];
        v.sort_by(f64::total_cmp);
        v[1]
    };
    Point::new(med(a.x, b.x, c.x), med(a.y, b.y, c.y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pin_is_trivial() {
        let t = steiner_tree(&[Point::new(1.0, 1.0)]);
        assert_eq!(t.wirelength(), 0.0);
        assert_eq!(t.nodes.len(), 1);
    }

    #[test]
    fn two_pins_is_manhattan_distance() {
        let t = steiner_tree(&[Point::new(0.0, 0.0), Point::new(3.0, 4.0)]);
        assert_eq!(t.wirelength(), 7.0);
        assert_eq!(t.path_length(1), 7.0);
    }

    #[test]
    fn steiner_point_beats_star_topology() {
        // Three corners of an L: the median point saves wire vs the MST.
        let pins = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 2.0),
            Point::new(10.0, -2.0),
        ];
        let t = steiner_tree(&pins);
        // Optimal RSMT: trunk to (10,0) then ±2 = 10 + 2 + 2 = 14.
        assert!(t.wirelength() <= 14.0 + 1e-9, "wl = {}", t.wirelength());
        // MST would be 12 + 4 = 16 (0->a 12, a->b 4).
        assert!(t.wirelength() < 16.0);
    }

    #[test]
    fn wirelength_lower_bound_is_hpwl() {
        let pins = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 9.0),
            Point::new(2.0, 3.0),
            Point::new(8.0, 1.0),
        ];
        let t = steiner_tree(&pins);
        let bbox = smt_base::geom::Rect::bounding(pins).unwrap();
        assert!(t.wirelength() >= bbox.half_perimeter() - 1e-9);
        // Every sink is connected to the root.
        for sink in 1..pins.len() {
            assert!(t.path_length(sink) > 0.0);
        }
    }

    #[test]
    fn median_point_math() {
        let m = median_point(
            Point::new(0.0, 0.0),
            Point::new(10.0, 2.0),
            Point::new(10.0, -2.0),
        );
        assert_eq!(m, Point::new(10.0, 0.0));
    }
}
