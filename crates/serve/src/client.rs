//! A small blocking client for the `smtd` line protocol, used by the
//! `smtc` CLI, the shard coordinator's worker dispatch, and the
//! loopback tests.

use smt_base::json::Json;
use smt_base::proto::{write_frame, FrameReader, Request, Response, WireError};
use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a call failed before (or instead of) a well-formed error reply.
#[derive(Debug)]
pub enum CallError {
    /// Could not connect, or the connection broke mid-call (including
    /// a response-timeout — the worker-death signal the coordinator
    /// retries on).
    Io(String),
    /// The peer answered with bytes that were not a valid response
    /// frame.
    Protocol(String),
    /// The peer answered with a structured error.
    Remote(WireError),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Io(e) => write!(f, "i/o: {e}"),
            CallError::Protocol(e) => write!(f, "protocol: {e}"),
            CallError::Remote(e) => write!(f, "remote: {e}"),
        }
    }
}

impl std::error::Error for CallError {}

/// One connection to an `smtd` daemon.
pub struct Client {
    reader: FrameReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects with a timeout (applied to the TCP connect; calls set
    /// their own response timeouts).
    ///
    /// # Errors
    ///
    /// [`CallError::Io`] when the address does not resolve or connect.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Client, CallError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| CallError::Io(format!("resolving {addr}: {e}")))?
            .collect();
        let mut last = format!("{addr}: no addresses");
        for a in addrs {
            match TcpStream::connect_timeout(&a, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    let write_half = stream
                        .try_clone()
                        .map_err(|e| CallError::Io(format!("cloning stream: {e}")))?;
                    return Ok(Client {
                        reader: FrameReader::new(stream),
                        writer: BufWriter::new(write_half),
                        next_id: 1,
                    });
                }
                Err(e) => last = format!("{a}: {e}"),
            }
        }
        Err(CallError::Io(last))
    }

    /// Sends one request and blocks for its response, failing if no
    /// full response frame arrives within `timeout` (`None` = wait
    /// forever). A timeout or mid-frame disconnect is [`CallError::Io`]
    /// — the retryable class.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call_timeout(
        &mut self,
        method: &str,
        params: Json,
        timeout: Option<Duration>,
    ) -> Result<Json, CallError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request::new(id, method, params);
        write_frame(&mut self.writer, &request.to_json())
            .map_err(|e| CallError::Io(format!("sending `{method}`: {e}")))?;
        // Poll in short slices so a hung worker trips the deadline even
        // though the socket stays open.
        let stream_timeout = Duration::from_millis(100);
        self.reader
            .get_ref()
            .set_read_timeout(Some(stream_timeout))
            .map_err(|e| CallError::Io(e.to_string()))?;
        let start = std::time::Instant::now();
        let frame = loop {
            match self.reader.poll() {
                Ok(smt_base::proto::Poll::Frame(frame)) => break frame,
                Ok(smt_base::proto::Poll::Eof) => {
                    return Err(CallError::Io(format!(
                        "connection closed awaiting `{method}` response"
                    )))
                }
                Ok(smt_base::proto::Poll::Pending) => {
                    if let Some(deadline) = timeout {
                        if start.elapsed() > deadline {
                            return Err(CallError::Io(format!(
                                "`{method}` timed out after {deadline:?}"
                            )));
                        }
                    }
                }
                Err(e) => return Err(CallError::Protocol(e.to_string())),
            }
        };
        let response =
            Response::from_json(&frame).map_err(|e| CallError::Protocol(e.to_string()))?;
        if response.id != id {
            return Err(CallError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        response.result.map_err(CallError::Remote)
    }

    /// [`Client::call_timeout`] without a deadline.
    ///
    /// # Errors
    ///
    /// See [`CallError`].
    pub fn call(&mut self, method: &str, params: Json) -> Result<Json, CallError> {
        self.call_timeout(method, params, None)
    }
}
