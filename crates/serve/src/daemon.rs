//! The resident `smtd` daemon: a thread-per-connection TCP server over
//! the [`smt_base::proto`] line protocol that keeps flow state warm
//! between requests and doubles as the distributed shard coordinator.
//!
//! ## Warm state
//!
//! One [`Library`] is built at boot; corner characterisations are
//! memoised in a [`LibraryPool`]; designs are realised through the
//! on-disk [`DesignCache`] (canonical SNL form — every executor runs
//! the same bytes); per-design [`Session`]s hold a placed-and-clocked
//! prefix [`Checkpoint`] and, after the first full flow, a signed-off
//! finals checkpoint. A warm `flow` request is therefore a checkpoint
//! read, not a rebuild, and is bit-identical to the cold run (the
//! response carries the outcome digest so clients can verify exactly
//! that).
//!
//! ## Isolation
//!
//! Every request body runs under `catch_unwind`: a panicking what-if
//! answers `{"err": {"code": "panicked", ...}}` on its own connection
//! and poisons nothing (poisoned mutexes are recovered, and flow state
//! is only mutated by short critical sections that cannot panic
//! mid-write). A garbage or
//! oversized frame earns one `bad-frame` error and a closed connection
//! — never a dead daemon.
//!
//! ## Shutdown
//!
//! A `shutdown` request or SIGTERM (see [`signals`]) sets the draining
//! flag: the acceptor stops taking connections, requests already
//! executing run to completion (bounded by
//! [`DaemonConfig::drain_timeout`]), queued-but-unstarted requests are
//! cancelled with a `draining` error, and the design cache needs no
//! flush because every store is an atomic temp-file + rename. The
//! process exits only after the drain completes, so CI never leaves
//! orphaned workers or torn cache entries.

use crate::client::{CallError, Client};
use crate::spec::SuiteSpec;
use smt_base::json::Json;
use smt_base::proto::{write_frame, FrameReader, Poll, Request, Response, WireError};
use smt_cells::corner::CornerSet;
use smt_cells::library::Library;
use smt_circuits::families::{generate, standard_suite, SuiteScale, Workload};
use smt_core::cache::{CacheStats, DesignCache, PlacementCache};
use smt_core::config_io::JsonConfig;
use smt_core::dualvth::DualVthConfig;
use smt_core::engine::{Checkpoint, FlowConfig, SweepRun, Technique};
use smt_core::session::{
    complete_flow, config_identity, finals_result, run_what_if, LibraryPool, Session,
    SessionRegistry, WhatIf,
};
use smt_core::suite::{ShardPlan, SuiteOutcome, SuiteReport};
use smt_netlist::netlist::Netlist;
use std::collections::BTreeMap;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the inner value if a previous holder
/// panicked — a poisoned session must never take down the daemon.
fn recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// A shard worker the coordinator can dispatch to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerSpec {
    /// A remote `smtd` reachable at `host:port` (spec `tcp:host:port`).
    Tcp(String),
    /// A `suite` binary to spawn per shard with `--shard K/N --json`
    /// (spec `spawn:/path/to/suite`).
    Spawn(String),
}

impl WorkerSpec {
    /// Parses `tcp:HOST:PORT` or `spawn:PATH`.
    ///
    /// # Errors
    ///
    /// Describes the expected forms.
    pub fn parse(spec: &str) -> Result<WorkerSpec, String> {
        if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.rsplit_once(':').is_none() {
                return Err(format!("worker `{spec}`: tcp wants HOST:PORT"));
            }
            return Ok(WorkerSpec::Tcp(addr.to_owned()));
        }
        if let Some(path) = spec.strip_prefix("spawn:") {
            if path.is_empty() {
                return Err(format!("worker `{spec}`: spawn wants a binary path"));
            }
            return Ok(WorkerSpec::Spawn(path.to_owned()));
        }
        Err(format!(
            "worker `{spec}`: expected `tcp:HOST:PORT` or `spawn:/path/to/suite`"
        ))
    }

    /// Display label used in replies and status output.
    pub fn label(&self) -> String {
        match self {
            WorkerSpec::Tcp(addr) => format!("tcp:{addr}"),
            WorkerSpec::Spawn(path) => format!("spawn:{path}"),
        }
    }
}

/// Daemon settings.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Design-cache directory.
    pub cache_dir: PathBuf,
    /// Worker-pool cap for suite/sweep fan-out (0 = all cores).
    pub threads: usize,
    /// Per-shard dispatch timeout before the coordinator declares a
    /// worker dead and reassigns.
    pub worker_timeout: Duration,
    /// How long `shutdown` waits for in-flight requests.
    pub drain_timeout: Duration,
    /// Shard workers registered at boot (more can register at runtime).
    pub workers: Vec<WorkerSpec>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_owned(),
            cache_dir: PathBuf::from(smt_core::cache::DEFAULT_DIR),
            threads: 0,
            worker_timeout: Duration::from_secs(600),
            drain_timeout: Duration::from_secs(30),
            workers: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

struct State {
    config: DaemonConfig,
    lib: Library,
    pool: Mutex<LibraryPool>,
    sessions: Mutex<SessionRegistry>,
    cache: Mutex<DesignCache>,
    placement_cache: Arc<PlacementCache>,
    workers: Mutex<Vec<WorkerSpec>>,
    draining: AtomicBool,
    drain_started: Mutex<Option<Instant>>,
    inflight: AtomicUsize,
    served: AtomicUsize,
    started: Instant,
}

impl State {
    fn begin_drain(&self) {
        let mut started = recover(&self.drain_started);
        if started.is_none() {
            *started = Some(Instant::now());
        }
        self.draining.store(true, Ordering::SeqCst);
    }

    fn drain_deadline_passed(&self) -> bool {
        recover(&self.drain_started)
            .map(|t| t.elapsed() > self.config.drain_timeout)
            .unwrap_or(false)
    }
}

/// A running daemon: its bound address plus control over its lifetime.
pub struct DaemonHandle {
    addr: SocketAddr,
    state: Arc<State>,
    accept: JoinHandle<()>,
}

impl DaemonHandle {
    /// The actually-bound listen address (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a drain (idempotent): stop accepting, let in-flight
    /// requests finish, then exit the accept loop.
    pub fn begin_drain(&self) {
        self.state.begin_drain();
    }

    /// True once the accept loop has exited.
    pub fn is_finished(&self) -> bool {
        self.accept.is_finished()
    }

    /// Blocks until the daemon has drained and stopped.
    pub fn wait(self) {
        let _ = self.accept.join();
    }
}

/// The daemon entry point.
pub struct Daemon;

impl Daemon {
    /// Binds, warms the library, opens the design cache, and starts
    /// the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Bind or cache-open failure.
    pub fn spawn(config: DaemonConfig) -> Result<DaemonHandle, String> {
        let lib = Library::industrial_130nm();
        let cache = DesignCache::open(&config.cache_dir, &lib).map_err(|e| e.to_string())?;
        // Placements share the design cache's directory (distinct
        // `.plc` entries), so one `--cache-dir` warms both.
        let placement_cache =
            Arc::new(PlacementCache::open(&config.cache_dir).map_err(|e| e.to_string())?);
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let state = Arc::new(State {
            workers: Mutex::new(config.workers.clone()),
            config,
            lib,
            pool: Mutex::new(LibraryPool::new()),
            sessions: Mutex::new(SessionRegistry::new()),
            cache: Mutex::new(cache),
            placement_cache,
            draining: AtomicBool::new(false),
            drain_started: Mutex::new(None),
            inflight: AtomicUsize::new(0),
            served: AtomicUsize::new(0),
            started: Instant::now(),
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("smtd-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_state))
            .map_err(|e| format!("spawning accept thread: {e}"))?;
        Ok(DaemonHandle {
            addr,
            state,
            accept,
        })
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    loop {
        if state.draining.load(Ordering::SeqCst) {
            let drained = state.inflight.load(Ordering::SeqCst) == 0;
            if drained || state.drain_deadline_passed() {
                break;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if state.draining.load(Ordering::SeqCst) {
                    // Refused politely: one error frame, then close.
                    let mut w = BufWriter::new(stream);
                    let _ = write_frame(
                        &mut w,
                        &Response::err(0, "draining", "daemon is shutting down").to_json(),
                    );
                    continue;
                }
                let conn_state = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("smtd-conn".to_owned())
                    .spawn(move || serve_connection(&conn_state, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn serve_connection(state: &Arc<State>, stream: TcpStream) {
    stream.set_nodelay(true).ok();
    // Short read timeouts let idle connection threads notice a drain.
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(write_half);
    let mut reader = FrameReader::new(stream);
    loop {
        match reader.poll() {
            Ok(Poll::Frame(frame)) => {
                let response = match Request::from_json(&frame) {
                    Ok(request) => handle_request(state, request),
                    Err(e) => Response::err(0, "bad-request", e.to_string()),
                };
                if write_frame(&mut writer, &response.to_json()).is_err() {
                    break;
                }
            }
            Ok(Poll::Pending) => {
                if state.draining.load(Ordering::SeqCst) && reader.is_idle() {
                    break;
                }
            }
            Ok(Poll::Eof) => break,
            Err(e) => {
                // Garbage, oversized, or truncated frames: reject the
                // connection, not the daemon.
                let _ = write_frame(
                    &mut writer,
                    &Response::err(0, "bad-frame", e.to_string()).to_json(),
                );
                break;
            }
        }
    }
}

fn handle_request(state: &Arc<State>, request: Request) -> Response {
    if request.method == "shutdown" {
        return handle_shutdown(state, request.id);
    }
    if state.draining.load(Ordering::SeqCst) {
        // The drain contract: unstarted requests are cancelled with a
        // reported error rather than silently dropped.
        return Response::err(
            request.id,
            "draining",
            "daemon is draining; request cancelled",
        );
    }
    state.inflight.fetch_add(1, Ordering::SeqCst);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dispatch(state, &request.method, &request.params)
    }));
    state.inflight.fetch_sub(1, Ordering::SeqCst);
    state.served.fetch_add(1, Ordering::SeqCst);
    match result {
        Ok(Ok(payload)) => Response::ok(request.id, payload),
        Ok(Err(e)) => Response {
            id: request.id,
            result: Err(e),
        },
        Err(payload) => Response::err(request.id, "panicked", panic_message(payload)),
    }
}

fn handle_shutdown(state: &Arc<State>, id: u64) -> Response {
    state.begin_drain();
    let deadline = Instant::now() + state.config.drain_timeout;
    while state.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let cancelled = state.inflight.load(Ordering::SeqCst);
    let mut m = BTreeMap::new();
    m.insert("draining".to_owned(), Json::Bool(true));
    m.insert(
        "served".to_owned(),
        num(state.served.load(Ordering::SeqCst)),
    );
    m.insert("cancelled_inflight".to_owned(), num(cancelled));
    Response::ok(id, Json::Obj(m))
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

fn bad(message: impl Into<String>) -> WireError {
    WireError::new("bad-request", message)
}

fn num(v: usize) -> Json {
    Json::Num(v as f64)
}

fn dispatch(state: &Arc<State>, method: &str, params: &Json) -> Result<Json, WireError> {
    match method {
        "ping" => Ok(Json::Bool(true)),
        "status" => Ok(status(state)),
        "flow" => flow(state, params),
        "vth-swap" | "eco" | "signoff" | "sweep" => what_if(state, method, params),
        "suite" => suite(state, params),
        "lint" => lint(state, params),
        "run_shard" => run_shard(state, params),
        "register-worker" => register_worker(state, params),
        other => Err(WireError::new(
            "unknown-method",
            format!(
                "unknown method `{other}` (expected ping | status | flow | vth-swap | eco | \
                 signoff | sweep | suite | lint | run_shard | register-worker | shutdown)"
            ),
        )),
    }
}

fn status(state: &Arc<State>) -> Json {
    let mut m = BTreeMap::new();
    m.insert(
        "uptime_ms".to_owned(),
        Json::Num(state.started.elapsed().as_millis() as f64),
    );
    m.insert(
        "served".to_owned(),
        num(state.served.load(Ordering::SeqCst)),
    );
    m.insert(
        "inflight".to_owned(),
        num(state.inflight.load(Ordering::SeqCst)),
    );
    m.insert(
        "draining".to_owned(),
        Json::Bool(state.draining.load(Ordering::SeqCst)),
    );
    m.insert(
        "library_fp".to_owned(),
        Json::Str(format!("{:016x}", state.lib.fingerprint())),
    );
    {
        let pool = recover(&state.pool);
        let mut p = BTreeMap::new();
        p.insert("corner_sets".to_owned(), num(pool.len()));
        p.insert("characterised".to_owned(), num(pool.characterised));
        p.insert("hits".to_owned(), num(pool.hits));
        m.insert("library_pool".to_owned(), Json::Obj(p));
    }
    {
        let sessions = recover(&state.sessions);
        let mut s = BTreeMap::new();
        s.insert("created".to_owned(), num(sessions.stats.created));
        s.insert("reused".to_owned(), num(sessions.stats.reused));
        s.insert("evicted".to_owned(), num(sessions.stats.evicted));
        s.insert(
            "names".to_owned(),
            Json::Arr(
                sessions
                    .names()
                    .into_iter()
                    .map(|n| Json::Str(n.to_owned()))
                    .collect(),
            ),
        );
        m.insert("sessions".to_owned(), Json::Obj(s));
    }
    m.insert(
        "cache".to_owned(),
        cache_stats_json(recover(&state.cache).stats()),
    );
    m.insert(
        "placement_cache".to_owned(),
        cache_stats_json(state.placement_cache.stats()),
    );
    m.insert(
        "workers".to_owned(),
        Json::Arr(
            recover(&state.workers)
                .iter()
                .map(|w| Json::Str(w.label()))
                .collect(),
        ),
    );
    Json::Obj(m)
}

fn cache_stats_json(stats: CacheStats) -> Json {
    let mut c = BTreeMap::new();
    c.insert("hits".to_owned(), num(stats.hits));
    c.insert("misses".to_owned(), num(stats.misses));
    c.insert("invalidated".to_owned(), num(stats.invalidated));
    Json::Obj(c)
}

fn cache_delta(before: CacheStats, after: CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        invalidated: after.invalidated - before.invalidated,
    }
}

// ---------------------------------------------------------------------------
// Sessions: flow + what-ifs
// ---------------------------------------------------------------------------

fn parse_scale(params: &Json) -> Result<SuiteScale, WireError> {
    match params.get("scale").and_then(Json::as_str) {
        None => Ok(SuiteScale::Smoke),
        Some("smoke") => Ok(SuiteScale::Smoke),
        Some("standard") => Ok(SuiteScale::Standard),
        Some("large") => Ok(SuiteScale::Large),
        Some(other) => Err(bad(format!("unknown scale `{other}`"))),
    }
}

fn parse_flow_config(params: &Json) -> Result<FlowConfig, WireError> {
    if let Some(cfg) = params.get("config") {
        return FlowConfig::from_json_value(cfg, "config").map_err(|e| bad(e.to_string()));
    }
    let mut config = FlowConfig {
        technique: Technique::DualVth,
        ..FlowConfig::default()
    };
    if let Some(t) = params.get("technique").and_then(Json::as_str) {
        config.technique = Technique::parse_json_str(t).map_err(bad)?;
    }
    if params.get("corners").and_then(Json::as_bool) == Some(true) {
        config.corners = CornerSet::slow_typ_fast();
    }
    Ok(config)
}

/// Finds the named workload at the given scale and realises it through
/// the cache. Returns the canonical netlist, the design's content
/// fingerprint, and this request's cache-stat delta.
fn realise_design(
    state: &Arc<State>,
    design: &str,
    scale: SuiteScale,
) -> Result<(Netlist, u64, CacheStats), WireError> {
    let workload = standard_suite(scale)
        .into_iter()
        .find(|w| w.name == design)
        .ok_or_else(|| {
            let names: Vec<String> = standard_suite(scale).into_iter().map(|w| w.name).collect();
            bad(format!(
                "unknown design `{design}` at this scale (available: {})",
                names.join(", ")
            ))
        })?;
    let mut cache = recover(&state.cache);
    let before = cache.stats();
    let lib = &state.lib;
    let netlist = cache
        .get_or_insert(
            &workload.name,
            workload.config.family(),
            workload.config.fingerprint(),
            lib,
            || generate(lib, &workload.config).map_err(|e| e.to_string()),
        )
        .map_err(|e| WireError::new("flow", e.to_string()))?;
    let delta = cache_delta(before, cache.stats());
    Ok((netlist, workload.config.fingerprint(), delta))
}

struct SessionView {
    name: String,
    prefix: Checkpoint,
    finals: Option<Checkpoint>,
    config: FlowConfig,
    reused: bool,
}

/// Looks up (or cold-opens) the session for `design` under `config`.
/// The prefix run happens outside every lock; only the lookups and the
/// final insert hold one.
fn acquire_session(
    state: &Arc<State>,
    session_name: &str,
    design: &str,
    design_fp: u64,
    netlist: Netlist,
    config: &FlowConfig,
) -> Result<SessionView, WireError> {
    let config_fp = config_identity(config, &state.lib);
    {
        let mut sessions = recover(&state.sessions);
        if let Some(s) = sessions.get(session_name) {
            if s.matches(design_fp, config_fp) {
                let view = SessionView {
                    name: session_name.to_owned(),
                    prefix: s.prefix().clone(),
                    finals: s.finals().cloned(),
                    config: s.config.clone(),
                    reused: true,
                };
                sessions.note_reuse();
                return Ok(view);
            }
        }
    }
    let (corner_libs, _) = recover(&state.pool).corner_libs(&state.lib, &config.corners);
    let session = Session::open_with_cache(
        session_name,
        design,
        design_fp,
        netlist,
        config.clone(),
        &state.lib,
        &corner_libs,
        Some(Arc::clone(&state.placement_cache)),
    )
    .map_err(|e| WireError::new("flow", e.to_string()))?;
    let view = SessionView {
        name: session_name.to_owned(),
        prefix: session.prefix().clone(),
        finals: None,
        config: session.config.clone(),
        reused: false,
    };
    recover(&state.sessions).insert(session);
    Ok(view)
}

fn outcome_json(result: &smt_core::engine::FlowResult) -> (Json, String) {
    let outcome = SuiteOutcome::from_flow(result);
    (outcome.to_json(), format!("{:016x}", outcome.digest()))
}

fn flow(state: &Arc<State>, params: &Json) -> Result<Json, WireError> {
    let t0 = Instant::now();
    let design = params
        .get("design")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`flow` needs a string `design`"))?;
    let scale = parse_scale(params)?;
    let config = parse_flow_config(params)?;
    let session_name = params
        .get("session")
        .and_then(Json::as_str)
        .unwrap_or(design)
        .to_owned();

    let (netlist, design_fp, cache) = realise_design(state, design, scale)?;
    let (corner_libs, library_warm) = recover(&state.pool).corner_libs(&state.lib, &config.corners);
    let view = acquire_session(state, &session_name, design, design_fp, netlist, &config)?;

    let (result, finals_reused) = match &view.finals {
        Some(finals) => {
            let result = finals_result(&state.lib, &corner_libs, &view.config, finals)
                .map_err(|e| WireError::new("flow", e.to_string()))?;
            if let Some(s) = recover(&state.sessions).get_mut(&view.name) {
                s.finals_reuses += 1;
            }
            (result, true)
        }
        None => {
            let (result, finals) =
                complete_flow(&state.lib, &corner_libs, &view.config, &view.prefix)
                    .map_err(|e| WireError::new("flow", e.to_string()))?;
            let mut sessions = recover(&state.sessions);
            if let Some(s) = sessions.get_mut(&view.name) {
                s.set_finals(finals);
                s.forks += 1;
            }
            (result, false)
        }
    };

    let (outcome, digest) = outcome_json(&result);
    let mut stats = BTreeMap::new();
    stats.insert("library_warm".to_owned(), Json::Bool(library_warm));
    stats.insert("session_reused".to_owned(), Json::Bool(view.reused));
    stats.insert("finals_reused".to_owned(), Json::Bool(finals_reused));
    stats.insert("cache".to_owned(), cache_stats_json(cache));
    stats.insert(
        "elapsed_ms".to_owned(),
        Json::Num(t0.elapsed().as_millis() as f64),
    );
    let mut m = BTreeMap::new();
    m.insert("design".to_owned(), Json::Str(design.to_owned()));
    m.insert("session".to_owned(), Json::Str(view.name));
    m.insert("outcome".to_owned(), outcome);
    m.insert("digest".to_owned(), Json::Str(digest));
    m.insert("stats".to_owned(), Json::Obj(stats));
    Ok(Json::Obj(m))
}

fn parse_what_if(method: &str, params: &Json) -> Result<WhatIf, WireError> {
    match method {
        "vth-swap" => {
            let dualvth = params
                .get("dualvth")
                .ok_or_else(|| bad("`vth-swap` needs a `dualvth` config object"))?;
            let dualvth = DualVthConfig::from_json_value(dualvth, "dualvth")
                .map_err(|e| bad(e.to_string()))?;
            Ok(WhatIf::VthSwap { dualvth })
        }
        "eco" => {
            let hold_rounds = params
                .get("hold_rounds")
                .and_then(Json::as_usize)
                .ok_or_else(|| bad("`eco` needs a numeric `hold_rounds`"))?;
            Ok(WhatIf::Eco { hold_rounds })
        }
        "signoff" => {
            let corners = match params.get("corners") {
                None => return Err(bad("`signoff` needs `corners`")),
                Some(Json::Str(s)) => match s.as_str() {
                    "typical" => CornerSet::typical_only(),
                    "slow-typ-fast" => CornerSet::slow_typ_fast(),
                    other => return Err(bad(format!("unknown corner set `{other}`"))),
                },
                Some(value) => {
                    CornerSet::from_json_value(value, "corners").map_err(|e| bad(e.to_string()))?
                }
            };
            Ok(WhatIf::Signoff { corners })
        }
        "sweep" => {
            let runs = params
                .get("runs")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("`sweep` needs a `runs` array"))?;
            if runs.is_empty() {
                return Err(bad("`sweep` needs at least one run"));
            }
            let runs = runs
                .iter()
                .enumerate()
                .map(|(i, run)| {
                    let label = run
                        .get("label")
                        .and_then(Json::as_str)
                        .map(str::to_owned)
                        .unwrap_or_else(|| format!("run-{i}"));
                    let config = run
                        .get("config")
                        .ok_or_else(|| bad(format!("sweep run `{label}` needs a `config`")))?;
                    let config = FlowConfig::from_json_value(config, "config")
                        .map_err(|e| bad(e.to_string()))?;
                    Ok(SweepRun::new(label, config))
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(WhatIf::Sweep { runs })
        }
        other => Err(bad(format!("`{other}` is not a what-if"))),
    }
}

fn what_if(state: &Arc<State>, method: &str, params: &Json) -> Result<Json, WireError> {
    let t0 = Instant::now();
    let design = params
        .get("design")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("`{method}` needs a string `design`")))?;
    let scale = parse_scale(params)?;
    let config = parse_flow_config(params)?;
    let session_name = params
        .get("session")
        .and_then(Json::as_str)
        .unwrap_or(design)
        .to_owned();
    let what = parse_what_if(method, params)?;

    let (netlist, design_fp, cache) = realise_design(state, design, scale)?;
    let view = acquire_session(state, &session_name, design, design_fp, netlist, &config)?;

    let mut resolve =
        |set: &CornerSet| recover(&state.pool).corner_libs(&state.lib, set).0.to_vec();
    let runs = run_what_if(
        &state.lib,
        &view.config,
        &view.prefix,
        view.finals.as_ref(),
        &mut resolve,
        &what,
        state.config.threads,
    );
    if let Some(s) = recover(&state.sessions).get_mut(&view.name) {
        s.forks += runs.len();
    }

    let runs_json: Vec<Json> = runs
        .iter()
        .map(|run| {
            let mut m = BTreeMap::new();
            m.insert("label".to_owned(), Json::Str(run.label.clone()));
            match &run.result {
                Ok(result) => {
                    let (outcome, digest) = outcome_json(result);
                    m.insert("outcome".to_owned(), outcome);
                    m.insert("digest".to_owned(), Json::Str(digest));
                }
                Err(e) => {
                    m.insert("error".to_owned(), Json::Str(e.to_string()));
                }
            }
            Json::Obj(m)
        })
        .collect();
    let mut stats = BTreeMap::new();
    stats.insert("session_reused".to_owned(), Json::Bool(view.reused));
    stats.insert("cache".to_owned(), cache_stats_json(cache));
    stats.insert(
        "elapsed_ms".to_owned(),
        Json::Num(t0.elapsed().as_millis() as f64),
    );
    let mut m = BTreeMap::new();
    m.insert("design".to_owned(), Json::Str(design.to_owned()));
    m.insert("session".to_owned(), Json::Str(view.name));
    m.insert("what_if".to_owned(), Json::Str(method.to_owned()));
    m.insert("runs".to_owned(), Json::Arr(runs_json));
    m.insert("stats".to_owned(), Json::Obj(stats));
    Ok(Json::Obj(m))
}

// ---------------------------------------------------------------------------
// Suite: worker side
// ---------------------------------------------------------------------------

fn run_shard(state: &Arc<State>, params: &Json) -> Result<Json, WireError> {
    let spec = SuiteSpec::from_json(params).map_err(bad)?;
    let shard = params
        .get("shard")
        .and_then(Json::as_usize)
        .ok_or_else(|| bad("`run_shard` needs a numeric `shard`"))?;
    let shards = params
        .get("shards")
        .and_then(Json::as_usize)
        .ok_or_else(|| bad("`run_shard` needs a numeric `shards`"))?;
    if shard >= shards {
        return Err(bad(format!(
            "shard {shard} out of range for {shards} shards"
        )));
    }
    let workloads = spec.workloads();
    let plan = spec.plan(&workloads, shards);
    let report = execute_shard(state, &spec, &workloads, &plan, shard)
        .map_err(|e| WireError::new("flow", e))?;
    let mut m = BTreeMap::new();
    m.insert("report".to_owned(), report.to_json());
    Ok(Json::Obj(m))
}

/// Realises this shard's designs through the cache (under the cache
/// lock) and runs them (outside it).
fn execute_shard(
    state: &Arc<State>,
    spec: &SuiteSpec,
    workloads: &[Workload],
    plan: &ShardPlan,
    shard: usize,
) -> Result<SuiteReport, String> {
    let (suite, delta) = {
        let mut cache = recover(&state.cache);
        let before = cache.stats();
        let suite = spec.build_shard(
            &state.lib,
            &mut cache,
            workloads,
            state.config.threads,
            plan.shard(shard),
        )?;
        (suite, cache_delta(before, cache.stats()))
    };
    let suite = suite.with_placement_cache(Arc::clone(&state.placement_cache));
    let mut report = suite.run(&state.lib);
    report.cache = Some(delta);
    Ok(report)
}

// ---------------------------------------------------------------------------
// Suite: coordinator side
// ---------------------------------------------------------------------------

fn register_worker(state: &Arc<State>, params: &Json) -> Result<Json, WireError> {
    let spec = params
        .get("worker")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`register-worker` needs a string `worker`"))?;
    let worker = WorkerSpec::parse(spec).map_err(bad)?;
    let mut workers = recover(&state.workers);
    if !workers.contains(&worker) {
        workers.push(worker);
    }
    Ok(Json::Arr(
        workers.iter().map(|w| Json::Str(w.label())).collect(),
    ))
}

struct ShardRun {
    shard: usize,
    executor: String,
    attempts: usize,
    report: SuiteReport,
}

/// `lint`: static analysis of a suite design, served from the warm
/// design cache. Params: `design` (required), `scale`
/// (smoke|standard|large, default smoke), `policy` (a stage key or
/// `signoff`/`structural`, default signoff), `threads` (default 0 = one
/// per core; the report is bit-identical at any count). The response
/// carries the severity tallies, the canonical diagnostic list and the
/// report's FNV digest — the same digest `smt-lint` prints, so a remote
/// answer is checkable against a local run.
fn lint(state: &Arc<State>, params: &Json) -> Result<Json, WireError> {
    use smt_netlist::check::{analyze_with_threads, LintPolicy};
    let design = params
        .get("design")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`design` is required"))?;
    let scale = parse_scale(params)?;
    let policy = match params.get("policy").and_then(Json::as_str) {
        None | Some("signoff") => LintPolicy::signoff(),
        Some("structural") => LintPolicy::structural(),
        Some(stage) => LintPolicy::for_stage(stage),
    };
    let threads = params.get("threads").and_then(Json::as_usize).unwrap_or(0);
    let (netlist, design_fp, cache) = realise_design(state, design, scale)?;
    let report = analyze_with_threads(&netlist, &state.lib, &policy, threads);
    let counts = report.counts();
    let mut m = BTreeMap::new();
    m.insert("design".to_owned(), Json::Str(design.to_owned()));
    m.insert(
        "design_fingerprint".to_owned(),
        Json::Str(format!("{design_fp:016x}")),
    );
    m.insert(
        "digest".to_owned(),
        Json::Str(format!("{:016x}", report.digest())),
    );
    m.insert("clean".to_owned(), Json::Bool(report.is_clean()));
    m.insert("errors".to_owned(), num(counts.errors));
    m.insert("warnings".to_owned(), num(counts.warnings));
    m.insert("infos".to_owned(), num(counts.infos));
    let diags = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut dm = BTreeMap::new();
            dm.insert("rule".to_owned(), Json::Str(d.rule.key().to_owned()));
            dm.insert(
                "severity".to_owned(),
                Json::Str(d.severity.key().to_owned()),
            );
            dm.insert(
                "object".to_owned(),
                Json::Str(d.object.name(&netlist).to_owned()),
            );
            dm.insert("message".to_owned(), Json::Str(d.message.clone()));
            Json::Obj(dm)
        })
        .collect();
    m.insert("diagnostics".to_owned(), Json::Arr(diags));
    m.insert("cache".to_owned(), cache_stats_json(cache));
    Ok(Json::Obj(m))
}

fn suite(state: &Arc<State>, params: &Json) -> Result<Json, WireError> {
    let t0 = Instant::now();
    let spec = SuiteSpec::from_json(params).map_err(bad)?;
    let workers: Vec<WorkerSpec> = {
        let mut all = recover(&state.workers).clone();
        if let Some(extra) = params.get("workers").and_then(Json::as_arr) {
            for w in extra {
                let w = w
                    .as_str()
                    .ok_or_else(|| bad("`workers` must be strings"))
                    .and_then(|s| WorkerSpec::parse(s).map_err(bad))?;
                if !all.contains(&w) {
                    all.push(w);
                }
            }
        }
        all
    };
    let shards = params
        .get("shards")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| workers.len().max(1));
    if shards == 0 {
        return Err(bad("`shards` must be at least 1"));
    }
    let timeout = params
        .get("timeout_ms")
        .and_then(Json::as_u64)
        .map_or(state.config.worker_timeout, Duration::from_millis);
    let local_fallback = params
        .get("local_fallback")
        .and_then(Json::as_bool)
        .unwrap_or(true);

    let workloads = spec.workloads();
    let plan = spec.plan(&workloads, shards);

    // Dispatch every shard concurrently; each dispatcher walks the
    // worker list (starting at shard % workers, so load spreads) and
    // falls back to running in-process when every worker fails.
    let runs: Vec<Result<ShardRun, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let spec = &spec;
                let workloads = &workloads;
                let plan = &plan;
                let workers = &workers;
                scope.spawn(move || {
                    let mut attempts = 0;
                    let mut failures: Vec<String> = Vec::new();
                    for i in 0..workers.len() {
                        let worker = &workers[(shard + i) % workers.len()];
                        attempts += 1;
                        match dispatch_shard(state, worker, spec, shard, shards, timeout) {
                            Ok(report) => {
                                return Ok(ShardRun {
                                    shard,
                                    executor: worker.label(),
                                    attempts,
                                    report,
                                })
                            }
                            Err(e) => failures.push(format!("{}: {e}", worker.label())),
                        }
                    }
                    if local_fallback {
                        attempts += 1;
                        return execute_shard(state, spec, workloads, plan, shard).map(|report| {
                            ShardRun {
                                shard,
                                executor: "local".to_owned(),
                                attempts,
                                report,
                            }
                        });
                    }
                    Err(format!(
                        "shard {shard}: every worker failed ({})",
                        failures.join("; ")
                    ))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|p| {
                    Err(format!("shard dispatcher panicked: {}", panic_message(p)))
                })
            })
            .collect()
    });

    let mut shard_runs = Vec::new();
    for run in runs {
        shard_runs.push(run.map_err(|e| WireError::new("worker", e))?);
    }
    let shards_json: Vec<Json> = shard_runs
        .iter()
        .map(|r| {
            let mut m = BTreeMap::new();
            m.insert("shard".to_owned(), num(r.shard));
            m.insert("executor".to_owned(), Json::Str(r.executor.clone()));
            m.insert("attempts".to_owned(), num(r.attempts));
            m.insert("rows".to_owned(), num(r.report.rows.len()));
            Json::Obj(m)
        })
        .collect();
    let merged = SuiteReport::merge(shard_runs.into_iter().map(|r| r.report))
        .map_err(|e| WireError::new("worker", format!("merging shard reports: {e}")))?;
    let missing = merged.missing_ordinals();
    if !missing.is_empty() {
        return Err(WireError::new(
            "worker",
            format!("merged report is missing designs {missing:?}"),
        ));
    }
    let mut m = BTreeMap::new();
    m.insert(
        "digest".to_owned(),
        Json::Str(format!("{:016x}", merged.digest())),
    );
    m.insert("passed".to_owned(), Json::Bool(merged.all_passed()));
    m.insert("report".to_owned(), merged.to_json());
    m.insert("shards".to_owned(), Json::Arr(shards_json));
    m.insert(
        "elapsed_ms".to_owned(),
        Json::Num(t0.elapsed().as_millis() as f64),
    );
    Ok(Json::Obj(m))
}

fn dispatch_shard(
    state: &Arc<State>,
    worker: &WorkerSpec,
    spec: &SuiteSpec,
    shard: usize,
    shards: usize,
    timeout: Duration,
) -> Result<SuiteReport, String> {
    match worker {
        WorkerSpec::Tcp(addr) => {
            let mut client =
                Client::connect(addr, Duration::from_secs(5)).map_err(|e| e.to_string())?;
            let mut params = match spec.to_json() {
                Json::Obj(m) => m,
                _ => unreachable!("spec serialises to an object"),
            };
            params.insert("shard".to_owned(), num(shard));
            params.insert("shards".to_owned(), num(shards));
            let reply = client
                .call_timeout("run_shard", Json::Obj(params), Some(timeout))
                .map_err(|e| match e {
                    CallError::Remote(w) => format!("worker error: {w}"),
                    other => other.to_string(),
                })?;
            let report = reply.get("report").ok_or("worker reply missing `report`")?;
            // from_json re-verifies the report digest, so a worker that
            // corrupted its result is caught here and retried elsewhere.
            SuiteReport::from_json(report)
        }
        WorkerSpec::Spawn(program) => {
            let json_path = std::env::temp_dir().join(format!(
                "smtd-shard-{}-{shard}-of-{shards}.json",
                std::process::id()
            ));
            let json_str = json_path.to_string_lossy().into_owned();
            let cache_dir = state.config.cache_dir.to_string_lossy().into_owned();
            let args = spec.cli_args(shard, shards, &json_str, &cache_dir)?;
            let _ = std::fs::remove_file(&json_path);
            let mut child = std::process::Command::new(program)
                .args(&args)
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .map_err(|e| format!("spawning {program}: {e}"))?;
            let deadline = Instant::now() + timeout;
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break, // exit status is reflected in the report rows
                    Ok(None) => {
                        if Instant::now() > deadline {
                            let _ = child.kill();
                            let _ = child.wait();
                            return Err(format!("{program} timed out after {timeout:?}"));
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(e) => return Err(format!("waiting for {program}: {e}")),
                }
            }
            let text = std::fs::read_to_string(&json_path)
                .map_err(|e| format!("{program} produced no report: {e}"))?;
            let _ = std::fs::remove_file(&json_path);
            let json = smt_base::json::parse(&text).map_err(|e| e.to_string())?;
            SuiteReport::from_json(&json)
        }
    }
}

// ---------------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------------

/// SIGTERM/SIGINT → drain, for the `smtd` binary. Kept libc-free: the
/// C `signal` entry point is declared directly (unix only).
#[cfg(unix)]
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_terminate(_sig: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Installs the termination flag on SIGTERM and SIGINT.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_terminate as *const () as usize);
            signal(SIGINT, on_terminate as *const () as usize);
        }
    }

    /// True once a termination signal arrived.
    pub fn termination_requested() -> bool {
        TERMINATED.load(Ordering::SeqCst)
    }
}

/// Non-unix stub: no signals, the `shutdown` request drains instead.
#[cfg(not(unix))]
pub mod signals {
    /// No-op off unix.
    pub fn install() {}

    /// Always false off unix.
    pub fn termination_requested() -> bool {
        false
    }
}
