//! Flow-as-a-service: the resident `smtd` daemon, its client, and the
//! distributed shard coordinator.
//!
//! The flow engine in `smt-core` is batch-shaped: every invocation
//! pays library characterisation, design realisation, and the full
//! implementation prefix before answering anything. This crate turns
//! it into a service:
//!
//! * [`daemon`] — the `smtd` server: newline-delimited JSON over TCP
//!   ([`smt_base::proto`]), warm [`LibraryPool`](smt_core::LibraryPool)
//!   / [`DesignCache`](smt_core::cache::DesignCache) /
//!   [`SessionRegistry`](smt_core::SessionRegistry) state, per-request
//!   panic isolation, graceful drain, and the shard coordinator
//!   (dispatching `run_shard` to remote daemons or spawned `suite`
//!   subprocesses, retrying past dead workers, merging and
//!   re-verifying digests).
//! * [`client`] — the small blocking [`Client`] the `smtc` CLI and the
//!   coordinator itself use.
//! * [`spec`] — [`SuiteSpec`], the wire description of a generated
//!   suite run, fingerprint-compatible with the `suite` bin so every
//!   executor produces mergeable, digest-identical reports.

pub mod client;
pub mod daemon;
pub mod spec;

pub use client::{CallError, Client};
pub use daemon::{signals, Daemon, DaemonConfig, DaemonHandle, WorkerSpec};
pub use spec::SuiteSpec;
