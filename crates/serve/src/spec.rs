//! The wire description of a generated workload-suite run — the exact
//! surface of the `suite` bin's generated path, so a shard executed by
//! a remote `smtd` worker, a spawned `suite --shard K/N` subprocess,
//! and an in-process run all compute identical suite/config
//! fingerprints and therefore produce mergeable, digest-identical
//! reports.
//!
//! The fingerprint formula here mirrors the `suite` bin byte for byte:
//! per entry `(name, family, config fingerprint)` into one
//! [`Fnv64`]. Anything that would desynchronise the two (a new field
//! that only one side hashes) breaks the coordinator's merge, which the
//! loopback test catches.

use smt_base::fingerprint::Fnv64;
use smt_base::json::Json;
use smt_cells::corner::CornerSet;
use smt_cells::library::Library;
use smt_circuits::families::{generate, standard_suite, SuiteScale, Workload};
use smt_core::cache::DesignCache;
use smt_core::engine::{FlowConfig, Technique};
use smt_core::suite::{plan_shards, ShardPlan, ShardStrategy, WorkloadSuite};
use std::collections::BTreeMap;

/// A generated-suite run request: which designs, which flow, how to
/// shard.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteSpec {
    /// Generated-suite size.
    pub scale: SuiteScale,
    /// Flow technique.
    pub technique: Technique,
    /// Sign off at slow/typ/fast PVT instead of typical-only.
    pub corners: bool,
    /// Independent equivalence-check stimulus depth (0 disables).
    pub equiv_cycles: usize,
    /// Shard assignment strategy.
    pub shard_by: ShardStrategy,
    /// Run only the first N workloads (`None` = all). Not expressible
    /// on the `suite` CLI, so specs with `take` set cannot fall back to
    /// spawned subprocess workers.
    pub take: Option<usize>,
}

impl Default for SuiteSpec {
    fn default() -> Self {
        SuiteSpec {
            scale: SuiteScale::Smoke,
            technique: Technique::DualVth,
            corners: false,
            equiv_cycles: 48,
            shard_by: ShardStrategy::ByGates,
            take: None,
        }
    }
}

fn scale_key(scale: SuiteScale) -> &'static str {
    match scale {
        SuiteScale::Smoke => "smoke",
        SuiteScale::Standard => "standard",
        SuiteScale::Large => "large",
    }
}

fn scale_from_key(key: &str) -> Result<SuiteScale, String> {
    match key {
        "smoke" => Ok(SuiteScale::Smoke),
        "standard" => Ok(SuiteScale::Standard),
        "large" => Ok(SuiteScale::Large),
        other => Err(format!("unknown scale `{other}`")),
    }
}

fn shard_by_key(s: ShardStrategy) -> &'static str {
    match s {
        ShardStrategy::ByGates => "gates",
        ShardStrategy::ByIndex => "index",
    }
}

fn shard_by_from_key(key: &str) -> Result<ShardStrategy, String> {
    match key {
        "gates" => Ok(ShardStrategy::ByGates),
        "index" => Ok(ShardStrategy::ByIndex),
        other => Err(format!("unknown shard strategy `{other}`")),
    }
}

impl SuiteSpec {
    /// The wire form (all fields explicit).
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert(
            "scale".to_owned(),
            Json::Str(scale_key(self.scale).to_owned()),
        );
        m.insert(
            "technique".to_owned(),
            Json::Str(self.technique.as_json_str().to_owned()),
        );
        m.insert("corners".to_owned(), Json::Bool(self.corners));
        m.insert(
            "equiv_cycles".to_owned(),
            Json::Num(self.equiv_cycles as f64),
        );
        m.insert(
            "shard_by".to_owned(),
            Json::Str(shard_by_key(self.shard_by).to_owned()),
        );
        if let Some(take) = self.take {
            m.insert("take".to_owned(), Json::Num(take as f64));
        }
        Json::Obj(m)
    }

    /// Decodes a spec; missing fields default ([`SuiteSpec::default`]).
    ///
    /// # Errors
    ///
    /// A description of the first invalid field.
    pub fn from_json(json: &Json) -> Result<SuiteSpec, String> {
        let mut spec = SuiteSpec::default();
        if let Some(s) = json.get("scale").and_then(Json::as_str) {
            spec.scale = scale_from_key(s)?;
        }
        if let Some(s) = json.get("technique").and_then(Json::as_str) {
            spec.technique = Technique::parse_json_str(s)?;
        }
        if let Some(b) = json.get("corners").and_then(Json::as_bool) {
            spec.corners = b;
        }
        if let Some(n) = json.get("equiv_cycles").and_then(Json::as_usize) {
            spec.equiv_cycles = n;
        }
        if let Some(s) = json.get("shard_by").and_then(Json::as_str) {
            spec.shard_by = shard_by_from_key(s)?;
        }
        if let Some(n) = json.get("take").and_then(Json::as_usize) {
            spec.take = Some(n);
        }
        Ok(spec)
    }

    /// The flow configuration this spec runs (same construction as the
    /// `suite` bin's flag handling).
    pub fn flow_config(&self) -> FlowConfig {
        let mut config = FlowConfig {
            technique: self.technique,
            ..FlowConfig::default()
        };
        if self.corners {
            config.corners = CornerSet::slow_typ_fast();
        }
        config
    }

    /// The deterministic full design list every shard agrees on.
    pub fn workloads(&self) -> Vec<Workload> {
        let mut all = standard_suite(self.scale);
        if let Some(take) = self.take {
            all.truncate(take);
        }
        all
    }

    /// The full-list suite fingerprint — per entry `(name, family,
    /// config fingerprint)`, identical to the `suite` bin's formula, so
    /// shard reports from either executor merge.
    pub fn suite_fingerprint(&self, workloads: &[Workload]) -> u64 {
        let mut h = Fnv64::new();
        for w in workloads {
            h.write_str(&w.name);
            h.write_str(w.config.family());
            h.write_u64(w.config.fingerprint());
        }
        h.finish()
    }

    /// Shard assignment over estimated gate weights (designs outside a
    /// shard are never generated).
    pub fn plan(&self, workloads: &[Workload], shards: usize) -> ShardPlan {
        let weights: Vec<f64> = workloads
            .iter()
            .map(|w| w.config.estimated_gates() as f64)
            .collect();
        plan_shards(&weights, shards, self.shard_by)
    }

    /// Builds the suite holding only `indices`, realising each design
    /// through `cache` (canonical SNL form, so every executor runs the
    /// same netlist bytes).
    ///
    /// # Errors
    ///
    /// The first design that fails to generate or cache.
    pub fn build_shard(
        &self,
        lib: &Library,
        cache: &mut DesignCache,
        workloads: &[Workload],
        threads: usize,
        indices: &[usize],
    ) -> Result<WorkloadSuite, String> {
        let mut suite = WorkloadSuite::new(self.flow_config())
            .with_threads(threads)
            .with_equiv_cycles(self.equiv_cycles)
            .with_total_designs(workloads.len())
            .with_suite_fingerprint(self.suite_fingerprint(workloads));
        for &idx in indices {
            let w = &workloads[idx];
            let netlist = cache
                .get_or_insert(
                    &w.name,
                    w.config.family(),
                    w.config.fingerprint(),
                    lib,
                    || generate(lib, &w.config).map_err(|e| e.to_string()),
                )
                .map_err(|e| format!("realising `{}`: {e}", w.name))?;
            suite.push_ordinal(&w.name, idx, netlist);
        }
        Ok(suite)
    }

    /// CLI arguments reproducing this spec as a `suite --shard K/N
    /// --json FILE` subprocess (the coordinator's spawn fallback).
    ///
    /// # Errors
    ///
    /// When the spec uses fields the CLI cannot express (`take`).
    pub fn cli_args(
        &self,
        shard: usize,
        shards: usize,
        json_path: &str,
        cache_dir: &str,
    ) -> Result<Vec<String>, String> {
        if self.take.is_some() {
            return Err("spec uses `take`, which `suite --shard` cannot express".to_owned());
        }
        let technique = match self.technique {
            Technique::DualVth => "dual",
            Technique::ConventionalSmt => "conv",
            Technique::ImprovedSmt => "imp",
        };
        let mut args = vec![
            "--scale".to_owned(),
            scale_key(self.scale).to_owned(),
            "--technique".to_owned(),
            technique.to_owned(),
            "--equiv-cycles".to_owned(),
            self.equiv_cycles.to_string(),
            "--shard-by".to_owned(),
            shard_by_key(self.shard_by).to_owned(),
            "--shard".to_owned(),
            format!("{}/{}", shard + 1, shards),
            "--json".to_owned(),
            json_path.to_owned(),
            "--cache-dir".to_owned(),
            cache_dir.to_owned(),
        ];
        if self.corners {
            args.push("--corners".to_owned());
        }
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_and_defaults() {
        let spec = SuiteSpec {
            scale: SuiteScale::Standard,
            technique: Technique::ImprovedSmt,
            corners: true,
            equiv_cycles: 16,
            shard_by: ShardStrategy::ByIndex,
            take: Some(3),
        };
        let back = SuiteSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(
            SuiteSpec::from_json(&Json::Obj(BTreeMap::new())).unwrap(),
            SuiteSpec::default()
        );
        assert!(
            SuiteSpec::from_json(&smt_base::json::parse(r#"{"scale": "galactic"}"#).unwrap())
                .is_err()
        );
    }

    #[test]
    fn fingerprint_tracks_the_design_list() {
        let a = SuiteSpec::default();
        let b = SuiteSpec {
            take: Some(2),
            ..SuiteSpec::default()
        };
        let wa = a.workloads();
        let wb = b.workloads();
        assert_eq!(wa.len(), 5, "smoke suite has five families");
        assert_eq!(wb.len(), 2);
        assert_ne!(a.suite_fingerprint(&wa), b.suite_fingerprint(&wb));
        // Same list → same fingerprint, regardless of flow knobs (those
        // are covered by the report's config fingerprint instead).
        let c = SuiteSpec {
            technique: Technique::ImprovedSmt,
            ..SuiteSpec::default()
        };
        assert_eq!(
            a.suite_fingerprint(&wa),
            c.suite_fingerprint(&c.workloads())
        );
    }

    #[test]
    fn cli_args_cover_every_expressible_field() {
        let spec = SuiteSpec {
            corners: true,
            equiv_cycles: 8,
            ..SuiteSpec::default()
        };
        let args = spec.cli_args(1, 2, "/tmp/r.json", ".suite-cache").unwrap();
        let joined = args.join(" ");
        assert!(joined.contains("--shard 2/2"), "{joined}");
        assert!(joined.contains("--corners"), "{joined}");
        assert!(joined.contains("--equiv-cycles 8"), "{joined}");
        assert!(SuiteSpec {
            take: Some(1),
            ..SuiteSpec::default()
        }
        .cli_args(0, 1, "r.json", "c")
        .is_err());
    }
}
