//! Word-parallel, cone-partitioned equivalence checking between two
//! netlists.
//!
//! The flow's verification step (last box of Fig. 4) compares the
//! original netlist and the transformed one on all primary outputs by
//! name, in *active* mode. Three layers make it fast without changing
//! what it observes:
//!
//! 1. **Fraiging fast path** ([`crate::fraig`]): both netlists are
//!    lowered into one shared AIG; outputs whose cones hash to the same
//!    node (or are swept equal and sequentially closed) are *proven*
//!    equivalent and never simulated. On the flow's own transforms
//!    (Vth swaps, buffer ECOs, holder insertion) this certifies almost
//!    everything structurally.
//! 2. **Cone partitioning**: the residue outputs are grouped by
//!    overlapping fan-in cones (walking combinational gates and FF `D`
//!    pins — never clocks), and the groups are checked concurrently on
//!    [`smt_base::par::parallel_map`] with scoped simulators that never
//!    touch out-of-cone or dead logic.
//! 3. **64-wide simulation** ([`crate::wordsim`]): each simulated cycle
//!    carries 64 independent stimulus lanes, so `cycles` clocked cycles
//!    compare `64 × cycles` vectors per output.
//!
//! Stimulus is a pure function of `(seed, input name, cycle)`
//! ([`stimulus_word`]), so the report is bit-identical regardless of
//! how the outputs were partitioned or how many workers ran — the
//! determinism contract the nightly ThreadSanitizer job pins via
//! [`EquivReport::digest`]. Simulation remains probabilistic rather
//! than a proof, but fraig-certified outputs are exact.

use crate::fraig;
use crate::sim::{Mode, Simulator, Value};
use crate::wordsim::{Word, WordSimulator};
use smt_base::par::parallel_map;
use smt_base::{Fnv64, SplitMix64};
use smt_cells::library::Library;
use smt_netlist::graph::{topo_order, CombinationalCycle};
use smt_netlist::netlist::{InstId, NetDriver, NetId, Netlist, PortDir};
use smt_netlist::DeltaBasis;
use std::collections::{BTreeMap, BTreeSet};

/// How many divergences the checker keeps before giving up: enough
/// evidence for a bug report, applied consistently per cone and after
/// the merge.
pub const MISMATCH_CAP: usize = 16;

/// One observed divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Output port name.
    pub output: String,
    /// Cycle index at which the divergence appeared.
    pub cycle: usize,
    /// Stimulus lane (0..64) that diverged; lowest such lane when
    /// several did at once. Always 0 for the scalar checker.
    pub lane: usize,
    /// Value in the reference netlist.
    pub expected: Value,
    /// Value in the netlist under test.
    pub actual: Value,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "output `{}` diverged at cycle {} (lane {}): expected {}, got {}",
            self.output, self.cycle, self.lane, self.expected, self.actual
        )
    }
}

/// Result of an equivalence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivReport {
    /// Clocked cycles actually simulated (the minimum across cones).
    /// Equals the requested cycle count unless the run was truncated,
    /// and is 0 when fraiging proved every output without simulating.
    pub cycles: usize,
    /// Outputs compared, proven or simulated.
    pub outputs_compared: usize,
    /// Outputs certified by the fraig fast path (skipped in simulation).
    pub outputs_proven: usize,
    /// Fan-in cone partitions the residue outputs were checked in.
    pub cones: usize,
    /// Stimulus vectors carried per simulated cycle (64 word-parallel,
    /// 1 scalar).
    pub lanes: usize,
    /// True when the mismatch cap cut the run or the merged list short:
    /// the mismatches shown are a prefix of the evidence, not all of it.
    pub truncated: bool,
    /// Divergences, sorted by (cycle, output, lane); empty = equivalent
    /// under this stimulus. At most one entry per output per cycle.
    pub mismatches: Vec<Mismatch>,
}

impl EquivReport {
    /// True when no mismatches were observed.
    pub fn is_equivalent(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Order-independent fingerprint of everything the checker decided.
    /// Two runs of the same check must produce the same digest at any
    /// worker count and over any cone partitioning.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(self.cycles);
        h.write_usize(self.outputs_compared);
        h.write_usize(self.outputs_proven);
        h.write_usize(self.cones);
        h.write_usize(self.lanes);
        h.write_bool(self.truncated);
        h.write_usize(self.mismatches.len());
        for m in &self.mismatches {
            h.write_str(&m.output);
            h.write_usize(m.cycle);
            h.write_usize(m.lane);
            h.write_u8(value_code(m.expected));
            h.write_u8(value_code(m.actual));
        }
        h.finish()
    }
}

fn value_code(v: Value) -> u8 {
    match v {
        Value::Zero => 0,
        Value::One => 1,
        Value::X => 2,
    }
}

/// Errors from equivalence checking.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivError {
    /// The two netlists have different input/output port name sets.
    PortMismatch(String),
    /// One of the netlists has a combinational cycle.
    Cycle(CombinationalCycle),
}

impl std::fmt::Display for EquivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivError::PortMismatch(m) => write!(f, "port mismatch: {m}"),
            EquivError::Cycle(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for EquivError {}

/// Tuning knobs for [`check_equivalence_with`].
#[derive(Debug, Clone)]
pub struct EquivOptions {
    /// Clocked cycles to simulate (each carries 64 stimulus lanes).
    pub cycles: usize,
    /// Stimulus seed.
    pub seed: u64,
    /// Worker threads for cone-parallel checking; 0 = one per core.
    pub workers: usize,
    /// Run the AIG fraiging fast path before simulating.
    pub fraig: bool,
}

impl Default for EquivOptions {
    fn default() -> Self {
        EquivOptions {
            cycles: 64,
            seed: 1,
            workers: 0,
            fraig: true,
        }
    }
}

/// The deterministic stimulus contract: the 64 lane values driven onto
/// input `name` at clocked cycle `cycle`. A pure function of its
/// arguments — never of cone partitioning, worker count, or visit
/// order — which is what makes the parallel checker's report
/// bit-reproducible.
pub fn stimulus_word(seed: u64, name: &str, cycle: usize) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(seed);
    h.write_str(name);
    h.write_usize(cycle);
    SplitMix64::new(h.finish()).next_u64()
}

/// Name-paired port nets: `(name, reference net, dut net)`.
type PairedPorts = Vec<(String, NetId, NetId)>;

/// Pairs input and output ports by name, **bidirectionally**: a port
/// missing from the DUT and a port the DUT has but the reference does
/// not are both errors (an extra DUT output is unverified logic; an
/// extra DUT input is uncontrolled stimulus).
fn paired_ports(
    reference: &Netlist,
    dut: &Netlist,
) -> Result<(PairedPorts, PairedPorts), EquivError> {
    let collect = |n: &Netlist, dir: PortDir| -> Vec<(String, NetId)> {
        let mut v: Vec<(String, NetId)> = n
            .ports()
            .filter(|(_, p)| p.dir == dir && !p.is_clock)
            .map(|(_, p)| (p.name.clone(), p.net))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    };
    let mut paired = Vec::new();
    for (dir, word) in [(PortDir::Input, "input"), (PortDir::Output, "output")] {
        let refs = collect(reference, dir);
        let duts = collect(dut, dir);
        let ref_names: BTreeSet<&String> = refs.iter().map(|(n, _)| n).collect();
        let dut_names: BTreeSet<&String> = duts.iter().map(|(n, _)| n).collect();
        if let Some(missing) = ref_names.difference(&dut_names).next() {
            return Err(EquivError::PortMismatch(format!(
                "dut missing {word} `{missing}`"
            )));
        }
        if let Some(extra) = dut_names.difference(&ref_names).next() {
            return Err(EquivError::PortMismatch(format!(
                "dut has extra {word} `{extra}`"
            )));
        }
        let dut_net = |name: &str| duts.iter().find(|(n, _)| n == name).map(|(_, net)| *net);
        paired.push(
            refs.into_iter()
                .map(|(name, rn)| {
                    let dn = dut_net(&name).expect("name sets verified equal");
                    (name, rn, dn)
                })
                .collect::<Vec<_>>(),
        );
    }
    let outputs = paired.pop().expect("two directions");
    let inputs = paired.pop().expect("two directions");
    Ok((inputs, outputs))
}

/// One fan-in cone partition: output indices (into the paired outputs)
/// plus the instance scope each side's simulator is restricted to.
struct Cone {
    outputs: Vec<usize>,
    ref_scope: Vec<InstId>,
    dut_scope: Vec<InstId>,
}

/// Groups outputs whose fan-in cones overlap **in either netlist** into
/// shared partitions. Derived purely from netlist structure (the
/// closures are passed in precomputed), so the partitioning (and
/// therefore the stimulus each cone sees) is independent of worker
/// count and of the order of instances within each closure.
fn partition_cones(
    reference: &Netlist,
    dut: &Netlist,
    residue: &[usize],
    ref_cones: &[Vec<InstId>],
    dut_cones: &[Vec<InstId>],
) -> Vec<Cone> {
    // Union-find over residue slots.
    let mut parent: Vec<usize> = (0..residue.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for (cones, capacity) in [
        (ref_cones, reference.inst_capacity()),
        (dut_cones, dut.inst_capacity()),
    ] {
        let mut owner: Vec<Option<usize>> = vec![None; capacity];
        for (slot, cone) in cones.iter().enumerate() {
            for id in cone {
                match owner[id.index()] {
                    Some(first) => {
                        let (a, b) = (find(&mut parent, first), find(&mut parent, slot));
                        if a != b {
                            parent[b.max(a)] = b.min(a);
                        }
                    }
                    None => owner[id.index()] = Some(slot),
                }
            }
        }
    }

    let mut cones: Vec<Cone> = Vec::new();
    let mut root_cone: Vec<Option<usize>> = vec![None; residue.len()];
    for slot in 0..residue.len() {
        let root = find(&mut parent, slot);
        let cone_idx = *root_cone[root].get_or_insert_with(|| {
            cones.push(Cone {
                outputs: Vec::new(),
                ref_scope: Vec::new(),
                dut_scope: Vec::new(),
            });
            cones.len() - 1
        });
        let cone = &mut cones[cone_idx];
        cone.outputs.push(residue[slot]);
        cone.ref_scope.extend_from_slice(&ref_cones[slot]);
        cone.dut_scope.extend_from_slice(&dut_cones[slot]);
    }
    for cone in &mut cones {
        for scope in [&mut cone.ref_scope, &mut cone.dut_scope] {
            scope.sort_unstable();
            scope.dedup();
        }
    }
    cones
}

/// Per-cone simulation result.
struct ConeRun {
    mismatches: Vec<Mismatch>,
    cycles_run: usize,
    truncated: bool,
}

/// Compares one cone's outputs at the current simulator state. Records
/// at most one divergence per output per cycle (`seen`), at most
/// [`MISMATCH_CAP`] total; returns false when the cap says stop.
#[allow(clippy::too_many_arguments)]
fn compare_cone(
    sim_ref: &WordSimulator,
    sim_dut: &WordSimulator,
    outputs: &[(String, NetId, NetId)],
    cone_outputs: &[usize],
    cycle: usize,
    seen: &mut [bool],
    mismatches: &mut Vec<Mismatch>,
    truncated: &mut bool,
) -> bool {
    for (k, &i) in cone_outputs.iter().enumerate() {
        if seen[k] {
            continue;
        }
        let (name, rn, dn) = &outputs[i];
        let expected = sim_ref.value(*rn);
        let actual = sim_dut.value(*dn);
        // Lanes where the reference is known (cold-start X is skipped)
        // but the DUT is X or disagrees.
        let bad = expected.known() & (actual.xs | ((expected.ones ^ actual.ones) & actual.known()));
        if bad == 0 {
            continue;
        }
        seen[k] = true;
        if mismatches.len() >= MISMATCH_CAP {
            *truncated = true;
            return false;
        }
        let lane = bad.trailing_zeros() as usize;
        mismatches.push(Mismatch {
            output: name.clone(),
            cycle,
            lane,
            expected: expected.get(lane),
            actual: actual.get(lane),
        });
    }
    true
}

/// Simulates one cone for up to `cycles` clocked cycles.
fn run_cone(
    reference: &Netlist,
    dut: &Netlist,
    lib: &Library,
    inputs: &[(String, NetId, NetId)],
    outputs: &[(String, NetId, NetId)],
    cone: &Cone,
    opts: &EquivOptions,
) -> ConeRun {
    let mut sim_ref = WordSimulator::with_scope(reference, lib, &cone.ref_scope)
        .expect("combinational cycles rejected before partitioning");
    let mut sim_dut = WordSimulator::with_scope(dut, lib, &cone.dut_scope)
        .expect("combinational cycles rejected before partitioning");
    sim_ref.set_mode(Mode::Active);
    sim_dut.set_mode(Mode::Active);

    let mut mismatches = Vec::new();
    let mut truncated = false;
    let mut cycles_run = 0;
    let mut seen = vec![false; cone.outputs.len()];
    for cycle in 0..opts.cycles {
        seen.iter_mut().for_each(|s| *s = false);
        for (name, rn, dn) in inputs {
            let w = Word::from_bits(stimulus_word(opts.seed, name, cycle));
            sim_ref.set_input(*rn, w);
            sim_dut.set_input(*dn, w);
        }
        sim_ref.propagate(reference, lib);
        sim_dut.propagate(dut, lib);
        let more = compare_cone(
            &sim_ref,
            &sim_dut,
            outputs,
            &cone.outputs,
            cycle,
            &mut seen,
            &mut mismatches,
            &mut truncated,
        );
        sim_ref.clock_edge(reference, lib);
        sim_dut.clock_edge(dut, lib);
        let more = more
            && compare_cone(
                &sim_ref,
                &sim_dut,
                outputs,
                &cone.outputs,
                cycle,
                &mut seen,
                &mut mismatches,
                &mut truncated,
            );
        cycles_run = cycle + 1;
        if !more {
            break;
        }
    }
    ConeRun {
        mismatches,
        cycles_run,
        truncated,
    }
}

/// Checks `dut` against `reference` with explicit [`EquivOptions`].
///
/// Output samples where the *reference* produces `X` (cold-start state)
/// are skipped; once the reference is known, any disagreement —
/// including `X` in the DUT — counts as a mismatch. The report's
/// `cycles` field is the number of cycles actually simulated, and
/// `truncated` says whether the mismatch cap cut anything short.
///
/// # Errors
///
/// [`EquivError::PortMismatch`] when the input/output name sets differ
/// in either direction; [`EquivError::Cycle`] when either netlist has
/// a combinational loop.
pub fn check_equivalence_with(
    reference: &Netlist,
    dut: &Netlist,
    lib: &Library,
    opts: &EquivOptions,
) -> Result<EquivReport, EquivError> {
    let (inputs, outputs) = paired_ports(reference, dut)?;
    topo_order(reference, lib).map_err(EquivError::Cycle)?;
    topo_order(dut, lib).map_err(EquivError::Cycle)?;

    // Structural fast path: certified outputs skip simulation entirely.
    let proven = if opts.fraig {
        let names: Vec<String> = outputs.iter().map(|(n, _, _)| n.clone()).collect();
        fraig::prove_equivalent_outputs(reference, dut, lib, &names, opts.seed).proven
    } else {
        BTreeSet::new()
    };
    let residue: Vec<usize> = (0..outputs.len())
        .filter(|&i| !proven.contains(&outputs[i].0))
        .collect();

    let ref_cones: Vec<Vec<InstId>> = residue
        .iter()
        .map(|&i| fraig::dependency_closure(reference, lib, &[outputs[i].1]))
        .collect();
    let dut_cones: Vec<Vec<InstId>> = residue
        .iter()
        .map(|&i| fraig::dependency_closure(dut, lib, &[outputs[i].2]))
        .collect();
    let cones = partition_cones(reference, dut, &residue, &ref_cones, &dut_cones);
    let runs: Vec<ConeRun> = parallel_map(&cones, opts.workers, |cone| {
        run_cone(reference, dut, lib, &inputs, &outputs, cone, opts)
    });

    let mut mismatches: Vec<Mismatch> = runs.iter().flat_map(|r| r.mismatches.clone()).collect();
    mismatches.sort_by(|a, b| (a.cycle, &a.output, a.lane).cmp(&(b.cycle, &b.output, b.lane)));
    let mut truncated = runs.iter().any(|r| r.truncated);
    if mismatches.len() > MISMATCH_CAP {
        mismatches.truncate(MISMATCH_CAP);
        truncated = true;
    }
    let cycles = runs.iter().map(|r| r.cycles_run).min().unwrap_or(0);
    Ok(EquivReport {
        cycles,
        outputs_compared: outputs.len(),
        outputs_proven: proven.len(),
        cones: cones.len(),
        lanes: 64,
        truncated,
        mismatches,
    })
}

/// Runs `cycles` random-stimulus clock cycles on both netlists and
/// compares primary outputs by name each cycle. Convenience wrapper
/// over [`check_equivalence_with`] with default options.
///
/// # Errors
///
/// See [`check_equivalence_with`].
pub fn check_equivalence(
    reference: &Netlist,
    dut: &Netlist,
    lib: &Library,
    cycles: usize,
    seed: u64,
) -> Result<EquivReport, EquivError> {
    check_equivalence_with(
        reference,
        dut,
        lib,
        &EquivOptions {
            cycles,
            seed,
            ..EquivOptions::default()
        },
    )
}

/// Cached per-output equivalence facts: the DUT-side fan-in closure
/// (instances and incident nets) plus the cone fingerprint and fraig
/// verdict captured when the output was last (re-)checked.
#[derive(Debug, Clone)]
struct OutputEntry {
    ref_net: NetId,
    dut_net: NetId,
    proven: bool,
    /// Reference-side fan-in closure, sorted (the reference is pinned
    /// by the cache's base fingerprint, so this never goes stale).
    ref_closure: Vec<InstId>,
    /// DUT-side fan-in closure, sorted.
    dut_closure: Vec<InstId>,
    /// Every DUT net incident to the closure plus the output net,
    /// sorted. A delta touching none of these nets and none of the
    /// closure instances cannot change what this output computes.
    cone_nets: Vec<NetId>,
    /// Cone fingerprint (structure + stimulus binding), the verdict
    /// cache key component for this output.
    fp: u64,
}

/// A remembered [`ConeRun`], replayed verbatim on a fingerprint hit.
#[derive(Debug, Clone)]
struct CachedConeRun {
    mismatches: Vec<Mismatch>,
    cycles_run: usize,
    truncated: bool,
}

/// Warm state for [`check_equivalence_cached`]: ECO-scoped equivalence
/// re-checks.
///
/// The cache pins the reference netlist and the options in a base
/// fingerprint, keeps a [`DeltaBasis`] of the DUT it last verified, and
/// stores per-output closures plus per-cone simulation verdicts keyed
/// by cone fingerprint. On the next call only outputs whose fan-in
/// closure intersects the DUT delta are re-fraiged and re-simulated;
/// everything else inherits its cached verdict. The assembled report is
/// bit-identical to [`check_equivalence_with`] on the same inputs:
/// fraig verdicts are cone-local (a subset run returns the same
/// per-output answers as the full run) and cone stimulus is a pure
/// function of `(seed, input name, cycle)`, never of what else ran.
#[derive(Debug, Clone, Default)]
pub struct EquivCache {
    base_fp: Option<u64>,
    basis: DeltaBasis,
    outputs: BTreeMap<String, OutputEntry>,
    verdicts: BTreeMap<u64, CachedConeRun>,
    /// Outputs whose verdicts were inherited untouched on the last call.
    pub last_outputs_inherited: usize,
    /// Residue cones actually simulated on the last call.
    pub last_cones_simulated: usize,
    /// Residue cones replayed from the verdict cache on the last call.
    pub last_cones_inherited: usize,
}

impl EquivCache {
    /// An empty cache; the first call through it runs everything.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Pins everything the per-output verdicts depend on besides the DUT:
/// the reference netlist's structure, the stimulus options, and the
/// port pairing on the reference side. Any change empties the cache.
fn cache_base_fp(
    reference: &Netlist,
    opts: &EquivOptions,
    inputs: &PairedPorts,
    outputs: &PairedPorts,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(DeltaBasis::of(reference).digest());
    h.write_usize(opts.cycles);
    h.write_u64(opts.seed);
    h.write_bool(opts.fraig);
    h.write_usize(inputs.len());
    for (name, rn, _) in inputs {
        h.write_str(name);
        h.write_u64(u64::from(rn.0));
    }
    h.write_usize(outputs.len());
    for (name, rn, _) in outputs {
        h.write_str(name);
        h.write_u64(u64::from(rn.0));
    }
    h.finish()
}

/// All DUT nets whose value can feed the cone: the closure instances'
/// pins plus the output net itself.
fn cone_net_set(dut: &Netlist, dn: NetId, closure: &[InstId]) -> Vec<NetId> {
    let mut nets: Vec<NetId> = closure
        .iter()
        .flat_map(|&id| dut.inst(id).conns.iter().flatten().copied())
        .collect();
    nets.push(dn);
    nets.sort_unstable();
    nets.dedup();
    nets
}

/// Fingerprint of one output's DUT cone: closure instance structure,
/// incident-net drivers (port drivers by *name*, because stimulus binds
/// by name), and the paired net ids. Two outputs with equal
/// fingerprints under the same base fingerprint compute the same
/// function on the same stimulus.
fn output_fp(
    dut: &Netlist,
    name: &str,
    rn: NetId,
    dn: NetId,
    dut_closure: &[InstId],
    cone_nets: &[NetId],
) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(name);
    h.write_u64(u64::from(rn.0));
    h.write_u64(u64::from(dn.0));
    h.write_usize(dut_closure.len());
    for &id in dut_closure {
        let inst = dut.inst(id);
        h.write_u64(u64::from(id.0));
        h.write_str(&inst.name);
        h.write_usize(inst.cell.0 as usize);
        h.write_usize(inst.conns.len());
        for conn in &inst.conns {
            h.write_u64(conn.map_or(u64::MAX, |n| u64::from(n.0)));
        }
    }
    h.write_usize(cone_nets.len());
    for &nid in cone_nets {
        h.write_u64(u64::from(nid.0));
        match dut.net(nid).driver {
            None => h.write_u8(0),
            Some(NetDriver::Inst(pr)) => {
                h.write_u8(1);
                h.write_u64(u64::from(pr.inst.0));
                h.write_usize(pr.pin);
            }
            Some(NetDriver::Port(p)) => {
                h.write_u8(2);
                h.write_str(&dut.port(p).name);
            }
        }
    }
    h.finish()
}

/// [`check_equivalence_with`], re-check scoped to what changed in the
/// DUT since the cache last saw it.
///
/// Outputs whose cached fan-in closure intersects neither the delta's
/// instances nor its nets inherit their fraig verdict and simulation
/// result outright; only the rest are re-proven (fraig runs on just the
/// stale name subset) and re-partitioned. Residue cones then consult a
/// verdict cache keyed by cone fingerprint, so even a stale-but-
/// structurally-identical cone replays instead of simulating. On a cold
/// cache this *is* the uncached checker; on a warm cache the report —
/// including its [`EquivReport::digest`] — is bit-identical to running
/// [`check_equivalence_with`] from scratch on the same pair.
///
/// # Errors
///
/// See [`check_equivalence_with`].
pub fn check_equivalence_cached(
    reference: &Netlist,
    dut: &Netlist,
    lib: &Library,
    opts: &EquivOptions,
    cache: &mut EquivCache,
) -> Result<EquivReport, EquivError> {
    let (inputs, outputs) = paired_ports(reference, dut)?;
    topo_order(reference, lib).map_err(EquivError::Cycle)?;
    topo_order(dut, lib).map_err(EquivError::Cycle)?;

    let base = cache_base_fp(reference, opts, &inputs, &outputs);
    if cache.base_fp != Some(base) {
        cache.outputs.clear();
        cache.verdicts.clear();
        cache.basis = DeltaBasis::default();
        cache.base_fp = Some(base);
    }
    let delta = cache.basis.diff(dut);

    // Split outputs into inherited (cached cone provably untouched by
    // the delta) and stale.
    let mut entries: Vec<Option<OutputEntry>> = vec![None; outputs.len()];
    let mut stale: Vec<usize> = Vec::new();
    for (i, (name, rn, dn)) in outputs.iter().enumerate() {
        let hit = cache.outputs.get(name).filter(|e| {
            e.ref_net == *rn
                && e.dut_net == *dn
                && !e.dut_closure.iter().any(|id| delta.insts.contains(id))
                && !e.cone_nets.iter().any(|n| delta.nets.contains(n))
        });
        match hit {
            Some(e) => entries[i] = Some(e.clone()),
            None => stale.push(i),
        }
    }
    cache.last_outputs_inherited = outputs.len() - stale.len();

    // Re-prove only the stale outputs. Fraig verdicts are per-output
    // and cone-local, so the subset run answers exactly as a full run
    // would for these names.
    let newly_proven = if opts.fraig && !stale.is_empty() {
        let names: Vec<String> = stale.iter().map(|&i| outputs[i].0.clone()).collect();
        fraig::prove_equivalent_outputs(reference, dut, lib, &names, opts.seed).proven
    } else {
        BTreeSet::new()
    };
    for &i in &stale {
        let (name, rn, dn) = &outputs[i];
        let mut ref_closure = fraig::dependency_closure(reference, lib, &[*rn]);
        ref_closure.sort_unstable();
        ref_closure.dedup();
        let mut dut_closure = fraig::dependency_closure(dut, lib, &[*dn]);
        dut_closure.sort_unstable();
        dut_closure.dedup();
        let cone_nets = cone_net_set(dut, *dn, &dut_closure);
        let fp = output_fp(dut, name, *rn, *dn, &dut_closure, &cone_nets);
        entries[i] = Some(OutputEntry {
            ref_net: *rn,
            dut_net: *dn,
            proven: newly_proven.contains(name),
            ref_closure,
            dut_closure,
            cone_nets,
            fp,
        });
    }
    let entries: Vec<OutputEntry> = entries
        .into_iter()
        .map(|e| e.expect("every output slot filled"))
        .collect();

    let proven_count = entries.iter().filter(|e| e.proven).count();
    let residue: Vec<usize> = (0..outputs.len()).filter(|&i| !entries[i].proven).collect();
    let ref_cones: Vec<Vec<InstId>> = residue
        .iter()
        .map(|&i| entries[i].ref_closure.clone())
        .collect();
    let dut_cones: Vec<Vec<InstId>> = residue
        .iter()
        .map(|&i| entries[i].dut_closure.clone())
        .collect();
    let cones = partition_cones(reference, dut, &residue, &ref_cones, &dut_cones);

    // Per-cone verdict cache: key = ordered (output name, cone fp).
    let keys: Vec<u64> = cones
        .iter()
        .map(|cone| {
            let mut h = Fnv64::new();
            h.write_usize(cone.outputs.len());
            for &i in &cone.outputs {
                h.write_str(&outputs[i].0);
                h.write_u64(entries[i].fp);
            }
            h.finish()
        })
        .collect();
    let misses: Vec<usize> = (0..cones.len())
        .filter(|&c| !cache.verdicts.contains_key(&keys[c]))
        .collect();
    cache.last_cones_simulated = misses.len();
    cache.last_cones_inherited = cones.len() - misses.len();

    let fresh: Vec<ConeRun> = parallel_map(&misses, opts.workers, |&c| {
        run_cone(reference, dut, lib, &inputs, &outputs, &cones[c], opts)
    });
    for (&c, run) in misses.iter().zip(&fresh) {
        cache.verdicts.insert(
            keys[c],
            CachedConeRun {
                mismatches: run.mismatches.clone(),
                cycles_run: run.cycles_run,
                truncated: run.truncated,
            },
        );
    }
    let runs: Vec<&CachedConeRun> = keys.iter().map(|k| &cache.verdicts[k]).collect();

    // Assemble exactly as `check_equivalence_with` does.
    let mut mismatches: Vec<Mismatch> = runs.iter().flat_map(|r| r.mismatches.clone()).collect();
    mismatches.sort_by(|a, b| (a.cycle, &a.output, a.lane).cmp(&(b.cycle, &b.output, b.lane)));
    let mut truncated = runs.iter().any(|r| r.truncated);
    if mismatches.len() > MISMATCH_CAP {
        mismatches.truncate(MISMATCH_CAP);
        truncated = true;
    }
    let cycles = runs.iter().map(|r| r.cycles_run).min().unwrap_or(0);
    let num_cones = cones.len();

    // Advance the cache to this DUT.
    cache.basis = DeltaBasis::of(dut);
    for (i, entry) in entries.into_iter().enumerate() {
        cache.outputs.insert(outputs[i].0.clone(), entry);
    }

    Ok(EquivReport {
        cycles,
        outputs_compared: outputs.len(),
        outputs_proven: proven_count,
        cones: num_cones,
        lanes: 64,
        truncated,
        mismatches,
    })
}

/// The one-vector-per-cycle scalar checker: the pre-word-parallel
/// engine, kept as the benchmark baseline and differential oracle. Its
/// single vector at each cycle is lane 0 of [`stimulus_word`], so any
/// divergence it can see, the word-parallel checker sees in lane 0.
///
/// # Errors
///
/// See [`check_equivalence_with`].
pub fn check_equivalence_scalar(
    reference: &Netlist,
    dut: &Netlist,
    lib: &Library,
    cycles: usize,
    seed: u64,
) -> Result<EquivReport, EquivError> {
    let (inputs, outputs) = paired_ports(reference, dut)?;
    let mut sim_ref = Simulator::new(reference, lib).map_err(EquivError::Cycle)?;
    let mut sim_dut = Simulator::new(dut, lib).map_err(EquivError::Cycle)?;
    sim_ref.set_mode(Mode::Active);
    sim_dut.set_mode(Mode::Active);

    let mut mismatches: Vec<Mismatch> = Vec::new();
    let mut truncated = false;
    let mut cycles_run = 0;
    let mut seen = vec![false; outputs.len()];
    'cycles: for cycle in 0..cycles {
        seen.iter_mut().for_each(|s| *s = false);
        for (name, rn, dn) in &inputs {
            let v = Value::from_bool(stimulus_word(seed, name, cycle) & 1 == 1);
            sim_ref.set_input(*rn, v);
            sim_dut.set_input(*dn, v);
        }
        cycles_run = cycle + 1;
        for phase in 0..2 {
            if phase == 0 {
                sim_ref.propagate(reference, lib);
                sim_dut.propagate(dut, lib);
            } else {
                sim_ref.clock_edge(reference, lib);
                sim_dut.clock_edge(dut, lib);
            }
            for (i, (name, rn, dn)) in outputs.iter().enumerate() {
                if seen[i] {
                    continue;
                }
                let expected = sim_ref.value(*rn);
                if expected == Value::X {
                    continue;
                }
                let actual = sim_dut.value(*dn);
                if actual == expected {
                    continue;
                }
                seen[i] = true;
                if mismatches.len() >= MISMATCH_CAP {
                    truncated = true;
                    break 'cycles;
                }
                mismatches.push(Mismatch {
                    output: name.clone(),
                    cycle,
                    lane: 0,
                    expected,
                    actual,
                });
            }
        }
    }
    mismatches.sort_by(|a, b| (a.cycle, &a.output, a.lane).cmp(&(b.cycle, &b.output, b.lane)));
    Ok(EquivReport {
        cycles: cycles_run,
        outputs_compared: outputs.len(),
        outputs_proven: 0,
        cones: 1,
        lanes: 1,
        truncated,
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_cells::cell::VthClass;

    fn lib() -> Library {
        Library::industrial_130nm()
    }

    fn xor_pair(lib: &Library, cell: &str) -> Netlist {
        let mut n = Netlist::new("x");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let z = n.add_output("z");
        let u = n.add_instance("u", lib.find_id(cell).unwrap(), lib);
        n.connect_by_name(u, "A", a, lib).unwrap();
        n.connect_by_name(u, "B", b, lib).unwrap();
        n.connect_by_name(u, "Z", z, lib).unwrap();
        n
    }

    #[test]
    fn vth_swap_is_equivalent() {
        let lib = lib();
        let a = xor_pair(&lib, "XOR2_X1_L");
        let b = xor_pair(&lib, "XOR2_X1_MV");
        let r = check_equivalence(&a, &b, &lib, 64, 7).unwrap();
        assert!(r.is_equivalent(), "{:?}", r.mismatches.first());
        assert_eq!(r.outputs_compared, 1);
        // The Vth swap is caught by the structural fast path.
        assert_eq!(r.outputs_proven, 1);
        assert_eq!(r.cycles, 0, "nothing left to simulate");
    }

    #[test]
    fn wrong_function_detected() {
        let lib = lib();
        let a = xor_pair(&lib, "XOR2_X1_L");
        let b = xor_pair(&lib, "XNR2_X1_L");
        let r = check_equivalence(&a, &b, &lib, 64, 7).unwrap();
        assert!(!r.is_equivalent());
        assert_eq!(r.outputs_proven, 0);
        let m = &r.mismatches[0];
        assert_eq!(m.output, "z");
        assert_eq!(m.cycle, 0, "an always-wrong gate diverges immediately");
        assert!(m.to_string().contains("diverged"));
    }

    #[test]
    fn port_mismatch_is_error() {
        let lib = lib();
        let a = xor_pair(&lib, "XOR2_X1_L");
        let mut b = Netlist::new("other");
        b.add_input("a");
        let e = check_equivalence(&a, &b, &lib, 4, 1).unwrap_err();
        assert!(matches!(e, EquivError::PortMismatch(_)));
    }

    #[test]
    fn extra_dut_ports_are_errors_too() {
        let lib = lib();
        let a = xor_pair(&lib, "XOR2_X1_L");
        // Same gate, but the DUT grew an extra input port.
        let mut b = xor_pair(&lib, "XOR2_X1_L");
        b.add_input("stowaway");
        let e = check_equivalence(&a, &b, &lib, 4, 1).unwrap_err();
        let EquivError::PortMismatch(msg) = e else {
            panic!("expected port mismatch");
        };
        assert!(msg.contains("extra input `stowaway`"), "{msg}");
        // And an extra output: unverified logic must not pass silently.
        let mut c = xor_pair(&lib, "XOR2_X1_L");
        c.add_output("debug_tap");
        let e = check_equivalence(&a, &c, &lib, 4, 1).unwrap_err();
        let EquivError::PortMismatch(msg) = e else {
            panic!("expected port mismatch");
        };
        assert!(msg.contains("extra output `debug_tap`"), "{msg}");
    }

    #[test]
    fn sequential_equivalence_after_replacement() {
        // FF + logic; replace logic Vth and re-check through clock cycles.
        let lib = lib();
        let build = |vth: VthClass| {
            let mut n = Netlist::new("seq");
            let a = n.add_input("a");
            let clk = n.add_clock("clk");
            let z = n.add_output("z");
            let w = n.add_net("w");
            let q = n.add_net("q");
            let g = n.add_instance(
                "g",
                lib.find_id(&format!("ND2_X1_{}", vth.suffix())).unwrap(),
                &lib,
            );
            let ff = n.add_instance("ff", lib.find_id("DFF_X1_L").unwrap(), &lib);
            let inv = n.add_instance("inv", lib.find_id("INV_X1_L").unwrap(), &lib);
            n.connect_by_name(g, "A", a, &lib).unwrap();
            n.connect_by_name(g, "B", q, &lib).unwrap();
            n.connect_by_name(g, "Z", w, &lib).unwrap();
            n.connect_by_name(ff, "D", w, &lib).unwrap();
            n.connect_by_name(ff, "CK", clk, &lib).unwrap();
            n.connect_by_name(ff, "Q", q, &lib).unwrap();
            n.connect_by_name(inv, "A", q, &lib).unwrap();
            n.connect_by_name(inv, "Z", z, &lib).unwrap();
            n
        };
        let a = build(VthClass::Low);
        let b = build(VthClass::MtVgnd);
        let r = check_equivalence(&a, &b, &lib, 128, 99).unwrap();
        assert!(r.is_equivalent(), "{:?}", r.mismatches.first());
    }

    /// A bank of independent single-gate outputs, `wrong` of which use
    /// the complemented function.
    fn gate_bank(lib: &Library, total: usize, wrong: usize) -> (Netlist, Netlist) {
        let build = |flipped: usize| {
            let mut n = Netlist::new("bank");
            for i in 0..total {
                let a = n.add_input(&format!("a{i}"));
                let z = n.add_output(&format!("z{i}"));
                let cell = if i < flipped { "BUF_X1_L" } else { "INV_X1_L" };
                let u = n.add_instance(&format!("u{i}"), lib.find_id(cell).unwrap(), lib);
                n.connect_by_name(u, "A", a, lib).unwrap();
                n.connect_by_name(u, "Z", z, lib).unwrap();
            }
            n
        };
        (build(0), build(wrong))
    }

    #[test]
    fn truncation_reports_cycles_actually_run() {
        let lib = lib();
        // 20 always-diverging outputs overflow the 16-mismatch cap in
        // the very first cycle: the report must say so instead of
        // claiming all 48 requested cycles were checked.
        let (a, b) = gate_bank(&lib, 20, 20);
        let r = check_equivalence(&a, &b, &lib, 48, 3).unwrap();
        assert!(r.truncated);
        assert!(r.mismatches.len() <= MISMATCH_CAP);
        assert!(r.cycles < 48, "cap stopped the run at cycle {}", r.cycles);
        // No truncation: full cycle count, flag clear.
        let (a, b) = gate_bank(&lib, 4, 0);
        let r = check_equivalence(&a, &b, &lib, 48, 3).unwrap();
        assert!(!r.truncated);
        assert_eq!(r.cycles, 0, "equal banks are fully fraig-proven");
        let r = check_equivalence_with(
            &a,
            &b,
            &lib,
            &EquivOptions {
                cycles: 48,
                seed: 3,
                fraig: false,
                ..EquivOptions::default()
            },
        )
        .unwrap();
        assert!(!r.truncated);
        assert_eq!(r.cycles, 48);
    }

    #[test]
    fn one_mismatch_per_output_per_cycle() {
        let lib = lib();
        // One wrong output diverging every cycle, compared twice per
        // cycle (after propagate and after the edge): exactly one entry
        // per cycle may be recorded.
        let (a, b) = gate_bank(&lib, 2, 1);
        let r = check_equivalence(&a, &b, &lib, 8, 11).unwrap();
        assert!(!r.is_equivalent());
        for c in 0..r.cycles {
            let per_cycle = r
                .mismatches
                .iter()
                .filter(|m| m.cycle == c && m.output == "z0")
                .count();
            assert!(per_cycle <= 1, "cycle {c} recorded {per_cycle} entries");
        }
    }

    #[test]
    fn report_is_worker_count_invariant() {
        let lib = lib();
        let (a, b) = gate_bank(&lib, 12, 5);
        let mut digests = BTreeSet::new();
        for workers in [1, 2, 4, 8] {
            let r = check_equivalence_with(
                &a,
                &b,
                &lib,
                &EquivOptions {
                    cycles: 24,
                    seed: 17,
                    workers,
                    ..EquivOptions::default()
                },
            )
            .unwrap();
            digests.insert(r.digest());
        }
        assert_eq!(digests.len(), 1, "digest must not depend on workers");
    }

    #[test]
    fn scalar_and_word_checkers_agree_on_the_verdict() {
        let lib = lib();
        for (total, wrong) in [(3, 0), (3, 1), (6, 2)] {
            let (a, b) = gate_bank(&lib, total, wrong);
            let opts = EquivOptions {
                cycles: 32,
                seed: 23,
                fraig: false,
                ..EquivOptions::default()
            };
            let word = check_equivalence_with(&a, &b, &lib, &opts).unwrap();
            let scalar = check_equivalence_scalar(&a, &b, &lib, 32, 23).unwrap();
            assert_eq!(word.is_equivalent(), scalar.is_equivalent());
            // Whatever the scalar engine saw is the word engine's lane 0.
            for m in &scalar.mismatches {
                assert!(
                    word.mismatches
                        .iter()
                        .any(|w| w.output == m.output && w.cycle == m.cycle),
                    "scalar mismatch {m} missing from word report"
                );
            }
        }
    }

    #[test]
    fn cached_checker_is_bit_identical_and_scopes_the_recheck() {
        let lib = lib();
        // 8 independent gates, 2 functionally wrong: with fraig off,
        // every output is a residue cone of its own.
        let (a, mut b) = gate_bank(&lib, 8, 2);
        let opts = EquivOptions {
            cycles: 24,
            seed: 17,
            fraig: false,
            ..EquivOptions::default()
        };
        let mut cache = EquivCache::new();
        let cold = check_equivalence_with(&a, &b, &lib, &opts).unwrap();
        let cached = check_equivalence_cached(&a, &b, &lib, &opts, &mut cache).unwrap();
        assert_eq!(cold.digest(), cached.digest(), "cold cache = uncached");
        assert_eq!(cache.last_cones_simulated, 8);

        // Equivalent drive swap on one untouched-function gate: only
        // its cone is re-simulated, everything else inherits.
        let u5 = b.find_inst("u5").unwrap();
        b.replace_cell(u5, lib.find_id("INV_X2_L").unwrap(), &lib)
            .unwrap();
        let scratch = check_equivalence_with(&a, &b, &lib, &opts).unwrap();
        let warm = check_equivalence_cached(&a, &b, &lib, &opts, &mut cache).unwrap();
        assert_eq!(scratch.digest(), warm.digest(), "warm cache = uncached");
        assert_eq!(cache.last_outputs_inherited, 7);
        assert_eq!(cache.last_cones_simulated, 1);
        assert_eq!(cache.last_cones_inherited, 7);

        // A *wrong* swap through the warm cache is still caught, with
        // the same report a from-scratch run produces.
        let u6 = b.find_inst("u6").unwrap();
        b.replace_cell(u6, lib.find_id("BUF_X1_L").unwrap(), &lib)
            .unwrap();
        let scratch = check_equivalence_with(&a, &b, &lib, &opts).unwrap();
        let warm = check_equivalence_cached(&a, &b, &lib, &opts, &mut cache).unwrap();
        assert!(!warm.is_equivalent());
        assert_eq!(scratch.digest(), warm.digest());
        assert!(warm.mismatches.iter().any(|m| m.output == "z6"));
    }

    #[test]
    fn cached_checker_inherits_fraig_verdicts() {
        let lib = lib();
        let (a, mut b) = gate_bank(&lib, 6, 0);
        let opts = EquivOptions {
            cycles: 24,
            seed: 5,
            ..EquivOptions::default() // fraig on
        };
        let mut cache = EquivCache::new();
        let r = check_equivalence_cached(&a, &b, &lib, &opts, &mut cache).unwrap();
        assert_eq!(r.outputs_proven, 6, "identical banks fully proven");

        // Vth-style swap: one output goes stale, is re-proven by the
        // subset fraig run; the other five inherit their proof without
        // any fraig or simulation work.
        let u2 = b.find_inst("u2").unwrap();
        b.replace_cell(u2, lib.find_id("INV_X1_H").unwrap(), &lib)
            .unwrap();
        let scratch = check_equivalence_with(&a, &b, &lib, &opts).unwrap();
        let warm = check_equivalence_cached(&a, &b, &lib, &opts, &mut cache).unwrap();
        assert_eq!(scratch.digest(), warm.digest());
        assert_eq!(warm.outputs_proven, 6);
        assert_eq!(cache.last_outputs_inherited, 5);
        assert_eq!(cache.last_cones_simulated, 0);
        assert_eq!(warm.cycles, 0, "nothing simulated on either path");
    }

    #[test]
    fn dut_x_where_reference_known_is_a_mismatch() {
        let lib = lib();
        let build = |drive: bool| {
            let mut n = Netlist::new("t");
            let a = n.add_input("a");
            let z = n.add_output("z");
            let u = n.add_instance("u", lib.find_id("BUF_X1_L").unwrap(), &lib);
            if drive {
                n.connect_by_name(u, "A", a, &lib).unwrap();
            }
            n.connect_by_name(u, "Z", z, &lib).unwrap();
            n
        };
        let driven = build(true);
        let floating = build(false); // unconnected input pin -> X output
                                     // Reference known, DUT X: caught.
        let r = check_equivalence(&driven, &floating, &lib, 8, 5).unwrap();
        assert!(!r.is_equivalent());
        assert_eq!(r.mismatches[0].actual, Value::X);
        // Reference X: those samples are skipped, not mismatches.
        let r = check_equivalence(&floating, &driven, &lib, 8, 5).unwrap();
        assert!(r.is_equivalent(), "{:?}", r.mismatches.first());
    }
}
