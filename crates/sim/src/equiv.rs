//! Random-vector equivalence checking between two netlists.
//!
//! The flow's verification step (last box of Fig. 4) runs the original
//! netlist and the transformed one side-by-side in *active* mode over many
//! random stimulus cycles and compares all primary outputs by name. This is
//! simulation-based equivalence — probabilistic, not a proof — but with
//! hundreds of vectors over the small-depth benchmark circuits it reliably
//! catches transform bugs (wrong pin rebinding, dropped inverters,
//! mis-inserted buffers).

use crate::sim::{Mode, Simulator, Value};
use smt_base::SplitMix64;
use smt_cells::library::Library;
use smt_netlist::graph::CombinationalCycle;
use smt_netlist::netlist::{Netlist, PortDir};

/// One observed divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Output port name.
    pub output: String,
    /// Cycle index at which the divergence appeared.
    pub cycle: usize,
    /// Value in the reference netlist.
    pub expected: Value,
    /// Value in the netlist under test.
    pub actual: Value,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "output `{}` diverged at cycle {}: expected {}, got {}",
            self.output, self.cycle, self.expected, self.actual
        )
    }
}

/// Result of an equivalence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivReport {
    /// Cycles simulated.
    pub cycles: usize,
    /// Outputs compared per cycle.
    pub outputs_compared: usize,
    /// All divergences found (empty = equivalent under this stimulus).
    pub mismatches: Vec<Mismatch>,
}

impl EquivReport {
    /// True when no mismatches were observed.
    pub fn is_equivalent(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Errors from equivalence checking.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivError {
    /// The two netlists have different input/output port name sets.
    PortMismatch(String),
    /// One of the netlists has a combinational cycle.
    Cycle(CombinationalCycle),
}

impl std::fmt::Display for EquivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivError::PortMismatch(m) => write!(f, "port mismatch: {m}"),
            EquivError::Cycle(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for EquivError {}

/// Runs `cycles` random-stimulus clock cycles on both netlists and compares
/// primary outputs by name each cycle.
///
/// Output samples where the *reference* produces `X` (cold-start state)
/// are skipped; once the reference is known, any disagreement — including
/// `X` in the DUT — counts as a mismatch.
///
/// # Errors
///
/// [`EquivError::PortMismatch`] when port names differ;
/// [`EquivError::Cycle`] when either netlist has a combinational loop.
pub fn check_equivalence(
    reference: &Netlist,
    dut: &Netlist,
    lib: &Library,
    cycles: usize,
    seed: u64,
) -> Result<EquivReport, EquivError> {
    let ref_inputs: Vec<(String, _)> = reference
        .ports()
        .filter(|(_, p)| p.dir == PortDir::Input && !p.is_clock)
        .map(|(_, p)| (p.name.clone(), p.net))
        .collect();
    let ref_outputs: Vec<(String, _)> = reference
        .ports()
        .filter(|(_, p)| p.dir == PortDir::Output)
        .map(|(_, p)| (p.name.clone(), p.net))
        .collect();

    let mut dut_inputs = Vec::with_capacity(ref_inputs.len());
    for (name, _) in &ref_inputs {
        let port = dut
            .ports()
            .find(|(_, p)| p.dir == PortDir::Input && &p.name == name)
            .ok_or_else(|| EquivError::PortMismatch(format!("dut missing input `{name}`")))?;
        dut_inputs.push(port.1.net);
    }
    let mut dut_outputs = Vec::with_capacity(ref_outputs.len());
    for (name, _) in &ref_outputs {
        let port = dut
            .ports()
            .find(|(_, p)| p.dir == PortDir::Output && &p.name == name)
            .ok_or_else(|| EquivError::PortMismatch(format!("dut missing output `{name}`")))?;
        dut_outputs.push(port.1.net);
    }

    let mut sim_ref = Simulator::new(reference, lib).map_err(EquivError::Cycle)?;
    let mut sim_dut = Simulator::new(dut, lib).map_err(EquivError::Cycle)?;
    sim_ref.set_mode(Mode::Active);
    sim_dut.set_mode(Mode::Active);

    let mut rng = SplitMix64::new(seed);
    let mut mismatches = Vec::new();
    for cycle in 0..cycles {
        for (i, (_, net)) in ref_inputs.iter().enumerate() {
            let v = Value::from_bool(rng.chance(0.5));
            sim_ref.set_input(*net, v);
            sim_dut.set_input(dut_inputs[i], v);
        }
        sim_ref.propagate(reference, lib);
        sim_dut.propagate(dut, lib);
        compare(
            &sim_ref,
            &sim_dut,
            &ref_outputs,
            &dut_outputs,
            cycle,
            &mut mismatches,
        );
        sim_ref.clock_edge(reference, lib);
        sim_dut.clock_edge(dut, lib);
        compare(
            &sim_ref,
            &sim_dut,
            &ref_outputs,
            &dut_outputs,
            cycle,
            &mut mismatches,
        );
        if mismatches.len() > 16 {
            break; // enough evidence
        }
    }
    Ok(EquivReport {
        cycles,
        outputs_compared: ref_outputs.len(),
        mismatches,
    })
}

fn compare(
    sim_ref: &Simulator,
    sim_dut: &Simulator,
    ref_outputs: &[(String, smt_netlist::netlist::NetId)],
    dut_outputs: &[smt_netlist::netlist::NetId],
    cycle: usize,
    mismatches: &mut Vec<Mismatch>,
) {
    for (i, (name, net)) in ref_outputs.iter().enumerate() {
        let expected = sim_ref.value(*net);
        if expected == Value::X {
            continue; // reference not yet initialised
        }
        let actual = sim_dut.value(dut_outputs[i]);
        if actual != expected {
            mismatches.push(Mismatch {
                output: name.clone(),
                cycle,
                expected,
                actual,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_cells::cell::VthClass;

    fn lib() -> Library {
        Library::industrial_130nm()
    }

    fn xor_pair(lib: &Library, cell: &str) -> Netlist {
        let mut n = Netlist::new("x");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let z = n.add_output("z");
        let u = n.add_instance("u", lib.find_id(cell).unwrap(), lib);
        n.connect_by_name(u, "A", a, lib).unwrap();
        n.connect_by_name(u, "B", b, lib).unwrap();
        n.connect_by_name(u, "Z", z, lib).unwrap();
        n
    }

    #[test]
    fn vth_swap_is_equivalent() {
        let lib = lib();
        let a = xor_pair(&lib, "XOR2_X1_L");
        let b = xor_pair(&lib, "XOR2_X1_MV");
        let r = check_equivalence(&a, &b, &lib, 64, 7).unwrap();
        assert!(r.is_equivalent(), "{:?}", r.mismatches.first());
        assert_eq!(r.outputs_compared, 1);
    }

    #[test]
    fn wrong_function_detected() {
        let lib = lib();
        let a = xor_pair(&lib, "XOR2_X1_L");
        let b = xor_pair(&lib, "XNR2_X1_L");
        let r = check_equivalence(&a, &b, &lib, 64, 7).unwrap();
        assert!(!r.is_equivalent());
        let m = &r.mismatches[0];
        assert_eq!(m.output, "z");
        assert!(m.to_string().contains("diverged"));
    }

    #[test]
    fn port_mismatch_is_error() {
        let lib = lib();
        let a = xor_pair(&lib, "XOR2_X1_L");
        let mut b = Netlist::new("other");
        b.add_input("a");
        let e = check_equivalence(&a, &b, &lib, 4, 1).unwrap_err();
        assert!(matches!(e, EquivError::PortMismatch(_)));
    }

    #[test]
    fn sequential_equivalence_after_replacement() {
        // FF + logic; replace logic Vth and re-check through clock cycles.
        let lib = lib();
        let build = |vth: VthClass| {
            let mut n = Netlist::new("seq");
            let a = n.add_input("a");
            let clk = n.add_clock("clk");
            let z = n.add_output("z");
            let w = n.add_net("w");
            let q = n.add_net("q");
            let g = n.add_instance(
                "g",
                lib.find_id(&format!("ND2_X1_{}", vth.suffix())).unwrap(),
                &lib,
            );
            let ff = n.add_instance("ff", lib.find_id("DFF_X1_L").unwrap(), &lib);
            let inv = n.add_instance("inv", lib.find_id("INV_X1_L").unwrap(), &lib);
            n.connect_by_name(g, "A", a, &lib).unwrap();
            n.connect_by_name(g, "B", q, &lib).unwrap();
            n.connect_by_name(g, "Z", w, &lib).unwrap();
            n.connect_by_name(ff, "D", w, &lib).unwrap();
            n.connect_by_name(ff, "CK", clk, &lib).unwrap();
            n.connect_by_name(ff, "Q", q, &lib).unwrap();
            n.connect_by_name(inv, "A", q, &lib).unwrap();
            n.connect_by_name(inv, "Z", z, &lib).unwrap();
            n
        };
        let a = build(VthClass::Low);
        let b = build(VthClass::MtVgnd);
        let r = check_equivalence(&a, &b, &lib, 128, 99).unwrap();
        assert!(r.is_equivalent(), "{:?}", r.mismatches.first());
    }
}
