//! Fraiging (functionally-reduced AIG sweeping) between two netlists.
//!
//! The equivalence checker's structural fast path: both netlists are
//! lowered into **one shared AIG** (the synthesiser's
//! [`smt_synth::aig::Aig`], whose structural hashing already merges
//! identical subgraphs), with primary inputs shared by port name and
//! flip-flop outputs shared by instance name. An output pair whose
//! literals coincide after hashing is *structurally* proven equal —
//! buffers vanish and inverters fold into complement edges during
//! lowering, so the flow's Vth swaps, buffer ECOs and holder insertions
//! all land on the same node. Pairs that differ structurally are swept:
//! candidate-equivalent classes are refined with rounds of 64-wide
//! random simulation words, and the survivors are *proven* by
//! exhaustive word-parallel enumeration when their joint input support
//! is small. Sequential cones are closed by induction: an output is
//! only certified when every flip-flop in its transitive fan-in closure
//! exists on both sides under the same name with a proven next-state
//! function.
//!
//! Certified outputs are dropped from vector simulation — identical
//! cones are checked once, and only miter residues get the full
//! word-parallel run ([`crate::equiv`]). The proof is over *boolean*
//! functions, which is exact where the three-valued simulator is
//! conservative: a proven pair can never hide a real divergence, it can
//! only skip an X-pessimism false alarm.

use smt_cells::library::Library;
use smt_netlist::netlist::{InstId, NetDriver, NetId, Netlist, PortDir};
use smt_synth::aig::{Aig, Lit, NodeKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Joint-support ceiling for exhaustive proofs: 2^12 assignments = 64
/// word-parallel evaluation passes over the candidate cones.
const MAX_PROOF_SUPPORT: usize = 12;

/// Rounds of 64-wide random simulation used to refine candidates.
const SIM_ROUNDS: usize = 4;

/// What the sweep certified.
#[derive(Debug, Clone, Default)]
pub struct FraigOutcome {
    /// Output port names proven equivalent (safe to skip in simulation).
    pub proven: BTreeSet<String>,
    /// How many of those collapsed to one AIG literal outright.
    pub structural: usize,
    /// How many needed the simulate-then-prove sweep.
    pub swept: usize,
}

/// How one side's nets map into the shared AIG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Side {
    Reference,
    Dut,
}

/// Identity of a shared AIG input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum InputKey {
    /// Primary input port, shared across sides by name.
    Port(String),
    /// Flip-flop present state, shared across sides by instance name.
    State(String),
    /// Anything the lowering cannot see through (undriven net, a net
    /// driven by a function-less cell, a clock). Unique per side and
    /// net, so it can never alias across netlists.
    Opaque(Side, u32),
}

/// One netlist lowered into the shared AIG.
struct Lowered {
    /// Output port name -> literal.
    outputs: BTreeMap<String, Lit>,
    /// Output port name -> net (for on-demand closure walks).
    output_nets: BTreeMap<String, NetId>,
    /// FF instance name -> next-state (D) literal.
    ff_next: BTreeMap<String, Lit>,
}

struct Builder {
    aig: Aig,
    inputs: HashMap<InputKey, Lit>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            aig: Aig::new(),
            inputs: HashMap::new(),
        }
    }

    fn input(&mut self, key: InputKey) -> Lit {
        if let Some(&l) = self.inputs.get(&key) {
            return l;
        }
        let l = self.aig.input();
        self.inputs.insert(key, l);
        l
    }

    /// A never-shared opaque input (unconnected pins: each one is an
    /// independent unknown, so no two may alias).
    fn fresh_input(&mut self) -> Lit {
        self.aig.input()
    }

    /// Lowers a truth table over input literals by Shannon expansion on
    /// the highest input. Deterministic, so identical cones on the two
    /// sides hash to identical nodes.
    fn tt_lit(&mut self, bits: u16, n: usize, ins: &[Lit]) -> Lit {
        if n == 0 {
            return if bits & 1 == 1 { Lit::TRUE } else { Lit::FALSE };
        }
        let half = 1usize << (n - 1);
        let low_mask = (1u32 << half) - 1;
        let f0 = (bits as u32) & low_mask;
        let f1 = (bits as u32 >> half) & low_mask;
        let l0 = self.tt_lit(f0 as u16, n - 1, ins);
        let l1 = self.tt_lit(f1 as u16, n - 1, ins);
        if l0 == l1 {
            return l0;
        }
        self.aig.mux(ins[n - 1], l1, l0)
    }

    /// Lowers one netlist: combinational gates become AIG nodes over
    /// shared port/state inputs; everything else becomes opaque inputs.
    fn lower(&mut self, netlist: &Netlist, lib: &Library, side: Side) -> Lowered {
        let mut net_lit: Vec<Option<Lit>> = vec![None; netlist.num_nets()];
        // Seed primary inputs (clocks stay opaque) and FF Q nets.
        for (_, port) in netlist.ports() {
            if port.dir == PortDir::Input && !port.is_clock {
                net_lit[port.net.index()] = Some(self.input(InputKey::Port(port.name.clone())));
            }
        }
        for (_, inst) in netlist.instances() {
            let cell = lib.cell(inst.cell);
            if cell.is_sequential() {
                if let Some(q) = cell.output_pin() {
                    if let Some(net) = inst.net_on(q) {
                        net_lit[net.index()] = Some(self.input(InputKey::State(inst.name.clone())));
                    }
                }
            }
        }
        // Combinational gates in dependency order. A netlist with a
        // combinational cycle never reaches fraiging (the checker
        // errors out building the simulators first), but stay robust:
        // on cycle, lower nothing and let every cone stay opaque.
        let order = match smt_netlist::graph::topo_order(netlist, lib) {
            Ok(t) => t.order,
            Err(_) => Vec::new(),
        };
        for id in order {
            let inst = netlist.inst(id);
            let cell = lib.cell(inst.cell);
            let (Some(tt), Some(op)) = (cell.function, cell.output_pin()) else {
                continue;
            };
            let Some(out_net) = inst.net_on(op) else {
                continue;
            };
            let pins = cell.logic_input_pins();
            let mut ins = [Lit::FALSE; 4];
            for (i, &pin) in pins.iter().enumerate() {
                ins[i] = match inst.net_on(pin) {
                    Some(net) => self.net_lit(&mut net_lit, side, net),
                    None => self.fresh_input(),
                };
            }
            let lit = self.tt_lit(tt.bits, tt.n_inputs as usize, &ins);
            net_lit[out_net.index()] = Some(lit);
        }

        let mut outputs = BTreeMap::new();
        let mut output_nets = BTreeMap::new();
        for (_, port) in netlist.ports() {
            if port.dir != PortDir::Output {
                continue;
            }
            let lit = self.net_lit(&mut net_lit, side, port.net);
            outputs.insert(port.name.clone(), lit);
            output_nets.insert(port.name.clone(), port.net);
        }
        let mut ff_next = BTreeMap::new();
        for (_, inst) in netlist.instances() {
            let cell = lib.cell(inst.cell);
            if !cell.is_sequential() {
                continue;
            }
            let Some(d_pin) = cell.pin_index("D") else {
                continue;
            };
            let lit = match inst.net_on(d_pin) {
                Some(net) => self.net_lit(&mut net_lit, side, net),
                None => self.fresh_input(),
            };
            ff_next.insert(inst.name.clone(), lit);
        }
        Lowered {
            outputs,
            output_nets,
            ff_next,
        }
    }

    fn net_lit(&mut self, net_lit: &mut [Option<Lit>], side: Side, net: NetId) -> Lit {
        if let Some(l) = net_lit[net.index()] {
            return l;
        }
        let l = self.input(InputKey::Opaque(side, net.index() as u32));
        net_lit[net.index()] = Some(l);
        l
    }
}

/// FF instance names in the transitive fan-in closure of a net, walking
/// backward through combinational gates and through FF `D` pins (the
/// clock pin is excluded — it is not stimulus).
fn sequential_closure_ffs(netlist: &Netlist, lib: &Library, from: NetId) -> BTreeSet<String> {
    let mut ffs = BTreeSet::new();
    for id in dependency_closure(netlist, lib, &[from]) {
        let inst = netlist.inst(id);
        if lib.cell(inst.cell).is_sequential() {
            ffs.insert(inst.name.clone());
        }
    }
    ffs
}

/// The instance closure feeding a set of nets: every combinational gate
/// and flip-flop whose value can influence them, walking through FF `D`
/// pins but not clocks. This is both the fraig induction frontier and
/// the scope the cone-partitioned checker simulates.
pub(crate) fn dependency_closure(netlist: &Netlist, lib: &Library, from: &[NetId]) -> Vec<InstId> {
    let mut seen_inst = vec![false; netlist.inst_capacity()];
    let mut seen_net = vec![false; netlist.num_nets()];
    let mut out = Vec::new();
    let mut queue: Vec<NetId> = Vec::new();
    for &net in from {
        if !seen_net[net.index()] {
            seen_net[net.index()] = true;
            queue.push(net);
        }
    }
    while let Some(net) = queue.pop() {
        let Some(NetDriver::Inst(pr)) = netlist.net(net).driver else {
            continue;
        };
        let id = pr.inst;
        if seen_inst[id.index()] {
            continue;
        }
        let inst = netlist.inst(id);
        if inst.dead {
            continue;
        }
        seen_inst[id.index()] = true;
        let cell = lib.cell(inst.cell);
        let walk_pins: Vec<usize> = if cell.is_sequential() {
            cell.pin_index("D").into_iter().collect()
        } else if cell.is_logic() {
            cell.logic_input_pins()
        } else {
            // Switches/holders are not value drivers in active mode.
            continue;
        };
        out.push(id);
        for pin in walk_pins {
            if let Some(n) = inst.net_on(pin) {
                if !seen_net[n.index()] {
                    seen_net[n.index()] = true;
                    queue.push(n);
                }
            }
        }
    }
    out
}

/// A comb-pair verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Structural,
    Swept,
    Unknown,
}

struct Sweeper {
    aig: Aig,
    /// Node -> per-round simulation word.
    sim: Vec<[u64; SIM_ROUNDS]>,
    /// Memoized support sets (None = wider than [`MAX_PROOF_SUPPORT`]).
    support: HashMap<u32, Option<Vec<u32>>>,
}

impl Sweeper {
    fn new(aig: Aig, seed: u64) -> Self {
        let mut sim = vec![[0u64; SIM_ROUNDS]; aig.len()];
        for idx in 0..aig.len() as u32 {
            match aig.node(idx) {
                NodeKind::ConstFalse => {}
                NodeKind::Input(ord) => {
                    for (r, slot) in sim[idx as usize].iter_mut().enumerate() {
                        // Keyed, not streamed: stimulus depends only on
                        // (seed, round, ordinal), never on build order.
                        let mix = seed
                            ^ (r as u64).wrapping_mul(0xA076_1D64_78BD_642F)
                            ^ (u64::from(ord)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        *slot = smt_base::SplitMix64::new(mix).next_u64();
                    }
                }
                NodeKind::And(a, b) => {
                    for r in 0..SIM_ROUNDS {
                        let va = Self::lit_word(&sim, a, r);
                        let vb = Self::lit_word(&sim, b, r);
                        sim[idx as usize][r] = va & vb;
                    }
                }
            }
        }
        Sweeper {
            aig,
            sim,
            support: HashMap::new(),
        }
    }

    fn lit_word(sim: &[[u64; SIM_ROUNDS]], lit: Lit, round: usize) -> u64 {
        let v = sim[lit.node() as usize][round];
        if lit.is_complemented() {
            !v
        } else {
            v
        }
    }

    fn signature(&self, lit: Lit, round: usize) -> u64 {
        Self::lit_word(&self.sim, lit, round)
    }

    /// Input nodes a node depends on, or `None` when wider than the
    /// proof ceiling. Iterative DFS with memoization.
    fn node_support(&mut self, node: u32) -> Option<Vec<u32>> {
        if let Some(s) = self.support.get(&node) {
            return s.clone();
        }
        let mut stack = vec![node];
        while let Some(&n) = stack.last() {
            if self.support.contains_key(&n) {
                stack.pop();
                continue;
            }
            match self.aig.node(n) {
                NodeKind::ConstFalse => {
                    self.support.insert(n, Some(Vec::new()));
                    stack.pop();
                }
                NodeKind::Input(_) => {
                    self.support.insert(n, Some(vec![n]));
                    stack.pop();
                }
                NodeKind::And(a, b) => {
                    let (na, nb) = (a.node(), b.node());
                    let ready_a = self.support.contains_key(&na);
                    let ready_b = self.support.contains_key(&nb);
                    if ready_a && ready_b {
                        let merged = match (&self.support[&na], &self.support[&nb]) {
                            (Some(sa), Some(sb)) => {
                                let mut m = sa.clone();
                                for &x in sb {
                                    if !m.contains(&x) {
                                        m.push(x);
                                    }
                                }
                                if m.len() > MAX_PROOF_SUPPORT {
                                    None
                                } else {
                                    m.sort_unstable();
                                    Some(m)
                                }
                            }
                            _ => None,
                        };
                        self.support.insert(n, merged);
                        stack.pop();
                    } else {
                        if !ready_a {
                            stack.push(na);
                        }
                        if !ready_b {
                            stack.push(nb);
                        }
                    }
                }
            }
        }
        self.support[&node].clone()
    }

    /// Exhaustively proves or refutes `a == b` over their joint input
    /// support, 64 assignments per evaluation pass.
    fn prove_pair(&mut self, a: Lit, b: Lit) -> bool {
        let (Some(sa), Some(sb)) = (self.node_support(a.node()), self.node_support(b.node()))
        else {
            return false;
        };
        let mut support = sa;
        for x in sb {
            if !support.contains(&x) {
                support.push(x);
            }
        }
        if support.len() > MAX_PROOF_SUPPORT {
            return false;
        }
        support.sort_unstable();

        // The union cone of both literals, in ascending (= topological)
        // node order.
        let mut cone: Vec<u32> = Vec::new();
        let mut in_cone: HashMap<u32, usize> = HashMap::new();
        let mut stack = vec![a.node(), b.node()];
        let mut marked: BTreeSet<u32> = stack.iter().copied().collect();
        while let Some(n) = stack.pop() {
            cone.push(n);
            if let NodeKind::And(x, y) = self.aig.node(n) {
                for c in [x.node(), y.node()] {
                    if marked.insert(c) {
                        stack.push(c);
                    }
                }
            }
        }
        cone.sort_unstable();
        for (pos, &n) in cone.iter().enumerate() {
            in_cone.insert(n, pos);
        }

        // Lanes 0..63 enumerate the first 6 support variables; higher
        // variables are swept by the chunk counter.
        const LANE_PATTERNS: [u64; 6] = [
            0xAAAA_AAAA_AAAA_AAAA,
            0xCCCC_CCCC_CCCC_CCCC,
            0xF0F0_F0F0_F0F0_F0F0,
            0xFF00_FF00_FF00_FF00,
            0xFFFF_0000_FFFF_0000,
            0xFFFF_FFFF_0000_0000,
        ];
        let high_vars = support.len().saturating_sub(6);
        let mut vals = vec![0u64; cone.len()];
        for chunk in 0..(1u64 << high_vars) {
            for (pos, &n) in cone.iter().enumerate() {
                vals[pos] = match self.aig.node(n) {
                    NodeKind::ConstFalse => 0,
                    NodeKind::Input(_) => {
                        let var = support
                            .iter()
                            .position(|&s| s == n)
                            .expect("support covers cone inputs");
                        if var < 6 {
                            LANE_PATTERNS[var]
                        } else if chunk >> (var - 6) & 1 == 1 {
                            !0
                        } else {
                            0
                        }
                    }
                    NodeKind::And(x, y) => {
                        let vx =
                            vals[in_cone[&x.node()]] ^ if x.is_complemented() { !0 } else { 0 };
                        let vy =
                            vals[in_cone[&y.node()]] ^ if y.is_complemented() { !0 } else { 0 };
                        vx & vy
                    }
                };
            }
            let va = vals[in_cone[&a.node()]] ^ if a.is_complemented() { !0 } else { 0 };
            let vb = vals[in_cone[&b.node()]] ^ if b.is_complemented() { !0 } else { 0 };
            // Mask off lanes beyond the enumerated assignment count.
            let live = if support.len() >= 6 {
                !0u64
            } else {
                (1u64 << (1 << support.len())) - 1
            };
            if (va ^ vb) & live != 0 {
                return false;
            }
        }
        true
    }

    /// Full verdict for one literal pair.
    fn comb_verdict(&mut self, a: Lit, b: Lit) -> Verdict {
        if a == b {
            return Verdict::Structural;
        }
        for r in 0..SIM_ROUNDS {
            if self.signature(a, r) != self.signature(b, r) {
                return Verdict::Unknown; // refuted candidate: residue
            }
        }
        if self.prove_pair(a, b) {
            Verdict::Swept
        } else {
            Verdict::Unknown
        }
    }
}

/// Attempts to certify each named output pair equivalent between
/// `reference` and `dut` without simulating a single stimulus vector.
///
/// Returns the set of output names proven equal. Soundness: a name is
/// only returned when its combinational function (over shared primary
/// inputs and shared-by-name FF states) is proven identical **and**
/// every flip-flop in its transitive fan-in closure on either side
/// exists on both sides under the same name with a proven next-state
/// function — the standard sequential induction.
pub fn prove_equivalent_outputs(
    reference: &Netlist,
    dut: &Netlist,
    lib: &Library,
    outputs: &[String],
    seed: u64,
) -> FraigOutcome {
    let mut b = Builder::new();
    let ref_side = b.lower(reference, lib, Side::Reference);
    let dut_side = b.lower(dut, lib, Side::Dut);
    let mut sweeper = Sweeper::new(b.aig, seed);

    // Prove next-state pairs for FFs present on both sides.
    let proven_ok = |v: &Verdict| matches!(v, Verdict::Structural | Verdict::Swept);
    let mut state_ok: BTreeMap<&String, Verdict> = BTreeMap::new();
    for (name, ref_d) in &ref_side.ff_next {
        if let Some(dut_d) = dut_side.ff_next.get(name) {
            state_ok.insert(name, sweeper.comb_verdict(*ref_d, *dut_d));
        }
    }
    // When every FF is matched by name with a proven next state, the
    // induction closes for *any* cone — no closure walks needed. Only
    // when some state pair is unproven do we pay per-output fan-in
    // walks to find which outputs it poisons.
    let all_states_closed = ref_side.ff_next.len() == dut_side.ff_next.len()
        && ref_side.ff_next.len() == state_ok.len()
        && state_ok.values().all(proven_ok);

    let mut outcome = FraigOutcome::default();
    for name in outputs {
        let (Some(&ra), Some(&da)) = (ref_side.outputs.get(name), dut_side.outputs.get(name))
        else {
            continue;
        };
        let verdict = sweeper.comb_verdict(ra, da);
        if verdict == Verdict::Unknown {
            continue;
        }
        // Sequential closure: every FF either side's cone depends on
        // must be matched and proven.
        let closed = all_states_closed || {
            let mut ffs = match ref_side.output_nets.get(name) {
                Some(&net) => sequential_closure_ffs(reference, lib, net),
                None => BTreeSet::new(),
            };
            if let Some(&net) = dut_side.output_nets.get(name) {
                ffs.extend(sequential_closure_ffs(dut, lib, net));
            }
            ffs.iter().all(|ff| state_ok.get(ff).is_some_and(proven_ok))
        };
        if !closed {
            continue;
        }
        outcome.proven.insert(name.clone());
        match verdict {
            Verdict::Structural => outcome.structural += 1,
            Verdict::Swept => outcome.swept += 1,
            Verdict::Unknown => unreachable!(),
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_cells::cell::VthClass;

    fn lib() -> Library {
        Library::industrial_130nm()
    }

    fn xor_pair(l: &Library, cell: &str) -> Netlist {
        let mut n = Netlist::new("x");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let z = n.add_output("z");
        let u = n.add_instance("u", l.find_id(cell).unwrap(), l);
        n.connect_by_name(u, "A", a, l).unwrap();
        n.connect_by_name(u, "B", b, l).unwrap();
        n.connect_by_name(u, "Z", z, l).unwrap();
        n
    }

    #[test]
    fn vth_swap_is_structurally_proven() {
        let l = lib();
        let a = xor_pair(&l, "XOR2_X1_L");
        let b = xor_pair(&l, "XOR2_X1_MV");
        let out = prove_equivalent_outputs(&a, &b, &l, &["z".to_owned()], 1);
        assert_eq!(out.proven.len(), 1);
        assert_eq!(out.structural, 1);
        assert_eq!(out.swept, 0);
    }

    #[test]
    fn wrong_function_is_never_proven() {
        let l = lib();
        let a = xor_pair(&l, "XOR2_X1_L");
        let b = xor_pair(&l, "XNR2_X1_L");
        let out = prove_equivalent_outputs(&a, &b, &l, &["z".to_owned()], 1);
        assert!(out.proven.is_empty());
    }

    #[test]
    fn restructured_logic_is_swept_equal() {
        let l = lib();
        // z = !(a & b) built two ways: one NAND vs AND + INV.
        let mut a = Netlist::new("nand");
        let (ia, ib) = (a.add_input("a"), a.add_input("b"));
        let za = a.add_output("z");
        let g = a.add_instance("g", l.find_id("ND2_X1_L").unwrap(), &l);
        a.connect_by_name(g, "A", ia, &l).unwrap();
        a.connect_by_name(g, "B", ib, &l).unwrap();
        a.connect_by_name(g, "Z", za, &l).unwrap();

        let mut b = Netlist::new("andinv");
        let (ja, jb) = (b.add_input("a"), b.add_input("b"));
        let zb = b.add_output("z");
        let w = b.add_net("w");
        let g1 = b.add_instance("g1", l.find_id("AN2_X1_L").unwrap(), &l);
        let g2 = b.add_instance("g2", l.find_id("INV_X1_L").unwrap(), &l);
        b.connect_by_name(g1, "A", ja, &l).unwrap();
        b.connect_by_name(g1, "B", jb, &l).unwrap();
        b.connect_by_name(g1, "Z", w, &l).unwrap();
        b.connect_by_name(g2, "A", w, &l).unwrap();
        b.connect_by_name(g2, "Z", zb, &l).unwrap();

        let out = prove_equivalent_outputs(&a, &b, &l, &["z".to_owned()], 1);
        assert_eq!(out.proven.len(), 1, "{out:?}");
    }

    #[test]
    fn sequential_cone_requires_matched_proven_state() {
        let l = lib();
        let build = |vth: VthClass, ff_name: &str| {
            let mut n = Netlist::new("seq");
            let a = n.add_input("a");
            let clk = n.add_clock("clk");
            let z = n.add_output("z");
            let w = n.add_net("w");
            let q = n.add_net("q");
            let g = n.add_instance(
                "g",
                l.find_id(&format!("ND2_X1_{}", vth.suffix())).unwrap(),
                &l,
            );
            let ff = n.add_instance(ff_name, l.find_id("DFF_X1_L").unwrap(), &l);
            let inv = n.add_instance("inv", l.find_id("INV_X1_L").unwrap(), &l);
            n.connect_by_name(g, "A", a, &l).unwrap();
            n.connect_by_name(g, "B", q, &l).unwrap();
            n.connect_by_name(g, "Z", w, &l).unwrap();
            n.connect_by_name(ff, "D", w, &l).unwrap();
            n.connect_by_name(ff, "CK", clk, &l).unwrap();
            n.connect_by_name(ff, "Q", q, &l).unwrap();
            n.connect_by_name(inv, "A", q, &l).unwrap();
            n.connect_by_name(inv, "Z", z, &l).unwrap();
            n
        };
        // Same FF name, Vth-swapped logic: proven by induction.
        let r = build(VthClass::Low, "ff");
        let d = build(VthClass::MtVgnd, "ff");
        let out = prove_equivalent_outputs(&r, &d, &l, &["z".to_owned()], 1);
        assert_eq!(out.proven.len(), 1, "{out:?}");
        // Renamed FF: state cannot be matched, nothing is certified.
        let d2 = build(VthClass::Low, "ff_renamed");
        let out2 = prove_equivalent_outputs(&r, &d2, &l, &["z".to_owned()], 1);
        assert!(out2.proven.is_empty());
    }

    #[test]
    fn wide_support_cones_are_left_to_simulation() {
        let l = lib();
        // A 16-input XOR tree exceeds MAX_PROOF_SUPPORT, and a
        // restructured variant is sim-equal but unprovable: it must
        // stay in the residue (not proven) rather than be mis-certified.
        let build = |name: &str, rotate: bool| {
            let mut n = Netlist::new(name);
            let mut nets: Vec<NetId> = (0..16).map(|i| n.add_input(&format!("i{i}"))).collect();
            if rotate {
                nets.rotate_left(1);
            }
            let z = n.add_output("z");
            let xor = l.find_id("XOR2_X1_L").unwrap();
            let mut layer = 0;
            while nets.len() > 1 {
                let mut next = Vec::new();
                for (k, pair) in nets.chunks(2).enumerate() {
                    let out = if nets.len() == 2 {
                        z
                    } else {
                        n.add_net(&format!("w{layer}_{k}"))
                    };
                    let u = n.add_instance(&format!("u{layer}_{k}"), xor, &l);
                    n.connect_by_name(u, "A", pair[0], &l).unwrap();
                    n.connect_by_name(u, "B", pair[1], &l).unwrap();
                    n.connect_by_name(u, "Z", out, &l).unwrap();
                    next.push(out);
                }
                nets = next;
                layer += 1;
            }
            n
        };
        let a = build("t1", false);
        let b = build("t2", true);
        let out = prove_equivalent_outputs(&a, &b, &l, &["z".to_owned()], 1);
        // XOR trees over rotated inputs are genuinely equal, but the
        // 16-wide support is past the proof ceiling.
        assert!(out.proven.is_empty(), "{out:?}");
    }
}
