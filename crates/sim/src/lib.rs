//! # smt-sim
//!
//! Three-valued (`0/1/X`) levelized logic simulation over
//! [`smt_netlist::netlist::Netlist`], with:
//!
//! * **standby semantics** for MTCMOS: when the circuit is power-gated
//!   (`MTE` low), MT-cells drive `X` (their virtual ground floats) unless an
//!   output holder pins the net to `1` — exactly the behaviour the paper's
//!   output-holder rule exists to guarantee;
//! * **word-parallel simulation** ([`wordsim`]): 64 stimulus vectors per
//!   net packed into a [`wordsim::Word`] (`u64` value lanes plus a paired
//!   X mask), evaluated with bitwise truth-table expansion;
//! * **equivalence checking** between two netlists (used by the flow to
//!   verify that every transform of Fig. 4 preserves function in active
//!   mode): an AIG fraiging fast path ([`fraig`]) certifies identical
//!   cones structurally, and only the residue is simulated — 64 vectors
//!   per pass, fanned out over fan-in cone partitions;
//! * **toggle-rate estimation** for the dynamic-power model.
//!
//! ```
//! use smt_cells::library::Library;
//! use smt_netlist::netlist::Netlist;
//! use smt_sim::{Simulator, Value};
//!
//! let lib = Library::industrial_130nm();
//! let mut n = Netlist::new("inv");
//! let a = n.add_input("a");
//! let z = n.add_output("z");
//! let u = n.add_instance("u", lib.find_id("INV_X1_L").unwrap(), &lib);
//! n.connect_by_name(u, "A", a, &lib).unwrap();
//! n.connect_by_name(u, "Z", z, &lib).unwrap();
//!
//! let mut sim = Simulator::new(&n, &lib).unwrap();
//! sim.set_input(a, Value::One);
//! sim.propagate(&n, &lib);
//! assert_eq!(sim.value(z), Value::Zero);
//! ```

pub mod equiv;
pub mod fraig;
pub mod sim;
pub mod toggle;
pub mod vcd;
pub mod wordsim;

pub use equiv::{
    check_equivalence, check_equivalence_cached, check_equivalence_scalar, check_equivalence_with,
    EquivCache, EquivOptions, EquivReport, Mismatch,
};
pub use fraig::{prove_equivalent_outputs, FraigOutcome};
pub use sim::{Mode, Simulator, Value};
pub use toggle::{estimate_toggles, ToggleStats};
pub use vcd::WaveRecorder;
pub use wordsim::{eval_tt_word, Word, WordSimulator};
