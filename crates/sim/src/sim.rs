//! The levelized three-valued simulator.

use smt_cells::cell::{CellRole, TruthTable};
use smt_cells::library::Library;
use smt_netlist::graph::{topo_order, CombinationalCycle, TopoOrder};
use smt_netlist::netlist::{InstId, NetId, Netlist};

/// A three-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Value {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / floating.
    #[default]
    X,
}

impl Value {
    /// From a boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Value::One
        } else {
            Value::Zero
        }
    }

    /// To a boolean, when known.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Value::Zero => Some(false),
            Value::One => Some(true),
            Value::X => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Value::Zero => "0",
            Value::One => "1",
            Value::X => "X",
        })
    }
}

/// Operating mode of the power-gated design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// `MTE` asserted: footer switches on, MT-cells behave as plain logic.
    #[default]
    Active,
    /// `MTE` deasserted: footer switches off. MT-cell outputs float (`X`)
    /// unless an output holder pins them to `1`.
    Standby,
}

/// The simulator: per-net values plus per-FF state.
#[derive(Debug, Clone)]
pub struct Simulator {
    topo: TopoOrder,
    values: Vec<Value>,
    ff_state: Vec<Value>,
    /// `has_holder[net]`: an output holder is attached to the net.
    has_holder: Vec<bool>,
    mode: Mode,
}

impl Simulator {
    /// Builds a simulator for a netlist. All nets start at `X`, all FFs at
    /// `X`.
    ///
    /// # Errors
    ///
    /// Propagates [`CombinationalCycle`] from levelisation.
    pub fn new(netlist: &Netlist, lib: &Library) -> Result<Self, CombinationalCycle> {
        let topo = topo_order(netlist, lib)?;
        let mut has_holder = vec![false; netlist.num_nets()];
        for (_, inst) in netlist.instances() {
            let cell = lib.cell(inst.cell);
            if cell.role == CellRole::Holder {
                // Pin `A` attaches to the held net.
                if let Some(pin) = cell.pin_index("A") {
                    if let Some(net) = inst.net_on(pin) {
                        has_holder[net.index()] = true;
                    }
                }
            }
        }
        Ok(Simulator {
            topo,
            values: vec![Value::X; netlist.num_nets()],
            ff_state: vec![Value::X; netlist.inst_capacity()],
            has_holder,
            mode: Mode::Active,
        })
    }

    /// Sets the operating mode. Takes effect on the next
    /// [`Simulator::propagate`].
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Drives a primary-input net.
    pub fn set_input(&mut self, net: NetId, value: Value) {
        self.values[net.index()] = value;
    }

    /// Reads a net value.
    pub fn value(&self, net: NetId) -> Value {
        self.values[net.index()]
    }

    /// Forces a flip-flop's internal state (e.g. reset modelling in tests).
    pub fn set_ff_state(&mut self, ff: InstId, value: Value) {
        self.ff_state[ff.index()] = value;
    }

    /// Evaluates one gate from net values.
    fn eval_gate(&self, netlist: &Netlist, lib: &Library, id: InstId) -> Value {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        let Some(tt) = cell.function else {
            return Value::X;
        };
        let pins = cell.logic_input_pins();
        let mut known = 0u32;
        let mut x_mask = 0u32;
        for (i, &pin) in pins.iter().enumerate() {
            match inst.net_on(pin).map(|n| self.values[n.index()]) {
                Some(Value::One) => known |= 1 << i,
                Some(Value::Zero) => {}
                Some(Value::X) | None => x_mask |= 1 << i,
            }
        }
        eval_tt_with_x(tt, known, x_mask)
    }

    /// Propagates values through the combinational core. FF outputs come
    /// from stored state; call [`Simulator::clock_edge`] to advance state.
    pub fn propagate(&mut self, netlist: &Netlist, lib: &Library) {
        // FF Q outputs first (sources).
        for (id, inst) in netlist.instances() {
            let cell = lib.cell(inst.cell);
            if cell.is_sequential() {
                if let Some(q) = cell.output_pin() {
                    if let Some(net) = inst.net_on(q) {
                        self.values[net.index()] = self.ff_state[id.index()];
                    }
                }
            }
        }
        let order = self.topo.order.clone();
        for id in order {
            let out_value = {
                let inst = netlist.inst(id);
                let cell = lib.cell(inst.cell);
                if self.mode == Mode::Standby && cell.is_mt() {
                    // Conventional MT-cells (Fig. 1(a)) embed their own
                    // output holder: the output is pinned to 1. Improved
                    // MT-cells float unless a separate holder is attached
                    // (handled below).
                    if cell.vth == smt_cells::cell::VthClass::MtEmbedded {
                        Value::One
                    } else {
                        Value::X
                    }
                } else {
                    self.eval_gate(netlist, lib, id)
                }
            };
            let inst = netlist.inst(id);
            let cell = lib.cell(inst.cell);
            if let Some(op) = cell.output_pin() {
                if let Some(net) = inst.net_on(op) {
                    let mut v = out_value;
                    // Output holder: in standby, a held floating net is
                    // pinned to 1 (the paper's holder drives 1).
                    if self.mode == Mode::Standby && v == Value::X && self.has_holder[net.index()] {
                        v = Value::One;
                    }
                    self.values[net.index()] = v;
                }
            }
        }
    }

    /// Rising clock edge: every FF samples its `D` input, then values are
    /// re-propagated.
    pub fn clock_edge(&mut self, netlist: &Netlist, lib: &Library) {
        let mut next: Vec<(InstId, Value)> = Vec::new();
        for (id, inst) in netlist.instances() {
            let cell = lib.cell(inst.cell);
            if !cell.is_sequential() {
                continue;
            }
            let d_pin = cell.pin_index("D").expect("DFF has D");
            let v = inst
                .net_on(d_pin)
                .map(|n| self.values[n.index()])
                .unwrap_or(Value::X);
            next.push((id, v));
        }
        for (id, v) in next {
            self.ff_state[id.index()] = v;
        }
        self.propagate(netlist, lib);
    }
}

/// Evaluates a truth table where `x_mask` marks unknown inputs: the output
/// is known only if it agrees across all assignments of the unknowns.
/// (Crate-visible so the word-parallel simulator's differential tests can
/// pin lane-exact agreement against it.)
pub(crate) fn eval_tt_with_x(tt: TruthTable, known: u32, x_mask: u32) -> Value {
    if x_mask == 0 {
        return Value::from_bool(tt.eval(known));
    }
    let n = tt.n_inputs as u32;
    let x_bits: Vec<u32> = (0..n).filter(|b| x_mask >> b & 1 == 1).collect();
    let mut first: Option<bool> = None;
    for combo in 0..(1u32 << x_bits.len()) {
        let mut state = known;
        for (i, &b) in x_bits.iter().enumerate() {
            if combo >> i & 1 == 1 {
                state |= 1 << b;
            }
        }
        let v = tt.eval(state);
        match first {
            None => first = Some(v),
            Some(prev) if prev != v => return Value::X,
            Some(_) => {}
        }
    }
    Value::from_bool(first.expect("at least one combination"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_cells::cell::CellKind;

    fn lib() -> Library {
        Library::industrial_130nm()
    }

    #[test]
    fn x_aware_truth_table_eval() {
        let nand = TruthTable::of_kind(CellKind::Nand2).unwrap();
        // One input 0 -> output 1 regardless of the X.
        assert_eq!(eval_tt_with_x(nand, 0b00, 0b10), Value::One);
        // One input 1, other X -> output X.
        assert_eq!(eval_tt_with_x(nand, 0b01, 0b10), Value::X);
        // No X.
        assert_eq!(eval_tt_with_x(nand, 0b11, 0), Value::Zero);
    }

    fn nand_inv(lib: &Library) -> (Netlist, NetId, NetId, NetId) {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let z = n.add_output("z");
        let w = n.add_net("w");
        let u1 = n.add_instance("u1", lib.find_id("ND2_X1_L").unwrap(), lib);
        let u2 = n.add_instance("u2", lib.find_id("INV_X1_L").unwrap(), lib);
        n.connect_by_name(u1, "A", a, lib).unwrap();
        n.connect_by_name(u1, "B", b, lib).unwrap();
        n.connect_by_name(u1, "Z", w, lib).unwrap();
        n.connect_by_name(u2, "A", w, lib).unwrap();
        n.connect_by_name(u2, "Z", z, lib).unwrap();
        (n, a, b, z)
    }

    #[test]
    fn combinational_propagation() {
        let lib = lib();
        let (n, a, b, z) = nand_inv(&lib);
        let mut sim = Simulator::new(&n, &lib).unwrap();
        for (va, vb, expect) in [
            (Value::Zero, Value::Zero, Value::Zero), // nand=1, inv=0
            (Value::One, Value::One, Value::One),    // nand=0, inv=1
            (Value::One, Value::Zero, Value::Zero),
        ] {
            sim.set_input(a, va);
            sim.set_input(b, vb);
            sim.propagate(&n, &lib);
            assert_eq!(sim.value(z), expect, "a={va} b={vb}");
        }
    }

    #[test]
    fn x_propagates_through_gates() {
        let lib = lib();
        let (n, a, b, z) = nand_inv(&lib);
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.set_input(a, Value::One);
        sim.set_input(b, Value::X);
        sim.propagate(&n, &lib);
        assert_eq!(sim.value(z), Value::X);
        // Controlling value masks the X.
        sim.set_input(a, Value::Zero);
        sim.propagate(&n, &lib);
        assert_eq!(sim.value(z), Value::Zero);
    }

    #[test]
    fn dff_samples_on_clock_edge() {
        let lib = lib();
        let mut n = Netlist::new("ff");
        let d = n.add_input("d");
        let clk = n.add_clock("clk");
        let q = n.add_output("q");
        let ff = n.add_instance("ff", lib.find_id("DFF_X1_L").unwrap(), &lib);
        n.connect_by_name(ff, "D", d, &lib).unwrap();
        n.connect_by_name(ff, "CK", clk, &lib).unwrap();
        n.connect_by_name(ff, "Q", q, &lib).unwrap();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.set_input(d, Value::One);
        sim.propagate(&n, &lib);
        assert_eq!(sim.value(q), Value::X, "before any edge, state unknown");
        sim.clock_edge(&n, &lib);
        assert_eq!(sim.value(q), Value::One);
        sim.set_input(d, Value::Zero);
        sim.clock_edge(&n, &lib);
        assert_eq!(sim.value(q), Value::Zero);
    }

    #[test]
    fn standby_floats_mt_outputs_and_holder_pins_to_one() {
        let lib = lib();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let z = n.add_output("z");
        let z2 = n.add_output("z2");
        let w = n.add_net("w");
        // MT inverter drives w; a high-Vth inverter consumes it -> needs a
        // holder per the paper's rule; also an MT inverter u3 drives z2
        // (no holder: output to port, but we attach one to show pinning).
        let u1 = n.add_instance("u1", lib.find_id("INV_X1_MV").unwrap(), &lib);
        let u2 = n.add_instance("u2", lib.find_id("INV_X1_H").unwrap(), &lib);
        let u3 = n.add_instance("u3", lib.find_id("INV_X1_MV").unwrap(), &lib);
        n.connect_by_name(u1, "A", a, &lib).unwrap();
        n.connect_by_name(u1, "Z", w, &lib).unwrap();
        n.connect_by_name(u2, "A", w, &lib).unwrap();
        n.connect_by_name(u2, "Z", z, &lib).unwrap();
        n.connect_by_name(u3, "A", a, &lib).unwrap();
        n.connect_by_name(u3, "Z", z2, &lib).unwrap();
        // Holder on w.
        let mte = n.add_input("mte");
        let hold = n.add_instance("h0", lib.holder(), &lib);
        n.connect_by_name(hold, "A", w, &lib).unwrap();
        n.connect_by_name(hold, "MTE", mte, &lib).unwrap();

        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.set_input(a, Value::Zero);
        sim.set_input(mte, Value::One);
        sim.propagate(&n, &lib);
        assert_eq!(sim.value(z), Value::Zero, "active mode works normally");
        assert_eq!(sim.value(z2), Value::One);

        sim.set_mode(Mode::Standby);
        sim.propagate(&n, &lib);
        // w is held at 1 -> high-Vth inverter sees 1, outputs 0: no float.
        assert_eq!(sim.value(z), Value::Zero);
        // u3's output has no holder -> floats.
        assert_eq!(sim.value(z2), Value::X);
    }

    #[test]
    fn values_display() {
        assert_eq!(Value::One.to_string(), "1");
        assert_eq!(Value::X.to_string(), "X");
        assert_eq!(Value::from_bool(false), Value::Zero);
        assert_eq!(Value::One.to_bool(), Some(true));
        assert_eq!(Value::X.to_bool(), None);
    }
}
