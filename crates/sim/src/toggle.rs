//! Toggle-rate estimation by random simulation.
//!
//! Dynamic power and the MTCMOS *simultaneous switching current* both
//! depend on how often each net toggles. We drive the circuit with random
//! vectors for a number of clock cycles and count `0↔1` transitions per
//! net (transitions into or out of `X` are ignored).

use crate::sim::{Simulator, Value};
use smt_base::SplitMix64;
use smt_cells::library::Library;
use smt_netlist::graph::CombinationalCycle;
use smt_netlist::netlist::{Netlist, PortDir};

/// Per-net toggle statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ToggleStats {
    /// Cycles simulated.
    pub cycles: usize,
    /// `toggles[net]` = number of observed 0↔1 transitions.
    pub toggles: Vec<u32>,
}

impl ToggleStats {
    /// Activity factor of a net: expected toggles per clock cycle.
    pub fn activity(&self, net: smt_netlist::netlist::NetId) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.toggles[net.index()] as f64 / self.cycles as f64
    }

    /// Mean activity over all nets.
    pub fn mean_activity(&self) -> f64 {
        if self.toggles.is_empty() || self.cycles == 0 {
            return 0.0;
        }
        self.toggles.iter().map(|&t| t as f64).sum::<f64>()
            / (self.toggles.len() * self.cycles) as f64
    }
}

/// Simulates `cycles` random cycles and collects per-net toggle counts.
///
/// # Errors
///
/// Propagates [`CombinationalCycle`] from simulator construction.
pub fn estimate_toggles(
    netlist: &Netlist,
    lib: &Library,
    cycles: usize,
    seed: u64,
) -> Result<ToggleStats, CombinationalCycle> {
    let mut sim = Simulator::new(netlist, lib)?;
    let inputs: Vec<_> = netlist
        .ports()
        .filter(|(_, p)| p.dir == PortDir::Input && !p.is_clock)
        .map(|(_, p)| p.net)
        .collect();
    let nets: Vec<_> = netlist.nets().map(|(id, _)| id).collect();
    let mut rng = SplitMix64::new(seed);
    let mut prev: Vec<Value> = vec![Value::X; netlist.num_nets()];
    let mut toggles = vec![0u32; netlist.num_nets()];

    // Warm up: two cycles to flush X from state.
    for _ in 0..2 {
        for &i in &inputs {
            sim.set_input(i, Value::from_bool(rng.chance(0.5)));
        }
        sim.propagate(netlist, lib);
        sim.clock_edge(netlist, lib);
    }
    for &net in &nets {
        prev[net.index()] = sim.value(net);
    }

    for _ in 0..cycles {
        for &i in &inputs {
            sim.set_input(i, Value::from_bool(rng.chance(0.5)));
        }
        sim.propagate(netlist, lib);
        sim.clock_edge(netlist, lib);
        for &net in &nets {
            let v = sim.value(net);
            let p = prev[net.index()];
            if let (Some(a), Some(b)) = (p.to_bool(), v.to_bool()) {
                if a != b {
                    toggles[net.index()] += 1;
                }
            }
            prev[net.index()] = v;
        }
    }
    Ok(ToggleStats { cycles, toggles })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_chain_tracks_input_activity() {
        let lib = Library::industrial_130nm();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let z = n.add_output("z");
        let u = n.add_instance("u", lib.find_id("INV_X1_L").unwrap(), &lib);
        n.connect_by_name(u, "A", a, &lib).unwrap();
        n.connect_by_name(u, "Z", z, &lib).unwrap();
        let stats = estimate_toggles(&n, &lib, 256, 3).unwrap();
        let act_in = stats.activity(a);
        let act_out = stats.activity(z);
        // Inverter output toggles exactly when its input does.
        assert!((act_in - act_out).abs() < 1e-9);
        // Random input toggles roughly half the cycles.
        assert!((0.3..0.7).contains(&act_in), "activity = {act_in}");
        assert!(stats.mean_activity() > 0.0);
    }

    #[test]
    fn constant_cold_circuit_has_zero_activity() {
        let lib = Library::industrial_130nm();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let z = n.add_output("z");
        let u1 = n.add_instance("u1", lib.find_id("XOR2_X1_L").unwrap(), &lib);
        // XOR(a, a) == 0 constantly.
        n.connect_by_name(u1, "A", a, &lib).unwrap();
        n.connect_by_name(u1, "B", a, &lib).unwrap();
        n.connect_by_name(u1, "Z", z, &lib).unwrap();
        let stats = estimate_toggles(&n, &lib, 128, 5).unwrap();
        assert_eq!(stats.activity(z), 0.0);
    }
}
