//! VCD-lite waveform dumping.
//!
//! Records selected nets over simulation steps and writes a Value Change
//! Dump readable by GTKWave & friends — handy for debugging the standby
//! entry/exit behaviour of gated designs (watch the held nets stay at 1
//! while ungated outputs float to `x`).

use crate::sim::{Simulator, Value};
use smt_netlist::netlist::{NetId, Netlist};
use std::fmt::Write as _;

/// A waveform recorder over a fixed set of nets.
#[derive(Debug, Clone)]
pub struct WaveRecorder {
    nets: Vec<(NetId, String)>,
    /// `frames[t][k]` = value of net `k` at step `t`.
    frames: Vec<Vec<Value>>,
}

impl WaveRecorder {
    /// Records the given nets (name taken from the netlist).
    pub fn new(netlist: &Netlist, nets: &[NetId]) -> Self {
        WaveRecorder {
            nets: nets
                .iter()
                .map(|&n| (n, netlist.net(n).name.clone()))
                .collect(),
            frames: Vec::new(),
        }
    }

    /// Records every port of the design (the usual debug view).
    pub fn ports(netlist: &Netlist) -> Self {
        let nets: Vec<NetId> = netlist.ports().map(|(_, p)| p.net).collect();
        Self::new(netlist, &nets)
    }

    /// Captures the current simulator state as one time step.
    pub fn sample(&mut self, sim: &Simulator) {
        self.frames
            .push(self.nets.iter().map(|&(n, _)| sim.value(n)).collect());
    }

    /// Number of captured steps.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Renders the capture as VCD text. `timescale_ns` is the nominal time
    /// per sample.
    pub fn to_vcd(&self, design: &str, timescale_ns: u32) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date reproduction run $end");
        let _ = writeln!(out, "$version selective-mt smt-sim $end");
        let _ = writeln!(out, "$timescale {timescale_ns}ns $end");
        let _ = writeln!(out, "$scope module {design} $end");
        // VCD id codes: printable ASCII starting at '!'.
        let code = |k: usize| -> String {
            let mut k = k;
            let mut s = String::new();
            loop {
                s.push((b'!' + (k % 94) as u8) as char);
                k /= 94;
                if k == 0 {
                    break;
                }
            }
            s
        };
        for (k, (_, name)) in self.nets.iter().enumerate() {
            // Escape brackets for VCD identifiers.
            let clean = name.replace(['[', ']'], "_");
            let _ = writeln!(out, "$var wire 1 {} {} $end", code(k), clean);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        let ch = |v: Value| match v {
            Value::Zero => '0',
            Value::One => '1',
            Value::X => 'x',
        };
        let mut last: Vec<Option<Value>> = vec![None; self.nets.len()];
        for (t, frame) in self.frames.iter().enumerate() {
            let mut changes = String::new();
            for (k, &v) in frame.iter().enumerate() {
                if last[k] != Some(v) {
                    let _ = writeln!(changes, "{}{}", ch(v), code(k));
                    last[k] = Some(v);
                }
            }
            if !changes.is_empty() || t == 0 {
                let _ = writeln!(out, "#{t}");
                out.push_str(&changes);
            }
        }
        let _ = writeln!(out, "#{}", self.frames.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_cells::library::Library;

    #[test]
    fn vcd_records_value_changes_only() {
        let lib = Library::industrial_130nm();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let z = n.add_output("z");
        let u = n.add_instance("u", lib.find_id("INV_X1_L").unwrap(), &lib);
        n.connect_by_name(u, "A", a, &lib).unwrap();
        n.connect_by_name(u, "Z", z, &lib).unwrap();

        let mut sim = Simulator::new(&n, &lib).unwrap();
        let mut rec = WaveRecorder::ports(&n);
        for v in [Value::Zero, Value::Zero, Value::One, Value::X] {
            sim.set_input(a, v);
            sim.propagate(&n, &lib);
            rec.sample(&sim);
        }
        assert_eq!(rec.len(), 4);
        let vcd = rec.to_vcd("t", 1);
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$var wire 1 ! a $end"));
        // Initial values at #0, change at #2 (0->1), x at #3; no entry for
        // the unchanged step #1.
        assert!(vcd.contains("#0\n"));
        assert!(!vcd.contains("#1\n"), "{vcd}");
        assert!(vcd.contains("#2\n"));
        assert!(vcd.contains("x!"), "{vcd}");
    }

    #[test]
    fn bracketed_names_are_escaped() {
        let lib = Library::industrial_130nm();
        let mut n = Netlist::new("t");
        let a = n.add_input("a[0]");
        let _ = a;
        let rec = WaveRecorder::ports(&n);
        let vcd = rec.to_vcd("t", 1);
        assert!(vcd.contains("a_0_"));
        assert!(!vcd.contains("a[0]"));
        let _ = lib;
    }
}
