//! The 64-wide word-parallel three-valued simulator.
//!
//! [`WordSimulator`] packs 64 independent stimulus vectors per net into
//! one [`Word`] — a `u64` of lane values paired with a `u64` X-mask —
//! and evaluates every gate for all 64 lanes at once by expanding its
//! truth table over per-minterm lane masks. One propagate pass does the
//! work of 64 scalar [`Simulator`](crate::sim::Simulator) passes, and
//! the result is bit-identical per lane: lane `l` of every net equals
//! what a scalar simulator driven with lane `l`'s values would compute
//! (`tests` below and the differential tests in `equiv` pin this).
//!
//! The simulator also supports *scoped* evaluation: restricted to the
//! closure of instances feeding a set of outputs, it skips dead and
//! out-of-cone logic entirely — the basis of the cone-partitioned
//! parallel equivalence checker in [`crate::equiv`].

use crate::sim::{Mode, Value};
use smt_cells::cell::{CellRole, TruthTable, VthClass};
use smt_cells::library::Library;
use smt_netlist::graph::{topo_order, CombinationalCycle};
use smt_netlist::netlist::{InstId, NetId, Netlist};

/// 64 three-valued samples of one net: lane `l` holds value bit
/// `ones >> l & 1`, unknown when `xs >> l & 1` is set.
///
/// Canonical form: `ones & xs == 0` (an X lane's value bit is 0), so
/// two words are lane-wise equal exactly when they are `==`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Word {
    /// Lanes whose value is known 1.
    pub ones: u64,
    /// Lanes whose value is unknown.
    pub xs: u64,
}

impl Word {
    /// All 64 lanes unknown (the cold-start value of every net).
    pub const ALL_X: Word = Word { ones: 0, xs: !0 };
    /// All 64 lanes known 0.
    pub const ZEROS: Word = Word { ones: 0, xs: 0 };
    /// All 64 lanes known 1.
    pub const ONES: Word = Word { ones: !0, xs: 0 };

    /// A fully known word from a bit pattern (lane `l` = bit `l`).
    pub fn from_bits(bits: u64) -> Word {
        Word { ones: bits, xs: 0 }
    }

    /// The same [`Value`] in every lane.
    pub fn splat(v: Value) -> Word {
        match v {
            Value::Zero => Word::ZEROS,
            Value::One => Word::ONES,
            Value::X => Word::ALL_X,
        }
    }

    /// Reads one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn get(self, lane: usize) -> Value {
        assert!(lane < 64, "word lane out of range");
        if self.xs >> lane & 1 == 1 {
            Value::X
        } else if self.ones >> lane & 1 == 1 {
            Value::One
        } else {
            Value::Zero
        }
    }

    /// Writes one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn set(&mut self, lane: usize, v: Value) {
        assert!(lane < 64, "word lane out of range");
        let bit = 1u64 << lane;
        self.ones &= !bit;
        self.xs &= !bit;
        match v {
            Value::One => self.ones |= bit,
            Value::X => self.xs |= bit,
            Value::Zero => {}
        }
    }

    /// Lanes whose value is known (not X).
    pub fn known(self) -> u64 {
        !self.xs
    }
}

/// Evaluates a truth table over word-parallel inputs.
///
/// For each input `i`, `can1[i]` marks lanes that can take value 1 and
/// `can0[i]` lanes that can take value 0 (an X lane can take both). A
/// minterm `s` is *possible* in a lane when every input can take its
/// bit of `s`; the output is known in a lane only when every possible
/// minterm agrees — the word-parallel transcription of the scalar
/// `eval_tt_with_x` rule, 64 lanes per pass.
pub fn eval_tt_word(tt: TruthTable, inputs: &[Word]) -> Word {
    let n = tt.n_inputs as usize;
    debug_assert!(inputs.len() >= n);
    let mut can_out1 = 0u64;
    let mut can_out0 = 0u64;
    for s in 0..(1u32 << n) {
        let mut possible = !0u64;
        for (i, w) in inputs.iter().take(n).enumerate() {
            possible &= if s >> i & 1 == 1 {
                w.ones | w.xs
            } else {
                !w.ones
            };
        }
        if tt.eval(s) {
            can_out1 |= possible;
        } else {
            can_out0 |= possible;
        }
    }
    Word {
        ones: can_out1 & !can_out0,
        xs: can_out1 & can_out0,
    }
}

/// The word-parallel simulator: per-net 64-lane values plus per-FF
/// 64-lane state. Mirrors [`Simulator`](crate::sim::Simulator) exactly,
/// including standby MT/holder semantics, lane by lane.
#[derive(Debug, Clone)]
pub struct WordSimulator {
    /// Combinational instances to evaluate, in dependency order
    /// (the full topo order, or the scoped subset).
    order: Vec<InstId>,
    /// Sequential instances to source/sample (full set, or scoped).
    ffs: Vec<InstId>,
    values: Vec<Word>,
    ff_state: Vec<Word>,
    has_holder: Vec<bool>,
    mode: Mode,
}

impl WordSimulator {
    /// Builds a simulator over the whole netlist. All nets and FFs
    /// start at X in every lane.
    ///
    /// # Errors
    ///
    /// Propagates [`CombinationalCycle`] from levelisation.
    pub fn new(netlist: &Netlist, lib: &Library) -> Result<Self, CombinationalCycle> {
        Self::build(netlist, lib, None)
    }

    /// Builds a simulator restricted to `scope`: only combinational
    /// instances and FFs in the set are evaluated. When `scope` is the
    /// dependency closure of some outputs, every net those outputs can
    /// observe gets exactly the values a full simulation would give —
    /// dead and out-of-cone logic is simply never touched.
    ///
    /// # Errors
    ///
    /// Propagates [`CombinationalCycle`] from levelisation (of the
    /// whole netlist, so scoping never masks a cycle elsewhere).
    pub fn with_scope(
        netlist: &Netlist,
        lib: &Library,
        scope: &[InstId],
    ) -> Result<Self, CombinationalCycle> {
        let mut in_scope = vec![false; netlist.inst_capacity()];
        for id in scope {
            in_scope[id.index()] = true;
        }
        Self::build(netlist, lib, Some(&in_scope))
    }

    fn build(
        netlist: &Netlist,
        lib: &Library,
        in_scope: Option<&[bool]>,
    ) -> Result<Self, CombinationalCycle> {
        let topo = topo_order(netlist, lib)?;
        let keep = |id: InstId| in_scope.map_or(true, |s| s[id.index()]);
        let order: Vec<InstId> = topo.order.iter().copied().filter(|&id| keep(id)).collect();
        let ffs: Vec<InstId> = netlist
            .instances()
            .filter(|(id, inst)| lib.cell(inst.cell).is_sequential() && keep(*id))
            .map(|(id, _)| id)
            .collect();
        let mut has_holder = vec![false; netlist.num_nets()];
        for (_, inst) in netlist.instances() {
            let cell = lib.cell(inst.cell);
            if cell.role == CellRole::Holder {
                if let Some(pin) = cell.pin_index("A") {
                    if let Some(net) = inst.net_on(pin) {
                        has_holder[net.index()] = true;
                    }
                }
            }
        }
        Ok(WordSimulator {
            order,
            ffs,
            values: vec![Word::ALL_X; netlist.num_nets()],
            ff_state: vec![Word::ALL_X; netlist.inst_capacity()],
            has_holder,
            mode: Mode::Active,
        })
    }

    /// Sets the operating mode. Takes effect on the next
    /// [`WordSimulator::propagate`].
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Drives a primary-input net in all 64 lanes.
    pub fn set_input(&mut self, net: NetId, value: Word) {
        self.values[net.index()] = value;
    }

    /// Reads a net's 64-lane value.
    pub fn value(&self, net: NetId) -> Word {
        self.values[net.index()]
    }

    /// Forces a flip-flop's internal state in all 64 lanes.
    pub fn set_ff_state(&mut self, ff: InstId, value: Word) {
        self.ff_state[ff.index()] = value;
    }

    /// Evaluates one gate word-parallel from net values.
    fn eval_gate(&self, netlist: &Netlist, lib: &Library, id: InstId) -> Word {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        let Some(tt) = cell.function else {
            return Word::ALL_X;
        };
        let pins = cell.logic_input_pins();
        let mut inputs = [Word::ALL_X; 4];
        for (i, &pin) in pins.iter().enumerate() {
            inputs[i] = inst
                .net_on(pin)
                .map_or(Word::ALL_X, |n| self.values[n.index()]);
        }
        eval_tt_word(tt, &inputs)
    }

    /// Propagates values through the (scoped) combinational core. FF
    /// outputs come from stored state; call
    /// [`WordSimulator::clock_edge`] to advance state.
    pub fn propagate(&mut self, netlist: &Netlist, lib: &Library) {
        for &id in &self.ffs {
            let inst = netlist.inst(id);
            let cell = lib.cell(inst.cell);
            if let Some(q) = cell.output_pin() {
                if let Some(net) = inst.net_on(q) {
                    self.values[net.index()] = self.ff_state[id.index()];
                }
            }
        }
        for i in 0..self.order.len() {
            let id = self.order[i];
            let inst = netlist.inst(id);
            let cell = lib.cell(inst.cell);
            let out_value = if self.mode == Mode::Standby && cell.is_mt() {
                // Same rule as the scalar simulator: conventional
                // MT-cells embed their own holder (output pinned to 1);
                // improved MT-cells float unless a holder is attached.
                if cell.vth == VthClass::MtEmbedded {
                    Word::ONES
                } else {
                    Word::ALL_X
                }
            } else {
                self.eval_gate(netlist, lib, id)
            };
            if let Some(op) = cell.output_pin() {
                if let Some(net) = inst.net_on(op) {
                    let mut v = out_value;
                    // Output holder: in standby, held floating lanes are
                    // pinned to 1.
                    if self.mode == Mode::Standby && self.has_holder[net.index()] {
                        v.ones |= v.xs;
                        v.xs = 0;
                    }
                    self.values[net.index()] = v;
                }
            }
        }
    }

    /// Rising clock edge: every (scoped) FF samples its `D` input, then
    /// values are re-propagated.
    pub fn clock_edge(&mut self, netlist: &Netlist, lib: &Library) {
        for i in 0..self.ffs.len() {
            let id = self.ffs[i];
            let inst = netlist.inst(id);
            let cell = lib.cell(inst.cell);
            let d_pin = cell.pin_index("D").expect("DFF has D");
            let v = inst
                .net_on(d_pin)
                .map_or(Word::ALL_X, |n| self.values[n.index()]);
            self.ff_state[id.index()] = v;
        }
        self.propagate(netlist, lib);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use smt_base::SplitMix64;
    use smt_cells::cell::CellKind;
    use smt_netlist::netlist::PortDir;

    fn lib() -> Library {
        Library::industrial_130nm()
    }

    #[test]
    fn word_lane_accessors_roundtrip() {
        let mut w = Word::ALL_X;
        w.set(0, Value::One);
        w.set(1, Value::Zero);
        w.set(63, Value::One);
        assert_eq!(w.get(0), Value::One);
        assert_eq!(w.get(1), Value::Zero);
        assert_eq!(w.get(2), Value::X);
        assert_eq!(w.get(63), Value::One);
        assert_eq!(w.ones & w.xs, 0, "canonical form");
        assert_eq!(Word::splat(Value::One).get(17), Value::One);
        assert_eq!(Word::from_bits(0b101).get(2), Value::One);
    }

    /// `eval_tt_word` must agree with the scalar X-aware evaluation on
    /// every lane, for every cell function, over random 3-valued input
    /// words.
    #[test]
    fn tt_word_eval_matches_scalar_on_all_lanes() {
        let kinds = [
            CellKind::Inv,
            CellKind::Buf,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Nand3,
            CellKind::Nand4,
            CellKind::Aoi21,
            CellKind::Oai21,
            CellKind::Aoi22,
            CellKind::Oai22,
            CellKind::Mux2,
        ];
        let mut rng = SplitMix64::new(0xC0FE);
        for kind in kinds {
            let Some(tt) = TruthTable::of_kind(kind) else {
                continue;
            };
            let n = tt.n_inputs as usize;
            for _ in 0..8 {
                let inputs: Vec<Word> = (0..n)
                    .map(|_| {
                        let ones = rng.next_u64();
                        let xs = rng.next_u64() & rng.next_u64(); // sparse Xs
                        Word {
                            ones: ones & !xs,
                            xs,
                        }
                    })
                    .collect();
                let out = eval_tt_word(tt, &inputs);
                assert_eq!(out.ones & out.xs, 0, "canonical form for {kind:?}");
                for lane in 0..64 {
                    let mut known = 0u32;
                    let mut x_mask = 0u32;
                    for (i, w) in inputs.iter().enumerate() {
                        match w.get(lane) {
                            Value::One => known |= 1 << i,
                            Value::Zero => {}
                            Value::X => x_mask |= 1 << i,
                        }
                    }
                    let scalar = crate::sim::eval_tt_with_x(tt, known, x_mask);
                    assert_eq!(
                        out.get(lane),
                        scalar,
                        "{kind:?} lane {lane}: known={known:b} x={x_mask:b}"
                    );
                }
            }
        }
    }

    /// Builds a small sequential design exercising gates, an FF and an
    /// inverter chain.
    fn seq_design(l: &Library) -> Netlist {
        let mut n = Netlist::new("seq");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let clk = n.add_clock("clk");
        let z = n.add_output("z");
        let w = n.add_net("w");
        let q = n.add_net("q");
        let g = n.add_instance("g", l.find_id("ND2_X1_L").unwrap(), l);
        let x = n.add_instance("x", l.find_id("XOR2_X1_L").unwrap(), l);
        let ff = n.add_instance("ff", l.find_id("DFF_X1_L").unwrap(), l);
        n.connect_by_name(g, "A", a, l).unwrap();
        n.connect_by_name(g, "B", q, l).unwrap();
        n.connect_by_name(g, "Z", w, l).unwrap();
        n.connect_by_name(ff, "D", w, l).unwrap();
        n.connect_by_name(ff, "CK", clk, l).unwrap();
        n.connect_by_name(ff, "Q", q, l).unwrap();
        n.connect_by_name(x, "A", q, l).unwrap();
        n.connect_by_name(x, "B", b, l).unwrap();
        n.connect_by_name(x, "Z", z, l).unwrap();
        n
    }

    /// The differential contract: every lane of the word simulator is
    /// bit-identical to a scalar simulator driven with that lane's
    /// stimulus, across propagate and clock-edge steps, X lanes
    /// included.
    #[test]
    fn word_simulation_is_bit_identical_to_64_scalar_passes() {
        let l = lib();
        let n = seq_design(&l);
        let inputs: Vec<NetId> = n
            .ports()
            .filter(|(_, p)| p.dir == PortDir::Input && !p.is_clock)
            .map(|(_, p)| p.net)
            .collect();

        let mut word = WordSimulator::new(&n, &l).unwrap();
        let mut scalars: Vec<Simulator> =
            (0..64).map(|_| Simulator::new(&n, &l).unwrap()).collect();

        let mut rng = SplitMix64::new(0xABCD);
        for cycle in 0..16 {
            for &net in &inputs {
                let ones = rng.next_u64();
                // A few X lanes in early cycles exercise the X paths.
                let xs = if cycle < 4 {
                    rng.next_u64() & 0xF0F0
                } else {
                    0
                };
                let w = Word {
                    ones: ones & !xs,
                    xs,
                };
                word.set_input(net, w);
                for (lane, s) in scalars.iter_mut().enumerate() {
                    s.set_input(net, w.get(lane));
                }
            }
            word.propagate(&n, &l);
            for s in scalars.iter_mut() {
                s.propagate(&n, &l);
            }
            for (id, _) in n.nets() {
                for (lane, s) in scalars.iter().enumerate() {
                    assert_eq!(
                        word.value(id).get(lane),
                        s.value(id),
                        "cycle {cycle} net {id:?} lane {lane} after propagate"
                    );
                }
            }
            word.clock_edge(&n, &l);
            for s in scalars.iter_mut() {
                s.clock_edge(&n, &l);
            }
            for (id, _) in n.nets() {
                for (lane, s) in scalars.iter().enumerate() {
                    assert_eq!(
                        word.value(id).get(lane),
                        s.value(id),
                        "cycle {cycle} net {id:?} lane {lane} after clock edge"
                    );
                }
            }
        }
    }

    /// Standby semantics (MT float, holder pin-to-1) must match the
    /// scalar simulator lane by lane too.
    #[test]
    fn standby_semantics_match_scalar() {
        let l = lib();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let z = n.add_output("z");
        let z2 = n.add_output("z2");
        let w = n.add_net("w");
        let u1 = n.add_instance("u1", l.find_id("INV_X1_MV").unwrap(), &l);
        let u2 = n.add_instance("u2", l.find_id("INV_X1_H").unwrap(), &l);
        let u3 = n.add_instance("u3", l.find_id("INV_X1_MV").unwrap(), &l);
        n.connect_by_name(u1, "A", a, &l).unwrap();
        n.connect_by_name(u1, "Z", w, &l).unwrap();
        n.connect_by_name(u2, "A", w, &l).unwrap();
        n.connect_by_name(u2, "Z", z, &l).unwrap();
        n.connect_by_name(u3, "A", a, &l).unwrap();
        n.connect_by_name(u3, "Z", z2, &l).unwrap();
        let mte = n.add_input("mte");
        let hold = n.add_instance("h0", l.holder(), &l);
        n.connect_by_name(hold, "A", w, &l).unwrap();
        n.connect_by_name(hold, "MTE", mte, &l).unwrap();

        let mut word = WordSimulator::new(&n, &l).unwrap();
        let mut scalar = Simulator::new(&n, &l).unwrap();
        let stim = Word::from_bits(0b10);
        word.set_input(a, stim);
        word.set_input(mte, Word::ONES);
        scalar.set_input(a, stim.get(1));
        scalar.set_input(mte, Value::One);
        for mode in [Mode::Active, Mode::Standby] {
            word.set_mode(mode);
            scalar.set_mode(mode);
            word.propagate(&n, &l);
            scalar.propagate(&n, &l);
            for (id, _) in n.nets() {
                assert_eq!(word.value(id).get(1), scalar.value(id), "{mode:?} {id:?}");
            }
            // Lane 0 drives a=0: z2 floats in standby there as well.
            if mode == Mode::Standby {
                assert_eq!(word.value(z2).get(0), Value::X);
                assert_eq!(word.value(z).get(0), Value::Zero);
            }
        }
    }

    /// Scoped simulation computes identical values for every net inside
    /// the scope closure, and never touches instances outside it.
    #[test]
    fn scoped_simulation_matches_full_inside_the_cone() {
        let l = lib();
        let n = seq_design(&l);
        // Scope: the closure feeding `z` = {x, ff, g}; leave out nothing
        // vs a scope that drops the unrelated inverter-free side.
        let scope: Vec<InstId> = ["g", "x", "ff"]
            .iter()
            .map(|s| n.find_inst(s).unwrap())
            .collect();
        let mut full = WordSimulator::new(&n, &l).unwrap();
        let mut scoped = WordSimulator::with_scope(&n, &l, &scope).unwrap();
        let inputs: Vec<NetId> = n
            .ports()
            .filter(|(_, p)| p.dir == PortDir::Input && !p.is_clock)
            .map(|(_, p)| p.net)
            .collect();
        let mut rng = SplitMix64::new(7);
        for _ in 0..8 {
            for &net in &inputs {
                let w = Word::from_bits(rng.next_u64());
                full.set_input(net, w);
                scoped.set_input(net, w);
            }
            full.propagate(&n, &l);
            scoped.propagate(&n, &l);
            full.clock_edge(&n, &l);
            scoped.clock_edge(&n, &l);
            let z = n.find_net("z").unwrap();
            assert_eq!(full.value(z), scoped.value(z));
        }
    }
}
