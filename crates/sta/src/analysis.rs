//! Forward/backward timing propagation, slack, critical paths, and hold
//! analysis.
//!
//! Since the [`TimingGraph`] kernel landed,
//! [`analyze`] builds the levelized graph for the current topology and
//! runs the shared kernel propagation; callers that re-analyze the same
//! topology repeatedly (corner sweeps, assignment loops) build the graph
//! once and call [`analyze_with_graph`] directly. The pre-kernel
//! sequential implementation is kept verbatim as [`analyze_baseline`] —
//! the differential-testing reference the kernel is proven bit-identical
//! against.

use crate::graph::{sink_ordinal, SinkCache, TimingGraph};
use smt_base::units::{Cap, Time};
use smt_cells::library::Library;
use smt_netlist::graph::{topo_order, CombinationalCycle};
use smt_netlist::netlist::{InstId, NetDriver, NetId, Netlist, PinRef, PortDir};
use smt_route::Parasitics;

/// Timing constraints and analysis options.
#[derive(Debug, Clone, PartialEq)]
pub struct StaConfig {
    /// Clock period (the single constraint of the benchmark designs).
    pub clock_period: Time,
    /// Arrival time at primary inputs relative to the clock edge.
    pub input_delay: Time,
    /// Required-time margin at primary outputs.
    pub output_margin: Time,
    /// Clock-skew allowance subtracted from setup slack and added to the
    /// hold requirement (set from the CTS report after routing).
    pub clock_skew: Time,
    /// Default slew assumed at timing sources.
    pub source_slew: Time,
}

impl Default for StaConfig {
    fn default() -> Self {
        StaConfig {
            clock_period: Time::from_ns(2.0),
            input_delay: Time::new(50.0),
            output_margin: Time::new(50.0),
            clock_skew: Time::ZERO,
            source_slew: Time::new(40.0),
        }
    }
}

/// Per-instance delay derating (multiplier ≥ 1.0). The MTCMOS clustering
/// uses this to inject the VGND-bounce delay penalty on MT-cells:
/// `d = d0 · (1 + k·ΔV/VDD)` from DESIGN.md §5.
#[derive(Debug, Clone, Default)]
pub struct Derating {
    factors: Vec<f64>,
}

impl Derating {
    /// No derating.
    pub fn none() -> Self {
        Derating::default()
    }

    /// Builds a derating table sized for the netlist, all 1.0.
    pub fn uniform(netlist: &Netlist) -> Self {
        Derating {
            factors: vec![1.0; netlist.inst_capacity()],
        }
    }

    /// Sets one instance's delay factor.
    pub fn set(&mut self, inst: InstId, factor: f64) {
        if inst.index() >= self.factors.len() {
            self.factors.resize(inst.index() + 1, 1.0);
        }
        self.factors[inst.index()] = factor;
    }

    /// Factor for an instance (1.0 when unset).
    pub fn factor(&self, inst: InstId) -> f64 {
        self.factors.get(inst.index()).copied().unwrap_or(1.0)
    }
}

/// One hold-check failure at a flip-flop.
#[derive(Debug, Clone, PartialEq)]
pub struct HoldViolation {
    /// The capturing flip-flop.
    pub ff: InstId,
    /// Min-arrival at its D pin.
    pub arrival_min: Time,
    /// The hold requirement it missed (`hold + skew`).
    pub required: Time,
}

impl HoldViolation {
    /// Negative hold slack.
    pub fn slack(&self) -> Time {
        self.arrival_min - self.required
    }
}

/// Complete timing report.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Max arrival per net (at the driver pin, wire delay excluded).
    pub arrival: Vec<Time>,
    /// Min arrival per net.
    pub arrival_min: Vec<Time>,
    /// Slew per net.
    pub slew: Vec<Time>,
    /// Required time per net (setup analysis).
    pub required: Vec<Time>,
    /// Worst negative slack over all endpoints (positive = timing met).
    pub wns: Time,
    /// Total negative slack.
    pub tns: Time,
    /// Hold violations at flip-flops.
    pub hold_violations: Vec<HoldViolation>,
    clock_period: Time,
}

impl TimingReport {
    /// Setup slack of a net.
    pub fn slack(&self, net: NetId) -> Time {
        self.required[net.index()] - self.arrival[net.index()]
    }

    /// Slack of an instance = slack of its output net (or `+period` for
    /// cells without a timed output, e.g. holders/switches).
    pub fn inst_slack(&self, netlist: &Netlist, lib: &Library, inst: InstId) -> Time {
        let i = netlist.inst(inst);
        let cell = lib.cell(i.cell);
        cell.output_pin()
            .and_then(|p| i.net_on(p))
            .map(|n| self.slack(n))
            .unwrap_or(self.clock_period)
    }

    /// True when setup timing is met everywhere.
    pub fn setup_met(&self) -> bool {
        self.wns.ps() >= 0.0
    }

    /// True when no hold violations exist.
    pub fn hold_met(&self) -> bool {
        self.hold_violations.is_empty()
    }
}

fn net_load(netlist: &Netlist, lib: &Library, parasitics: &Parasitics, net: NetId) -> Cap {
    let n = netlist.net(net);
    let pins: Cap = n
        .loads
        .iter()
        .map(|pr| lib.cell(netlist.inst(pr.inst).cell).pins[pr.pin].cap)
        .sum();
    let ports = Cap::new(2.0 * n.port_loads.len() as f64);
    pins + ports + parasitics.net(net).wire_cap
}

/// Runs setup and hold analysis.
///
/// Builds a fresh [`TimingGraph`] for the current topology and runs the
/// shared kernel. Callers re-analyzing one topology many times (corner
/// loops, Vth-assignment probes) should build the graph once and call
/// [`analyze_with_graph`].
///
/// # Errors
///
/// Propagates [`CombinationalCycle`] from levelisation.
///
/// # Panics
///
/// Panics on a dangling [`PinRef`] (an instance pin missing from its
/// net's load list) — a broken netlist-edit invariant that would
/// otherwise be priced as a silently wrong wire delay.
pub fn analyze(
    netlist: &Netlist,
    lib: &Library,
    parasitics: &Parasitics,
    config: &StaConfig,
    derating: &Derating,
) -> Result<TimingReport, CombinationalCycle> {
    let graph = TimingGraph::build(netlist, lib)?;
    Ok(analyze_with_graph(
        &graph, netlist, lib, parasitics, config, derating,
    ))
}

/// Runs the full setup/hold analysis over a prebuilt [`TimingGraph`].
///
/// The graph must have been built for this netlist's current topology
/// (same nets, same load lists); corner variants of the build library
/// are fine — corner derates move timing numbers, never pin lists.
/// Results are bit-identical to [`analyze`] (and to the legacy
/// [`analyze_baseline`]).
pub fn analyze_with_graph(
    graph: &TimingGraph,
    netlist: &Netlist,
    lib: &Library,
    parasitics: &Parasitics,
    config: &StaConfig,
    derating: &Derating,
) -> TimingReport {
    let cache = graph.build_cache(netlist);
    analyze_cached(graph, &cache, netlist, lib, parasitics, config, derating)
}

/// [`analyze_with_graph`] with a caller-held [`SinkCache`], for loops
/// that re-analyze an *unchanged* netlist under several libraries (the
/// per-corner probes of the assignment and signoff loops): the cache is
/// corner-invariant, so building it once amortizes the last per-call
/// rediscovery cost.
#[allow(clippy::too_many_arguments)]
pub fn analyze_cached(
    graph: &TimingGraph,
    cache: &SinkCache,
    netlist: &Netlist,
    lib: &Library,
    parasitics: &Parasitics,
    config: &StaConfig,
    derating: &Derating,
) -> TimingReport {
    let state = graph.propagate(netlist, lib, parasitics, config, derating, cache);
    let (arrival, arrival_min, slew) = (state.arrival, state.arrival_min, state.slew);
    let nn = netlist.num_nets();
    let wire_of = |net: NetId, pr: PinRef| {
        let ord = graph.ordinal(cache, pr);
        parasitics.net(net).elmore(ord)
    };

    // Required times: endpoints then backward propagation in reverse
    // level order (every load of a net sits at a strictly higher level
    // than its driver, so each `required` read is final).
    let endpoint_req = config.clock_period - config.clock_skew;
    let mut required = vec![Time::new(f64::INFINITY); nn];
    for (_, port) in netlist.ports() {
        if port.dir == PortDir::Output {
            let r = endpoint_req - config.output_margin;
            let i = port.net.index();
            required[i] = required[i].min(r);
        }
    }
    for &id in graph.ffs() {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        if let Some(dp) = graph.cells.d_pin(inst.cell) {
            if let Some(dnet) = inst.net_on(dp) {
                let wire = wire_of(dnet, PinRef { inst: id, pin: dp });
                let r = endpoint_req - cell.setup - wire;
                let i = dnet.index();
                required[i] = required[i].min(r);
            }
        }
    }
    for &id in graph.order().iter().rev() {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        let Some(op) = graph.cells.out_pin(inst.cell) else {
            continue;
        };
        let Some(onet) = inst.net_on(op) else {
            continue;
        };
        let out_req = required[onet.index()];
        if !out_req.is_finite() {
            continue;
        }
        let load = cache.static_load(onet) + parasitics.net(onet).wire_cap;
        for &pin in graph.cells.inputs(inst.cell) {
            let pin = pin as usize;
            let Some(inet) = inst.net_on(pin) else {
                continue;
            };
            let Some(arc_idx) = graph.cells.arc_idx(inst.cell, pin) else {
                continue;
            };
            let arc = &cell.arcs[arc_idx];
            let wire = wire_of(inet, PinRef { inst: id, pin });
            let d = arc.delay(slew[inet.index()], load) * derating.factor(id);
            let r = out_req - d - wire;
            let i = inet.index();
            required[i] = required[i].min(r);
        }
    }
    // Unconstrained nets: give them the endpoint requirement so slack is
    // defined (large positive).
    for r in required.iter_mut() {
        if !r.is_finite() {
            *r = endpoint_req;
        }
    }

    // WNS / TNS over endpoints.
    let mut wns = Time::new(f64::INFINITY);
    let mut tns = Time::ZERO;
    let mut consider = |slack: Time| {
        wns = wns.min(slack);
        if slack.ps() < 0.0 {
            tns += slack;
        }
    };
    for (_, port) in netlist.ports() {
        if port.dir == PortDir::Output {
            let i = port.net.index();
            consider(required[i] - arrival[i]);
        }
    }
    for &id in graph.ffs() {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        if let Some(dp) = graph.cells.d_pin(inst.cell) {
            if let Some(dnet) = inst.net_on(dp) {
                let wire = wire_of(dnet, PinRef { inst: id, pin: dp });
                let at = arrival[dnet.index()] + wire;
                let req = endpoint_req - cell.setup;
                consider(req - at);
            }
        }
    }
    if !wns.is_finite() {
        wns = config.clock_period;
    }

    // Hold: min arrival at FF D must exceed hold + skew.
    let mut hold_violations = Vec::new();
    for &id in graph.ffs() {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        let Some(dp) = graph.cells.d_pin(inst.cell) else {
            continue;
        };
        let Some(dnet) = inst.net_on(dp) else {
            continue;
        };
        let wire = wire_of(dnet, PinRef { inst: id, pin: dp });
        let mut at_min = arrival_min[dnet.index()];
        if !at_min.is_finite() {
            at_min = Time::ZERO;
        }
        let at_min = at_min + wire;
        let need = cell.hold + config.clock_skew;
        if at_min < need {
            hold_violations.push(HoldViolation {
                ff: id,
                arrival_min: at_min,
                required: need,
            });
        }
    }

    TimingReport {
        arrival,
        arrival_min,
        slew,
        required,
        wns,
        tns,
        hold_violations,
        clock_period: config.clock_period,
    }
}

/// The pre-kernel sequential analysis, kept verbatim as the reference
/// implementation: `tests/properties.rs` asserts the
/// [`TimingGraph`]-based [`analyze`] is bit-identical to it on
/// randomized netlists, and the `timing_kernel` bench measures the
/// kernel's speedup against it. Not for production use.
///
/// # Errors
///
/// Propagates [`CombinationalCycle`] from levelisation.
///
/// # Panics
///
/// Panics on a dangling [`PinRef`], like [`analyze`].
pub fn analyze_baseline(
    netlist: &Netlist,
    lib: &Library,
    parasitics: &Parasitics,
    config: &StaConfig,
    derating: &Derating,
) -> Result<TimingReport, CombinationalCycle> {
    let topo = topo_order(netlist, lib)?;
    let nn = netlist.num_nets();
    let mut arrival = vec![Time::ZERO; nn];
    let mut arrival_min = vec![Time::new(f64::INFINITY); nn];
    let mut slew = vec![config.source_slew; nn];
    let wire_of = |net: NetId, pr: PinRef| {
        let ord = sink_ordinal(netlist.net(net), pr);
        parasitics.net(net).elmore(ord)
    };

    // Sources: primary inputs and FF Q pins.
    for (_, port) in netlist.ports() {
        if port.dir == PortDir::Input {
            arrival[port.net.index()] = config.input_delay;
            arrival_min[port.net.index()] = config.input_delay;
        }
    }
    for (id, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        if !cell.is_sequential() {
            continue;
        }
        let Some(qp) = cell.output_pin() else {
            continue;
        };
        let Some(qnet) = inst.net_on(qp) else {
            continue;
        };
        let load = net_load(netlist, lib, parasitics, qnet);
        if let Some(arc) = cell.arcs.first() {
            let d = arc.delay(config.source_slew, load) * derating.factor(id);
            arrival[qnet.index()] = d;
            arrival_min[qnet.index()] = d;
            slew[qnet.index()] = arc.output_slew(load);
        }
    }

    // Forward propagation over the combinational core.
    for &id in &topo.order {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        let Some(op) = cell.output_pin() else {
            continue;
        };
        let Some(onet) = inst.net_on(op) else {
            continue;
        };
        let load = net_load(netlist, lib, parasitics, onet);
        let mut best = Time::ZERO;
        let mut best_min = Time::new(f64::INFINITY);
        let mut best_slew = config.source_slew;
        let mut any_input = false;
        for &pin in &cell.logic_input_pins() {
            let Some(inet) = inst.net_on(pin) else {
                continue;
            };
            let Some(arc) = cell.arc_from(pin) else {
                continue;
            };
            any_input = true;
            let wire = wire_of(inet, PinRef { inst: id, pin });
            let at = arrival[inet.index()] + wire;
            let at_min = arrival_min[inet.index()] + wire;
            let d = arc.delay(slew[inet.index()], load) * derating.factor(id);
            if at + d > best {
                best = at + d;
                best_slew = arc.output_slew(load);
            }
            best_min = best_min.min(at_min + d);
        }
        if any_input {
            arrival[onet.index()] = best;
            arrival_min[onet.index()] = best_min;
            slew[onet.index()] = best_slew;
        }
    }

    // Required times: endpoints then backward propagation.
    let endpoint_req = config.clock_period - config.clock_skew;
    let mut required = vec![Time::new(f64::INFINITY); nn];
    for (_, port) in netlist.ports() {
        if port.dir == PortDir::Output {
            let r = endpoint_req - config.output_margin;
            let i = port.net.index();
            required[i] = required[i].min(r);
        }
    }
    for (id, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        if !cell.is_sequential() {
            continue;
        }
        if let Some(dp) = cell.pin_index("D") {
            if let Some(dnet) = inst.net_on(dp) {
                let wire = wire_of(dnet, PinRef { inst: id, pin: dp });
                let r = endpoint_req - cell.setup - wire;
                let i = dnet.index();
                required[i] = required[i].min(r);
            }
        }
    }
    for &id in topo.order.iter().rev() {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        let Some(op) = cell.output_pin() else {
            continue;
        };
        let Some(onet) = inst.net_on(op) else {
            continue;
        };
        let out_req = required[onet.index()];
        if !out_req.is_finite() {
            continue;
        }
        let load = net_load(netlist, lib, parasitics, onet);
        for &pin in &cell.logic_input_pins() {
            let Some(inet) = inst.net_on(pin) else {
                continue;
            };
            let Some(arc) = cell.arc_from(pin) else {
                continue;
            };
            let wire = wire_of(inet, PinRef { inst: id, pin });
            let d = arc.delay(slew[inet.index()], load) * derating.factor(id);
            let r = out_req - d - wire;
            let i = inet.index();
            required[i] = required[i].min(r);
        }
    }
    // Unconstrained nets: give them the endpoint requirement so slack is
    // defined (large positive).
    for r in required.iter_mut() {
        if !r.is_finite() {
            *r = endpoint_req;
        }
    }

    // WNS / TNS over endpoints.
    let mut wns = Time::new(f64::INFINITY);
    let mut tns = Time::ZERO;
    let mut consider = |slack: Time| {
        wns = wns.min(slack);
        if slack.ps() < 0.0 {
            tns += slack;
        }
    };
    for (_, port) in netlist.ports() {
        if port.dir == PortDir::Output {
            let i = port.net.index();
            consider(required[i] - arrival[i]);
        }
    }
    for (id, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        if !cell.is_sequential() {
            continue;
        }
        if let Some(dp) = cell.pin_index("D") {
            if let Some(dnet) = inst.net_on(dp) {
                let wire = wire_of(dnet, PinRef { inst: id, pin: dp });
                let at = arrival[dnet.index()] + wire;
                let req = endpoint_req - cell.setup;
                consider(req - at);
            }
        }
    }
    if !wns.is_finite() {
        wns = config.clock_period;
    }

    // Hold: min arrival at FF D must exceed hold + skew.
    let mut hold_violations = Vec::new();
    for (id, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        if !cell.is_sequential() {
            continue;
        }
        let Some(dp) = cell.pin_index("D") else {
            continue;
        };
        let Some(dnet) = inst.net_on(dp) else {
            continue;
        };
        let wire = wire_of(dnet, PinRef { inst: id, pin: dp });
        let mut at_min = arrival_min[dnet.index()];
        if !at_min.is_finite() {
            at_min = Time::ZERO;
        }
        let at_min = at_min + wire;
        let need = cell.hold + config.clock_skew;
        if at_min < need {
            hold_violations.push(HoldViolation {
                ff: id,
                arrival_min: at_min,
                required: need,
            });
        }
    }

    Ok(TimingReport {
        arrival,
        arrival_min,
        slew,
        required,
        wns,
        tns,
        hold_violations,
        clock_period: config.clock_period,
    })
}

/// Walks the worst path backwards from the worst endpoint; returns the
/// instances on it, endpoint first.
pub fn worst_path(netlist: &Netlist, lib: &Library, report: &TimingReport) -> Vec<InstId> {
    // Worst endpoint: minimal slack over FF D nets and output-port nets.
    let mut worst: Option<(Time, NetId)> = None;
    let mut consider = |net: NetId| {
        let s = report.slack(net);
        if worst.map(|(ws, _)| s < ws).unwrap_or(true) {
            worst = Some((s, net));
        }
    };
    for (_, port) in netlist.ports() {
        if port.dir == smt_netlist::netlist::PortDir::Output {
            consider(port.net);
        }
    }
    for (_, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        if cell.is_sequential() {
            if let Some(dp) = cell.pin_index("D") {
                if let Some(dnet) = inst.net_on(dp) {
                    consider(dnet);
                }
            }
        }
    }
    let Some((_, mut net)) = worst else {
        return Vec::new();
    };
    let mut path = Vec::new();
    while let Some(NetDriver::Inst(pr)) = netlist.net(net).driver {
        let driver = pr.inst;
        let cell = lib.cell(netlist.inst(driver).cell);
        path.push(driver);
        if !cell.is_logic() {
            break; // reached an FF
        }
        // Pick the input with the latest arrival.
        let mut best: Option<(Time, NetId)> = None;
        for &pin in &cell.logic_input_pins() {
            if let Some(inet) = netlist.inst(driver).net_on(pin) {
                let at = report.arrival[inet.index()];
                if best.map(|(b, _)| at > b).unwrap_or(true) {
                    best = Some((at, inet));
                }
            }
        }
        match best {
            Some((_, inet)) => net = inet,
            None => break,
        }
        if path.len() > netlist.num_instances() {
            break; // defensive
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_cells::cell::VthClass;
    use smt_place::{place, PlacerConfig};

    fn lib() -> Library {
        Library::industrial_130nm()
    }

    /// a -> inv chain -> ff.D ; ff.Q -> out
    fn chain(lib: &Library, len: usize, vth: VthClass) -> Netlist {
        let mut n = Netlist::new("chain");
        let clk = n.add_clock("clk");
        let mut prev = n.add_input("a");
        let inv = lib.find_id(&format!("INV_X1_{}", vth.suffix())).unwrap();
        for i in 0..len {
            let w = n.add_net(&format!("w{i}"));
            let u = n.add_instance(&format!("u{i}"), inv, lib);
            n.connect_by_name(u, "A", prev, lib).unwrap();
            n.connect_by_name(u, "Z", w, lib).unwrap();
            prev = w;
        }
        let q = n.add_output("q");
        let ff = n.add_instance("ff", lib.find_id("DFF_X1_L").unwrap(), lib);
        n.connect_by_name(ff, "D", prev, lib).unwrap();
        n.connect_by_name(ff, "CK", clk, lib).unwrap();
        n.connect_by_name(ff, "Q", q, lib).unwrap();
        n
    }

    fn run(n: &Netlist, lib: &Library, period_ns: f64) -> TimingReport {
        let p = place(n, lib, &PlacerConfig::default());
        let par = Parasitics::estimate(n, lib, &p);
        analyze(
            n,
            lib,
            &par,
            &StaConfig {
                clock_period: Time::from_ns(period_ns),
                ..StaConfig::default()
            },
            &Derating::none(),
        )
        .unwrap()
    }

    #[test]
    fn arrival_grows_along_chain() {
        let lib = lib();
        let n = chain(&lib, 10, VthClass::Low);
        let r = run(&n, &lib, 4.0);
        let a0 = r.arrival[n.find_net("w0").unwrap().index()];
        let a9 = r.arrival[n.find_net("w9").unwrap().index()];
        // Nine more inverter stages: at least ~10 ps each.
        assert!(a9 > a0 + Time::new(90.0), "a0={a0}, a9={a9}");
        assert!(r.setup_met());
    }

    #[test]
    fn high_vth_chain_is_slower_and_can_fail_timing() {
        let lib = lib();
        let low = chain(&lib, 40, VthClass::Low);
        let high = chain(&lib, 40, VthClass::High);
        let rl = run(&low, &lib, 3.0);
        let rh = run(&high, &lib, 3.0);
        let end = |n: &Netlist, r: &TimingReport| {
            let d = n.find_net("w39").unwrap();
            r.arrival[d.index()]
        };
        let dl = end(&low, &rl);
        let dh = end(&high, &rh);
        assert!(dh.ps() > dl.ps() * 1.2, "low {dl}, high {dh}");
        // Slacks reflect the same ordering.
        assert!(rh.wns < rl.wns);
    }

    #[test]
    fn tight_clock_fails_setup() {
        let lib = lib();
        let n = chain(&lib, 40, VthClass::Low);
        let fast = run(&n, &lib, 10.0);
        assert!(fast.setup_met());
        let slow = run(&n, &lib, 0.3);
        assert!(!slow.setup_met());
        assert!(slow.tns.ps() < 0.0);
    }

    #[test]
    fn derating_slows_specific_cells() {
        let lib = lib();
        let n = chain(&lib, 20, VthClass::Low);
        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        let cfg = StaConfig::default();
        let base = analyze(&n, &lib, &par, &cfg, &Derating::none()).unwrap();
        let mut der = Derating::uniform(&n);
        for (id, inst) in n.instances() {
            if inst.name.starts_with("u") {
                der.set(id, 1.5);
            }
        }
        let slowed = analyze(&n, &lib, &par, &cfg, &der).unwrap();
        let end = n.find_net("w19").unwrap();
        assert!(slowed.arrival[end.index()].ps() > base.arrival[end.index()].ps() * 1.3);
    }

    #[test]
    fn worst_path_tracks_the_chain() {
        let lib = lib();
        let n = chain(&lib, 10, VthClass::Low);
        let r = run(&n, &lib, 0.5); // fails -> worst path well-defined
        let path = worst_path(&n, &lib, &r);
        // The path runs through the FF D cone: most of the inverters.
        assert!(path.len() >= 9, "path len {}", path.len());
    }

    #[test]
    fn short_path_hold_violation_detected() {
        // FF.Q -> inv -> FF.D with zero input delay is a classic hold risk
        // when skew allowance is added.
        let lib = lib();
        let mut n = Netlist::new("hold");
        let clk = n.add_clock("clk");
        let q = n.add_net("q");
        let d = n.add_net("d");
        let ff1 = n.add_instance("ff1", lib.find_id("DFF_X1_L").unwrap(), &lib);
        let ff2 = n.add_instance("ff2", lib.find_id("DFF_X1_L").unwrap(), &lib);
        let inv = n.add_instance("inv", lib.find_id("INV_X1_L").unwrap(), &lib);
        n.connect_by_name(ff1, "CK", clk, &lib).unwrap();
        n.connect_by_name(ff1, "Q", q, &lib).unwrap();
        n.connect_by_name(inv, "A", q, &lib).unwrap();
        n.connect_by_name(inv, "Z", d, &lib).unwrap();
        n.connect_by_name(ff2, "D", d, &lib).unwrap();
        n.connect_by_name(ff2, "CK", clk, &lib).unwrap();
        let qq = n.add_output("qq");
        let ff1q2 = n.add_net("unused_q2");
        let _ = ff1q2;
        n.connect_by_name(ff2, "Q", qq, &lib).unwrap();
        n.connect_by_name(ff1, "D", qq, &lib).unwrap();

        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        // Huge skew allowance forces a hold violation through one inverter.
        let r = analyze(
            &n,
            &lib,
            &par,
            &StaConfig {
                clock_skew: Time::new(200.0),
                ..StaConfig::default()
            },
            &Derating::none(),
        )
        .unwrap();
        assert!(!r.hold_met());
        assert!(r.hold_violations[0].slack().ps() < 0.0);
        // Without the skew it passes.
        let r2 = analyze(&n, &lib, &par, &StaConfig::default(), &Derating::none()).unwrap();
        assert!(r2.hold_met(), "{:?}", r2.hold_violations);
    }

    #[test]
    fn graph_analysis_is_bit_identical_to_baseline() {
        let lib = lib();
        for (len, period) in [(10usize, 4.0f64), (40, 0.3), (25, 2.0)] {
            let n = chain(&lib, len, VthClass::Low);
            let p = place(&n, &lib, &PlacerConfig::default());
            let par = Parasitics::estimate(&n, &lib, &p);
            let cfg = StaConfig {
                clock_period: Time::from_ns(period),
                ..StaConfig::default()
            };
            let der = Derating::none();
            let new = analyze(&n, &lib, &par, &cfg, &der).unwrap();
            let old = analyze_baseline(&n, &lib, &par, &cfg, &der).unwrap();
            assert_eq!(new.arrival, old.arrival);
            assert_eq!(new.arrival_min, old.arrival_min);
            assert_eq!(new.slew, old.slew);
            assert_eq!(new.required, old.required);
            assert_eq!(new.wns, old.wns);
            assert_eq!(new.tns, old.tns);
            assert_eq!(new.hold_violations, old.hold_violations);
        }
    }
}
