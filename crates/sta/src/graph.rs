//! The shared levelized timing-graph kernel.
//!
//! Every timing consumer in the workspace — one-shot
//! [`analyze`](crate::analysis::analyze), the resident
//! [`IncrementalSta`](crate::incremental::IncrementalSta), and the
//! per-corner [`MultiCornerSta`](crate::multicorner::MultiCornerSta) —
//! used to rediscover the same facts on every propagation step: the sink
//! ordinal of each input pin (a linear scan of its net's load list) and
//! the capacitive load of each net (a fresh sum over its sinks). Both
//! scans are `O(fanout)`, which makes arrival propagation quadratic in
//! fanout and dominates the Fig. 4 optimisation loops that call timing
//! thousands of times.
//!
//! A [`TimingGraph`] is built **once per netlist topology** and holds the
//! parts that are expensive to rediscover and invariant across corner
//! libraries (corner derates move timing numbers, never pin lists):
//!
//! * CSR-style levelized adjacency: the combinational core in
//!   level-major order, with per-level offsets, so propagation can walk
//!   level by level — and fan a wide level out on the shared
//!   [`parallel_map`] worker pool;
//! * a CSR pin → sink-ordinal layout whose values (the same net → sink
//!   rows [`Netlist::load_csr`] exports) live in the per-consumer
//!   cache, replacing every per-edge `position()` scan with one array
//!   read.
//!
//! The *library-dependent* leaves — per-net static pin loads and the
//! ordinal table a long-lived engine must refresh after cell swaps —
//! live in a per-consumer [`SinkCache`], so one graph is shared across
//! all corners while each corner prices its own library.
//!
//! Propagation over the graph is **bit-identical** to the legacy
//! sequential propagation (see `tests/properties.rs`): instances within
//! one level never read each other's outputs, every instance's inputs
//! are finalized in strictly lower levels, and results are written back
//! in deterministic item order regardless of worker count.
//!
//! Dangling [`PinRef`]s — an instance pin that claims a net which does
//! not list it as a load — are a **hard error** at cache-build and
//! lookup time, never a silently wrong delay (the pre-kernel code
//! priced the *first* sink's Elmore delay instead, masking real slack
//! violations).

use crate::analysis::{Derating, StaConfig};
use smt_base::par::parallel_map;
use smt_base::units::{Cap, Time};
use smt_cells::library::Library;
use smt_netlist::check::RuleId;
use smt_netlist::graph::{topo_order, CombinationalCycle};
use smt_netlist::netlist::{InstId, Net, NetId, Netlist, PinRef, PortDir};
use smt_route::Parasitics;
use std::fmt;

/// Sentinel for "this pin is not a sink of any net".
const NO_ORD: u32 = u32::MAX;

/// Structured form of the timing kernel's hard error: a connected input
/// pin missing from its net's load list. Carries the same
/// [`RuleId::DanglingPinRef`] identity the static analyzer reports, so
/// STA panics and lint diagnostics agree on vocabulary — a `smt-lint`
/// run on the same netlist surfaces this exact object under the
/// `dangling-pin-ref` rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DanglingPinRef {
    /// The offending pin.
    pub pin: PinRef,
    /// The net the instance claims, when known at the failure site.
    pub net: Option<String>,
}

impl DanglingPinRef {
    /// The lint rule this error corresponds to.
    pub fn rule(&self) -> RuleId {
        RuleId::DanglingPinRef
    }
}

impl fmt::Display for DanglingPinRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.net {
            Some(net) => write!(
                f,
                "dangling PinRef [{}]: {} pin {} claims net `{}` but is not in its load list",
                self.rule().key(),
                self.pin.inst,
                self.pin.pin,
                net
            ),
            None => write!(
                f,
                "dangling PinRef [{}]: {} pin {} is not a load of its net \
                 (stale cache or broken edit invariant)",
                self.rule().key(),
                self.pin.inst,
                self.pin.pin
            ),
        }
    }
}

impl std::error::Error for DanglingPinRef {}

/// Levels narrower than this are evaluated inline; wider levels are
/// chunked across the shared worker pool. Per-instance evaluation is a
/// few dozen float ops (~100 ns) and `parallel_map` spawns scoped OS
/// threads per call, so fan-out only amortizes on genuinely wide levels
/// (wide flat datapaths) where per-level work clearly dominates the
/// spawn cost; everything else takes the sequential fast path with zero
/// thread spawns.
const PARALLEL_LEVEL_WIDTH: usize = 4096;

/// Position of a pin in its net's load list (for per-sink Elmore
/// lookup). A dangling [`PinRef`] is a hard error: the instance-side
/// connection table and the net-side load list disagree, and any
/// ordinal we could return would price the wrong sink's wire delay.
pub(crate) fn sink_ordinal(net: &Net, pr: PinRef) -> usize {
    try_sink_ordinal(net, pr).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking form of the sink-ordinal lookup: the structured
/// [`DanglingPinRef`] error names the lint rule instead of aborting.
pub fn try_sink_ordinal(net: &Net, pr: PinRef) -> Result<usize, DanglingPinRef> {
    net.load_ordinal(pr).ok_or_else(|| DanglingPinRef {
        pin: pr,
        net: Some(net.name.clone()),
    })
}

/// Out-of-line panic for a `NO_ORD` sentinel reaching a lookup: either
/// the netlist's edit invariant broke after the cache was validated, or
/// a stale cache is being used past a topology change. In both cases
/// continuing would price some other sink's wire delay — the silent
/// slack-masking bug this kernel exists to make impossible. Checked in
/// release builds too; the predictable branch is free next to the
/// delay arithmetic.
#[cold]
#[inline(never)]
fn dangling_lookup(pr: PinRef) -> ! {
    panic!("{}", DanglingPinRef { pin: pr, net: None })
}

/// Forward-propagation state over all nets: max/min arrivals and slews,
/// indexed by `NetId::index()`.
#[derive(Debug, Clone)]
pub struct PropState {
    /// Max arrival per net (at the driver pin, wire delay excluded).
    pub arrival: Vec<Time>,
    /// Min arrival per net (`+inf` for nets no timed source reaches).
    pub arrival_min: Vec<Time>,
    /// Slew per net.
    pub slew: Vec<Time>,
}

/// The shared levelized timing kernel; see the module docs.
#[derive(Debug, Clone)]
pub struct TimingGraph {
    /// Combinational instances in level-major order (level 0 first).
    order: Vec<InstId>,
    /// Per-level offsets into `order`; level `l` is
    /// `order[level_start[l]..level_start[l + 1]]`.
    level_start: Vec<u32>,
    /// Logic depth per instance slot; `u32::MAX` off the combinational
    /// core (same convention as [`smt_netlist::graph::TopoOrder`]).
    level: Vec<u32>,
    /// CSR offsets of each instance slot's pin row in a [`SinkCache`]'s
    /// ordinal table (`pin_start.len() == inst_capacity + 1`).
    pin_start: Vec<u32>,
    /// Per-cell-type structure tables (see [`CellTables`]).
    pub(crate) cells: CellTables,
    /// Live sequential instances in id order — the sources (`Q` pins)
    /// and endpoints (`D` pins) every pass loops over, cached so a full
    /// analysis does not re-scan every instance slot four times.
    ffs: Vec<InstId>,
    /// Net count the graph was built against.
    num_nets: usize,
}

/// Flattened per-cell-*type* structure lookups, precomputed once at
/// graph build: logic-input pin lists, output pins, `D` pins, and the
/// arc index driven by each input pin. These replace a `Vec` allocation
/// (`Cell::logic_input_pins`) and two linear scans (`Cell::arc_from`,
/// `Cell::output_pin`) on *every* instance evaluation. They are
/// functions of cell structure only, so they are corner-invariant and
/// can never go stale under cell swaps — the instance → cell-id lookup
/// stays live in the netlist.
#[derive(Debug, Clone, Default)]
pub(crate) struct CellTables {
    /// Output pin per cell (`u32::MAX` = none).
    out_pin: Vec<u32>,
    /// `D` pin per cell (`u32::MAX` = none).
    d_pin: Vec<u32>,
    /// CSR offsets into `in_pins`, per cell.
    in_start: Vec<u32>,
    /// Logic-input pin indices (clock/MTE/VGND excluded), in pin order —
    /// exactly `Cell::logic_input_pins`.
    in_pins: Vec<u32>,
    /// CSR offsets into `pin_arc`, per cell.
    pin_arc_start: Vec<u32>,
    /// Index of the arc driven from each pin (`u32::MAX` = none) —
    /// exactly `Cell::arc_from`.
    pin_arc: Vec<u32>,
    /// Input capacitance of every pin, flattened alongside `pin_arc` —
    /// one array read per sink in the static-load sums.
    pin_cap: Vec<Cap>,
}

impl CellTables {
    fn build(lib: &Library) -> Self {
        let mut t = CellTables {
            in_start: vec![0],
            pin_arc_start: vec![0],
            ..CellTables::default()
        };
        for cell in lib.cells() {
            t.out_pin
                .push(cell.output_pin().map_or(u32::MAX, |p| p as u32));
            t.d_pin
                .push(cell.pin_index("D").map_or(u32::MAX, |p| p as u32));
            for pin in cell.logic_input_pins() {
                t.in_pins.push(pin as u32);
            }
            t.in_start.push(t.in_pins.len() as u32);
            for (pin, spec) in cell.pins.iter().enumerate() {
                let idx = cell.arcs.iter().position(|a| a.from_pin == pin);
                t.pin_arc.push(idx.map_or(u32::MAX, |i| i as u32));
                t.pin_cap.push(spec.cap);
            }
            t.pin_arc_start.push(t.pin_arc.len() as u32);
        }
        t
    }

    #[inline]
    pub(crate) fn inputs(&self, cell: smt_cells::cell::CellId) -> &[u32] {
        &self.in_pins
            [self.in_start[cell.index()] as usize..self.in_start[cell.index() + 1] as usize]
    }

    #[inline]
    pub(crate) fn arc_idx(&self, cell: smt_cells::cell::CellId, pin: usize) -> Option<usize> {
        match self.pin_arc[self.pin_arc_start[cell.index()] as usize + pin] {
            u32::MAX => None,
            i => Some(i as usize),
        }
    }

    #[inline]
    pub(crate) fn out_pin(&self, cell: smt_cells::cell::CellId) -> Option<usize> {
        match self.out_pin[cell.index()] {
            u32::MAX => None,
            p => Some(p as usize),
        }
    }

    #[inline]
    pub(crate) fn d_pin(&self, cell: smt_cells::cell::CellId) -> Option<usize> {
        match self.d_pin[cell.index()] {
            u32::MAX => None,
            p => Some(p as usize),
        }
    }

    /// Input capacitance of one pin (same value as
    /// `lib.cell(cell).pins[pin].cap`).
    #[inline]
    fn pin_cap(&self, cell: smt_cells::cell::CellId, pin: usize) -> Cap {
        self.pin_cap[self.pin_arc_start[cell.index()] as usize + pin]
    }
}

impl TimingGraph {
    /// Builds the kernel for the current netlist topology.
    ///
    /// `lib` supplies cell *structure* (roles, pin directions, output
    /// pins); any corner variant of the same library builds the same
    /// graph, so multi-corner engines build one and share it.
    ///
    /// # Errors
    ///
    /// Propagates [`CombinationalCycle`] from levelisation.
    pub fn build(netlist: &Netlist, lib: &Library) -> Result<Self, CombinationalCycle> {
        let topo = topo_order(netlist, lib)?;
        let cap = netlist.inst_capacity();

        // Bucket the topological order into level-major CSR form. The
        // instances of one level keep their relative topological order
        // (not that it matters: they are independent by construction).
        let max_level = topo.max_level() as usize;
        let n_levels = if topo.order.is_empty() {
            0
        } else {
            max_level + 1
        };
        let mut counts = vec![0u32; n_levels];
        for id in &topo.order {
            counts[topo.level[id.index()] as usize] += 1;
        }
        let mut level_start = Vec::with_capacity(n_levels + 1);
        level_start.push(0u32);
        for c in &counts {
            level_start.push(level_start.last().unwrap() + c);
        }
        let mut cursor: Vec<u32> = level_start[..n_levels].to_vec();
        let mut order = vec![InstId(0); topo.order.len()];
        for &id in &topo.order {
            let l = topo.level[id.index()] as usize;
            order[cursor[l] as usize] = id;
            cursor[l] += 1;
        }

        // CSR pin rows: one slot per (instance, pin), tombstones
        // included so `InstId` indexes directly. The *layout* lives here
        // (pin counts never change under topology-preserving edits); the
        // ordinal values themselves are a [`SinkCache`] concern, derived
        // from the current netlist so variant swaps that reorder load
        // lists cannot leave a fresh cache stale.
        let mut pin_start = Vec::with_capacity(cap + 1);
        pin_start.push(0u32);
        for i in 0..cap {
            let n_pins = netlist.inst(InstId(i as u32)).conns.len() as u32;
            pin_start.push(pin_start.last().unwrap() + n_pins);
        }

        let ffs = netlist
            .instances()
            .filter(|(_, inst)| lib.cell(inst.cell).is_sequential())
            .map(|(id, _)| id)
            .collect();

        Ok(TimingGraph {
            order,
            level_start,
            level: topo.level,
            pin_start,
            cells: CellTables::build(lib),
            ffs,
            num_nets: netlist.num_nets(),
        })
    }

    /// Live sequential instances (in id order) at build time.
    pub(crate) fn ffs(&self) -> &[InstId] {
        &self.ffs
    }

    /// One net's static load from the flat cap table: sink pin caps in
    /// load-list order (so the float sum matches a direct recomputation
    /// bit-for-bit) plus the pad cap of any output ports. Wire cap is
    /// added at query time from the active parasitics.
    fn static_load_of(&self, netlist: &Netlist, net: &Net) -> Cap {
        let pins: Cap = net
            .loads
            .iter()
            .map(|pr| self.cells.pin_cap(netlist.inst(pr.inst).cell, pr.pin))
            .sum();
        pins + Cap::new(2.0 * net.port_loads.len() as f64)
    }

    /// Number of levels in the combinational core.
    pub fn num_levels(&self) -> usize {
        self.level_start.len() - 1
    }

    /// Combinational instances of one level.
    pub fn level_insts(&self, level: usize) -> &[InstId] {
        &self.order[self.level_start[level] as usize..self.level_start[level + 1] as usize]
    }

    /// All combinational instances in level-major order (drivers before
    /// loads, like `TopoOrder::order`).
    pub fn order(&self) -> &[InstId] {
        &self.order
    }

    /// Logic depth of an instance (`None` off the combinational core).
    pub fn level_of(&self, inst: InstId) -> Option<u32> {
        match self.level.get(inst.index()).copied() {
            Some(u32::MAX) | None => None,
            Some(l) => Some(l),
        }
    }

    /// Builds the per-consumer cache: per-net static pin loads and the
    /// sink-ordinal table, derived from (and validated against) the
    /// *current* netlist. Pin caps come from the graph's cell tables —
    /// corner derates move timing numbers, never pin geometry, so one
    /// graph serves every corner's cache.
    ///
    /// # Panics
    ///
    /// Panics on a dangling [`PinRef`] — a connected input pin missing
    /// from its net's load list. This is a broken netlist-edit
    /// invariant; continuing would price some other sink's wire delay.
    pub fn build_cache(&self, netlist: &Netlist) -> SinkCache {
        self.try_build_cache(netlist)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking form of [`TimingGraph::build_cache`]: the
    /// structured [`DanglingPinRef`] error carries the offending pin and
    /// names the lint engine's `dangling-pin-ref` rule.
    pub fn try_build_cache(&self, netlist: &Netlist) -> Result<SinkCache, DanglingPinRef> {
        let mut cache = SinkCache {
            ord: vec![NO_ORD; *self.pin_start.last().unwrap() as usize],
            load: Vec::with_capacity(self.num_nets),
        };
        // One fused zero-copy pass over every net's load row (the same
        // rows `Netlist::load_csr` exports, which the structural lint
        // cross-validates): sink ordinals and the static load sum,
        // accumulated in load-list order so the float sum matches a
        // direct recomputation bit-for-bit.
        for (_, net) in netlist.nets() {
            let mut pins = Cap::ZERO;
            for (ord, pr) in net.loads.iter().enumerate() {
                cache.ord[self.pin_start[pr.inst.index()] as usize + pr.pin] = ord as u32;
                pins += self.cells.pin_cap(netlist.inst(pr.inst).cell, pr.pin);
            }
            cache
                .load
                .push(pins + Cap::new(2.0 * net.port_loads.len() as f64));
        }
        // Validate every pin whose ordinal timing will query — logic
        // inputs and FF `D` pins: each must be a load of the net it
        // claims, at the ordinal the cache holds.
        let check = |pin: usize, id: InstId, inst: &smt_netlist::netlist::Instance| {
            let Some(net) = inst.net_on(pin) else {
                return Ok(());
            };
            let pr = PinRef { inst: id, pin };
            let ord = cache.ord[self.pin_start[id.index()] as usize + pin];
            if ord == NO_ORD || netlist.net(net).loads.get(ord as usize) != Some(&pr) {
                return Err(DanglingPinRef {
                    pin: pr,
                    net: Some(netlist.net(net).name.clone()),
                });
            }
            Ok(())
        };
        for (id, inst) in netlist.instances() {
            for &pin in self.cells.inputs(inst.cell) {
                check(pin as usize, id, inst)?;
            }
            if let Some(dp) = self.cells.d_pin(inst.cell) {
                check(dp, id, inst)?;
            }
        }
        Ok(cache)
    }

    /// Sink ordinal of an input pin from the per-consumer cache.
    ///
    /// # Panics
    ///
    /// Panics (in release builds too) when the pin is not a load of any
    /// net — see [`TimingGraph::build_cache`].
    #[inline]
    pub(crate) fn ordinal(&self, cache: &SinkCache, pr: PinRef) -> usize {
        let ord = cache.ord[self.pin_start[pr.inst.index()] as usize + pr.pin];
        if ord == NO_ORD {
            dangling_lookup(pr);
        }
        ord as usize
    }

    /// Evaluates one instance's output arrival/slew from the given
    /// propagation state — the one delay formula every consumer shares.
    /// Returns `(net, arrival, arrival_min, slew)`, or `None` for cells
    /// without a timed output.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_inst(
        &self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        derating: &Derating,
        source_slew: Time,
        cache: &SinkCache,
        state: &PropState,
        id: InstId,
    ) -> Option<(NetId, Time, Time, Time)> {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        let onet = inst.net_on(self.cells.out_pin(inst.cell)?)?;
        let load = cache.load[onet.index()] + parasitics.net(onet).wire_cap;
        let mut best = Time::ZERO;
        let mut best_min = Time::new(f64::INFINITY);
        let mut best_slew = source_slew;
        let mut any_input = false;
        let pin_row = self.pin_start[id.index()] as usize;
        for &pin in self.cells.inputs(inst.cell) {
            let pin = pin as usize;
            let Some(inet) = inst.net_on(pin) else {
                continue;
            };
            let Some(arc_idx) = self.cells.arc_idx(inst.cell, pin) else {
                continue;
            };
            let arc = &cell.arcs[arc_idx];
            any_input = true;
            let ord = cache.ord[pin_row + pin];
            if ord == NO_ORD {
                dangling_lookup(PinRef { inst: id, pin });
            }
            let ord = ord as usize;
            let wire = parasitics.net(inet).elmore(ord);
            let at = state.arrival[inet.index()] + wire;
            let at_min = state.arrival_min[inet.index()] + wire;
            let d = arc.delay(state.slew[inet.index()], load) * derating.factor(id);
            if at + d > best {
                best = at + d;
                best_slew = arc.output_slew(load);
            }
            best_min = best_min.min(at_min + d);
        }
        any_input.then_some((onet, best, best_min, best_slew))
    }

    /// Seeds timing sources — primary inputs and flip-flop `Q` pins —
    /// into a fresh propagation state.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn seed_sources(
        &self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        config: &StaConfig,
        derating: &Derating,
        cache: &SinkCache,
        state: &mut PropState,
    ) {
        for (_, port) in netlist.ports() {
            if port.dir == PortDir::Input {
                state.arrival[port.net.index()] = config.input_delay;
                state.arrival_min[port.net.index()] = config.input_delay;
                state.slew[port.net.index()] = config.source_slew;
            }
        }
        for &id in &self.ffs {
            let inst = netlist.inst(id);
            let cell = lib.cell(inst.cell);
            let Some(qp) = self.cells.out_pin(inst.cell) else {
                continue;
            };
            let Some(qnet) = inst.net_on(qp) else {
                continue;
            };
            let load = cache.load[qnet.index()] + parasitics.net(qnet).wire_cap;
            if let Some(arc) = cell.arcs.first() {
                let d = arc.delay(config.source_slew, load) * derating.factor(id);
                state.arrival[qnet.index()] = d;
                state.arrival_min[qnet.index()] = d;
                state.slew[qnet.index()] = arc.output_slew(load);
            }
        }
    }

    /// Runs the level-parallel forward propagation: sources are seeded,
    /// then each level is evaluated in order — inline when narrow, fanned
    /// out over the shared [`parallel_map`] worker pool when at least
    /// `PARALLEL_LEVEL_WIDTH` (4096) instances wide.
    ///
    /// Instances within a level are independent (each reads nets
    /// finalized in strictly lower levels and writes its own output
    /// net), and results are written back in item order, so the state
    /// this produces is bit-identical for any worker count — and to the
    /// legacy sequential propagation.
    pub fn propagate(
        &self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        config: &StaConfig,
        derating: &Derating,
        cache: &SinkCache,
    ) -> PropState {
        let mut state = PropState {
            arrival: vec![Time::ZERO; self.num_nets],
            arrival_min: vec![Time::new(f64::INFINITY); self.num_nets],
            slew: vec![config.source_slew; self.num_nets],
        };
        self.seed_sources(
            netlist, lib, parasitics, config, derating, cache, &mut state,
        );
        for level in 0..self.num_levels() {
            let insts = self.level_insts(level);
            if insts.len() >= PARALLEL_LEVEL_WIDTH {
                let results = parallel_map(insts, 0, |&id| {
                    self.eval_inst(
                        netlist,
                        lib,
                        parasitics,
                        derating,
                        config.source_slew,
                        cache,
                        &state,
                        id,
                    )
                });
                for (net, at, at_min, sl) in results.into_iter().flatten() {
                    state.arrival[net.index()] = at;
                    state.arrival_min[net.index()] = at_min;
                    state.slew[net.index()] = sl;
                }
            } else {
                for &id in insts {
                    if let Some((net, at, at_min, sl)) = self.eval_inst(
                        netlist,
                        lib,
                        parasitics,
                        derating,
                        config.source_slew,
                        cache,
                        &state,
                        id,
                    ) {
                        state.arrival[net.index()] = at;
                        state.arrival_min[net.index()] = at_min;
                        state.slew[net.index()] = sl;
                    }
                }
            }
        }
        state
    }
}

/// Per-consumer, library-dependent companion to a shared
/// [`TimingGraph`]: per-net static loads (sink pin caps + port pad
/// caps, wire cap excluded) and the sink-ordinal table. A resident
/// engine refreshes the nets an edit touched via
/// [`SinkCache::refresh_net`]; one-shot analysis builds a fresh cache
/// per call.
#[derive(Debug, Clone)]
pub struct SinkCache {
    /// Sink ordinal per (instance, pin), CSR-indexed through the
    /// graph's `pin_start`.
    ord: Vec<u32>,
    /// Static load per net.
    load: Vec<Cap>,
}

impl SinkCache {
    /// The static (wire-cap-excluded) load of a net.
    #[inline]
    pub fn static_load(&self, net: NetId) -> Cap {
        self.load[net.index()]
    }

    /// Re-derives one net's static load and its sinks' ordinals from
    /// the current netlist — called by resident engines for every net
    /// on an edited instance's pins, whose load lists a
    /// `replace_cell`-style edit reorders.
    pub fn refresh_net(&mut self, graph: &TimingGraph, netlist: &Netlist, net: NetId) {
        let n = netlist.net(net);
        self.load[net.index()] = graph.static_load_of(netlist, n);
        for (ord, pr) in n.loads.iter().enumerate() {
            self.ord[graph.pin_start[pr.inst.index()] as usize + pr.pin] = ord as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "dangling PinRef")]
    fn dangling_pinref_is_a_hard_error() {
        // A net whose load list does not contain the queried pin: the
        // pre-kernel code silently returned ordinal 0 (the *first*
        // sink's Elmore delay); now it is a hard error.
        let net = Net {
            name: "w".to_owned(),
            loads: vec![PinRef {
                inst: InstId(3),
                pin: 1,
            }],
            ..Net::default()
        };
        let _ = sink_ordinal(
            &net,
            PinRef {
                inst: InstId(7),
                pin: 0,
            },
        );
    }

    #[test]
    fn dangling_error_names_the_lint_rule() {
        // STA and the static analyzer share vocabulary: the structured
        // error (and the panic message built from it) names the
        // `dangling-pin-ref` rule `smt-lint` reports for the same net.
        let net = Net {
            name: "w".to_owned(),
            ..Net::default()
        };
        let pr = PinRef {
            inst: InstId(7),
            pin: 0,
        };
        let err = try_sink_ordinal(&net, pr).unwrap_err();
        assert_eq!(err.rule(), RuleId::DanglingPinRef);
        assert_eq!(err.pin, pr);
        assert!(err.to_string().contains(RuleId::DanglingPinRef.key()));
        assert!(err.to_string().contains("dangling PinRef"));
    }

    #[test]
    fn wide_level_takes_the_parallel_path_and_stays_bit_identical() {
        // One level wider than PARALLEL_LEVEL_WIDTH: a flat bank of
        // inverters all fed from one input. This is the only test that
        // exercises the worker-pool branch of `propagate`, so it pins
        // the "bit-identical for any worker count" guarantee.
        use crate::analysis::{analyze, analyze_baseline, StaConfig};
        let lib = Library::industrial_130nm();
        let mut n = Netlist::new("wide");
        let a = n.add_input("a");
        let inv = lib.find_id("INV_X1_L").unwrap();
        let width = PARALLEL_LEVEL_WIDTH + 64;
        for i in 0..width {
            let w = n.add_net(&format!("w{i}"));
            let u = n.add_instance(&format!("u{i}"), inv, &lib);
            n.connect_by_name(u, "A", a, &lib).unwrap();
            n.connect_by_name(u, "Z", w, &lib).unwrap();
        }
        n.expose_output("z", n.find_net("w0").unwrap());

        let graph = TimingGraph::build(&n, &lib).unwrap();
        assert_eq!(graph.num_levels(), 1);
        assert!(graph.level_insts(0).len() >= PARALLEL_LEVEL_WIDTH);

        let par = Parasitics::default(); // zero-RC: nets read as EMPTY
        let cfg = StaConfig::default();
        let der = Derating::none();
        let new = analyze(&n, &lib, &par, &cfg, &der).unwrap();
        let old = analyze_baseline(&n, &lib, &par, &cfg, &der).unwrap();
        assert_eq!(new.arrival, old.arrival);
        assert_eq!(new.arrival_min, old.arrival_min);
        assert_eq!(new.slew, old.slew);
        assert_eq!(new.required, old.required);
        assert_eq!(new.wns, old.wns);
    }

    #[test]
    fn present_pinref_resolves_to_its_position() {
        let a = PinRef {
            inst: InstId(3),
            pin: 1,
        };
        let b = PinRef {
            inst: InstId(5),
            pin: 0,
        };
        let net = Net {
            name: "w".to_owned(),
            loads: vec![a, b],
            ..Net::default()
        };
        assert_eq!(sink_ordinal(&net, a), 0);
        assert_eq!(sink_ordinal(&net, b), 1);
    }
}
