//! Incremental timing: cone-limited arrival re-propagation after cell
//! swaps.
//!
//! The Vth-assignment loops make thousands of what-if cell swaps, each of
//! which only perturbs timing *downstream of the swapped cell*. This
//! engine keeps arrival/slew state resident and, on
//! [`IncrementalSta::update_after_swap`], re-evaluates only the affected
//! fan-out cone (plus the swapped cell's fan-in drivers, whose loads
//! changed), with early termination where arrivals converge back to their
//! old values.
//!
//! Both setup (max-arrival) and hold (min-arrival) state are maintained:
//! endpoint *required* times depend only on the clock, the endpoint
//! cell's setup/hold and its wire delay — none of which an upstream Vth
//! swap changes — so re-deriving endpoint slacks from the updated
//! arrivals reproduces the full analysis. The per-endpoint slack is
//! computed with the same operation order as
//! [`analyze`](crate::analysis::analyze), so a freshly-built engine
//! reports bit-identical arrivals and WNS.

use crate::analysis::{Derating, HoldViolation, StaConfig};
use smt_base::units::{Cap, Time};
use smt_cells::library::Library;
use smt_netlist::graph::{topo_order, CombinationalCycle, TopoOrder};
use smt_netlist::netlist::{InstId, NetDriver, NetId, Netlist, PinRef, PortDir};
use smt_route::Parasitics;
use std::collections::BinaryHeap;

/// A setup endpoint: required time and the endpoint wire delay, kept
/// separate so slack is computed exactly as the full analysis does
/// (`req − (arrival + wire)`).
#[derive(Debug, Clone, Copy)]
struct SetupEndpoint {
    net: NetId,
    /// Required time excluding the endpoint wire (`period − skew −
    /// margin` for ports, `period − skew − setup` for FF D pins).
    req: Time,
    /// Elmore delay of the endpoint sink pin (zero for ports).
    wire: Time,
}

/// A hold check at a flip-flop D pin.
#[derive(Debug, Clone, Copy)]
struct HoldCheck {
    ff: InstId,
    net: NetId,
    wire: Time,
    /// Min-arrival requirement (`hold + skew`).
    need: Time,
}

/// Persistent incremental setup+hold timing state.
#[derive(Debug, Clone)]
pub struct IncrementalSta {
    topo: TopoOrder,
    config: StaConfig,
    arrival: Vec<Time>,
    arrival_min: Vec<Time>,
    slew: Vec<Time>,
    endpoints: Vec<SetupEndpoint>,
    hold_checks: Vec<HoldCheck>,
}

impl IncrementalSta {
    /// Builds the engine and runs the initial full propagation.
    ///
    /// # Errors
    ///
    /// Propagates [`CombinationalCycle`] from levelisation.
    pub fn new(
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        config: &StaConfig,
        derating: &Derating,
    ) -> Result<Self, CombinationalCycle> {
        let topo = topo_order(netlist, lib)?;
        let mut s = IncrementalSta {
            topo,
            config: config.clone(),
            arrival: vec![Time::ZERO; netlist.num_nets()],
            arrival_min: vec![Time::new(f64::INFINITY); netlist.num_nets()],
            slew: vec![config.source_slew; netlist.num_nets()],
            endpoints: Vec::new(),
            hold_checks: Vec::new(),
        };
        s.collect_endpoints(netlist, lib, parasitics);
        s.full_propagate(netlist, lib, parasitics, derating);
        Ok(s)
    }

    fn collect_endpoints(&mut self, netlist: &Netlist, lib: &Library, parasitics: &Parasitics) {
        let req0 = self.config.clock_period - self.config.clock_skew;
        self.endpoints.clear();
        self.hold_checks.clear();
        for (_, port) in netlist.ports() {
            if port.dir == PortDir::Output {
                self.endpoints.push(SetupEndpoint {
                    net: port.net,
                    req: req0 - self.config.output_margin,
                    wire: Time::ZERO,
                });
            }
        }
        for (id, inst) in netlist.instances() {
            let cell = lib.cell(inst.cell);
            if !cell.is_sequential() {
                continue;
            }
            if let Some(dp) = cell.pin_index("D") {
                if let Some(dnet) = inst.net_on(dp) {
                    let ord = sink_ordinal(netlist, dnet, PinRef { inst: id, pin: dp });
                    let wire = parasitics.net(dnet).elmore(ord);
                    self.endpoints.push(SetupEndpoint {
                        net: dnet,
                        req: req0 - cell.setup,
                        wire,
                    });
                    self.hold_checks.push(HoldCheck {
                        ff: id,
                        net: dnet,
                        wire,
                        need: cell.hold + self.config.clock_skew,
                    });
                }
            }
        }
    }

    fn net_load(netlist: &Netlist, lib: &Library, parasitics: &Parasitics, net: NetId) -> Cap {
        let n = netlist.net(net);
        let pins: Cap = n
            .loads
            .iter()
            .map(|pr| lib.cell(netlist.inst(pr.inst).cell).pins[pr.pin].cap)
            .sum();
        pins + Cap::new(2.0 * n.port_loads.len() as f64) + parasitics.net(net).wire_cap
    }

    /// Evaluates one instance's output arrival/slew from current state.
    /// Returns `(net, arrival, arrival_min, slew)` or `None` for cells
    /// without a timed output.
    fn eval(
        &self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        derating: &Derating,
        id: InstId,
    ) -> Option<(NetId, Time, Time, Time)> {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        let onet = inst.net_on(cell.output_pin()?)?;
        let load = Self::net_load(netlist, lib, parasitics, onet);
        let mut best = Time::ZERO;
        let mut best_min = Time::new(f64::INFINITY);
        let mut best_slew = self.config.source_slew;
        let mut any = false;
        for &pin in &cell.logic_input_pins() {
            let Some(inet) = inst.net_on(pin) else {
                continue;
            };
            let Some(arc) = cell.arc_from(pin) else {
                continue;
            };
            any = true;
            let ord = sink_ordinal(netlist, inet, PinRef { inst: id, pin });
            let wire = parasitics.net(inet).elmore(ord);
            let at = self.arrival[inet.index()] + wire;
            let at_min = self.arrival_min[inet.index()] + wire;
            let d = arc.delay(self.slew[inet.index()], load) * derating.factor(id);
            if at + d > best {
                best = at + d;
                best_slew = arc.output_slew(load);
            }
            best_min = best_min.min(at_min + d);
        }
        any.then_some((onet, best, best_min, best_slew))
    }

    fn seed_sources(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        derating: &Derating,
    ) {
        for (_, port) in netlist.ports() {
            if port.dir == PortDir::Input {
                self.arrival[port.net.index()] = self.config.input_delay;
                self.arrival_min[port.net.index()] = self.config.input_delay;
                self.slew[port.net.index()] = self.config.source_slew;
            }
        }
        for (id, inst) in netlist.instances() {
            let cell = lib.cell(inst.cell);
            if !cell.is_sequential() {
                continue;
            }
            let Some(qp) = cell.output_pin() else {
                continue;
            };
            let Some(qnet) = inst.net_on(qp) else {
                continue;
            };
            let load = Self::net_load(netlist, lib, parasitics, qnet);
            if let Some(arc) = cell.arcs.first() {
                let d = arc.delay(self.config.source_slew, load) * derating.factor(id);
                self.arrival[qnet.index()] = d;
                self.arrival_min[qnet.index()] = d;
                self.slew[qnet.index()] = arc.output_slew(load);
            }
        }
    }

    fn full_propagate(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        derating: &Derating,
    ) {
        self.seed_sources(netlist, lib, parasitics, derating);
        for &id in &self.topo.order.clone() {
            if let Some((net, at, at_min, sl)) = self.eval(netlist, lib, parasitics, derating, id) {
                self.arrival[net.index()] = at;
                self.arrival_min[net.index()] = at_min;
                self.slew[net.index()] = sl;
            }
        }
    }

    /// Re-times after the cell of `swapped` changed variant (same pins).
    ///
    /// Re-evaluates the swapped instance, the *drivers of its inputs*
    /// (their load changed if pin caps differ across variants — with this
    /// library they do not, but the engine stays correct if they do), and
    /// then the fan-out cone in level order with convergence cut-off.
    pub fn update_after_swap(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        derating: &Derating,
        swapped: InstId,
    ) {
        // Worklist keyed by topo level so each instance is evaluated after its
        // perturbed fan-ins.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u32)>> = BinaryHeap::new();
        let mut queued = vec![false; netlist.inst_capacity()];
        let push = |heap: &mut BinaryHeap<_>, queued: &mut Vec<bool>, id: InstId, level: u32| {
            if !queued[id.index()] {
                queued[id.index()] = true;
                heap.push(std::cmp::Reverse((level, id.0)));
            }
        };
        let level_of = |id: InstId| -> u32 {
            let l = self.topo.level.get(id.index()).copied().unwrap_or(0);
            if l == u32::MAX {
                0
            } else {
                l
            }
        };
        // Fan-in drivers (their output load could change).
        {
            let inst = netlist.inst(swapped);
            let cell = lib.cell(inst.cell);
            for &pin in &cell.logic_input_pins() {
                if let Some(inet) = inst.net_on(pin) {
                    if let Some(NetDriver::Inst(pr)) = netlist.net(inet).driver {
                        if lib.cell(netlist.inst(pr.inst).cell).is_logic() {
                            push(&mut heap, &mut queued, pr.inst, level_of(pr.inst));
                        }
                    }
                }
            }
        }
        push(&mut heap, &mut queued, swapped, level_of(swapped));

        // Converged when both sides agree exactly (covers the ±inf case of
        // never-seeded min-arrivals) or within the re-propagation epsilon.
        let close = |a: Time, b: Time| a == b || (a - b).abs().ps() < 1e-9;
        while let Some(std::cmp::Reverse((_, raw))) = heap.pop() {
            let id = InstId(raw);
            queued[id.index()] = false;
            let cell = lib.cell(netlist.inst(id).cell);
            if !cell.is_logic() {
                continue;
            }
            let Some((net, at, at_min, sl)) = self.eval(netlist, lib, parasitics, derating, id)
            else {
                continue;
            };
            let old_at = self.arrival[net.index()];
            let old_min = self.arrival_min[net.index()];
            let old_sl = self.slew[net.index()];
            if close(at, old_at) && close(at_min, old_min) && close(sl, old_sl) {
                continue; // converged: the cone below is unaffected
            }
            self.arrival[net.index()] = at;
            self.arrival_min[net.index()] = at_min;
            self.slew[net.index()] = sl;
            for load in &netlist.net(net).loads {
                if lib.cell(netlist.inst(load.inst).cell).is_logic() {
                    push(&mut heap, &mut queued, load.inst, level_of(load.inst));
                }
            }
        }
    }

    /// Current (max) arrival of a net.
    pub fn arrival(&self, net: NetId) -> Time {
        self.arrival[net.index()]
    }

    /// Current min arrival of a net (`+inf` for unconstrained nets, as in
    /// the full analysis).
    pub fn arrival_min(&self, net: NetId) -> Time {
        self.arrival_min[net.index()]
    }

    /// Current setup WNS from the maintained arrivals.
    pub fn wns(&self) -> Time {
        let mut wns = Time::new(f64::INFINITY);
        for ep in &self.endpoints {
            let at = self.arrival[ep.net.index()] + ep.wire;
            wns = wns.min(ep.req - at);
        }
        if wns.is_finite() {
            wns
        } else {
            self.config.clock_period
        }
    }

    /// Current hold violations from the maintained min arrivals, in the
    /// same flip-flop order as the full analysis.
    pub fn hold_violations(&self) -> Vec<HoldViolation> {
        let mut out = Vec::new();
        for hc in &self.hold_checks {
            let mut at_min = self.arrival_min[hc.net.index()];
            if !at_min.is_finite() {
                at_min = Time::ZERO;
            }
            let at_min = at_min + hc.wire;
            if at_min < hc.need {
                out.push(HoldViolation {
                    ff: hc.ff,
                    arrival_min: at_min,
                    required: hc.need,
                });
            }
        }
        out
    }

    /// Worst (most negative) hold slack, or `None` when the design has no
    /// hold checks.
    pub fn hold_wns(&self) -> Option<Time> {
        self.hold_checks
            .iter()
            .map(|hc| {
                let mut at_min = self.arrival_min[hc.net.index()];
                if !at_min.is_finite() {
                    at_min = Time::ZERO;
                }
                at_min + hc.wire - hc.need
            })
            .min_by(|a, b| a.partial_cmp(b).expect("finite hold slack"))
    }
}

fn sink_ordinal(netlist: &Netlist, net: NetId, pr: PinRef) -> usize {
    netlist
        .net(net)
        .loads
        .iter()
        .position(|l| *l == pr)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use smt_cells::cell::VthClass;
    use smt_circuits::gen::{random_logic, RandomLogicConfig};
    use smt_place::{place, PlacerConfig};

    /// The contract: after any sequence of swaps, incremental WNS equals a
    /// from-scratch full analysis.
    #[test]
    fn incremental_matches_full_sta_over_random_swaps() {
        let lib = Library::industrial_130nm();
        for seed in [1u64, 9, 23] {
            let mut n = random_logic(
                &lib,
                &RandomLogicConfig {
                    gates: 250,
                    seed,
                    ..RandomLogicConfig::default()
                },
            );
            let p = place(&n, &lib, &PlacerConfig::default());
            let par = Parasitics::estimate(&n, &lib, &p);
            let cfg = StaConfig::default();
            let der = Derating::none();
            let mut inc = IncrementalSta::new(&n, &lib, &par, &cfg, &der).unwrap();

            // Swap a pseudo-random subset of logic cells L<->H, checking
            // after each swap.
            let ids: Vec<InstId> = n
                .instances()
                .filter(|(_, i)| lib.cell(i.cell).is_logic())
                .map(|(id, _)| id)
                .collect();
            let mut rng = smt_base::SplitMix64::new(seed);
            for k in 0..24 {
                let id = *rng.choose(&ids);
                let cell = lib.cell(n.inst(id).cell);
                let target = if cell.vth == VthClass::Low {
                    VthClass::High
                } else {
                    VthClass::Low
                };
                let Some(v) = lib.variant_id(n.inst(id).cell, target) else {
                    continue;
                };
                n.replace_cell(id, v, &lib).unwrap();
                inc.update_after_swap(&n, &lib, &par, &der, id);

                let full = analyze(&n, &lib, &par, &cfg, &der).unwrap();
                assert!(
                    (inc.wns() - full.wns).abs().ps() < 1e-6,
                    "seed {seed} swap {k}: incremental {} vs full {}",
                    inc.wns(),
                    full.wns
                );
                assert_eq!(
                    inc.hold_violations().len(),
                    full.hold_violations.len(),
                    "seed {seed} swap {k}: hold violation count"
                );
            }
        }
    }

    #[test]
    fn arrivals_match_full_sta_everywhere() {
        let lib = Library::industrial_130nm();
        let mut n = random_logic(
            &lib,
            &RandomLogicConfig {
                gates: 150,
                seed: 5,
                ..RandomLogicConfig::default()
            },
        );
        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        let cfg = StaConfig::default();
        let der = Derating::none();
        let mut inc = IncrementalSta::new(&n, &lib, &par, &cfg, &der).unwrap();
        // One swap deep in the design.
        let id = n
            .instances()
            .find(|(_, i)| lib.cell(i.cell).is_logic())
            .map(|(id, _)| id)
            .unwrap();
        let v = lib.variant_id(n.inst(id).cell, VthClass::High).unwrap();
        n.replace_cell(id, v, &lib).unwrap();
        inc.update_after_swap(&n, &lib, &par, &der, id);
        let full = analyze(&n, &lib, &par, &cfg, &der).unwrap();
        for (net, _) in n.nets() {
            assert!(
                (inc.arrival(net) - full.arrival[net.index()]).abs().ps() < 1e-6,
                "net {net}: {} vs {}",
                inc.arrival(net),
                full.arrival[net.index()]
            );
            let fm = full.arrival_min[net.index()];
            let im = inc.arrival_min(net);
            assert!(
                im == fm || (im - fm).abs().ps() < 1e-6,
                "net {net}: min {im} vs {fm}"
            );
        }
    }

    #[test]
    fn fresh_engine_is_bit_identical_to_full_sta() {
        let lib = Library::industrial_130nm();
        for seed in [2u64, 7, 40] {
            let n = random_logic(
                &lib,
                &RandomLogicConfig {
                    gates: 200,
                    seed,
                    ..RandomLogicConfig::default()
                },
            );
            let p = place(&n, &lib, &PlacerConfig::default());
            let par = Parasitics::estimate(&n, &lib, &p);
            let cfg = StaConfig::default();
            let der = Derating::none();
            let inc = IncrementalSta::new(&n, &lib, &par, &cfg, &der).unwrap();
            let full = analyze(&n, &lib, &par, &cfg, &der).unwrap();
            for (net, _) in n.nets() {
                assert_eq!(inc.arrival(net), full.arrival[net.index()], "seed {seed}");
                assert_eq!(
                    inc.arrival_min(net),
                    full.arrival_min[net.index()],
                    "seed {seed}"
                );
            }
            assert_eq!(inc.wns(), full.wns, "seed {seed}");
            assert_eq!(
                inc.hold_violations(),
                full.hold_violations,
                "seed {seed}: hold"
            );
        }
    }
}
