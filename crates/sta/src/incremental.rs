//! Incremental timing: cone-limited arrival re-propagation after cell
//! swaps.
//!
//! The Vth-assignment loops make thousands of what-if cell swaps, each of
//! which only perturbs timing *downstream of the swapped cell*. This
//! engine keeps arrival/slew state resident and, on
//! [`IncrementalSta::update_after_swap`], re-evaluates only the affected
//! fan-out cone (plus the swapped cell's fan-in drivers, whose loads
//! changed), with early termination where arrivals converge back to their
//! old values.
//!
//! Setup WNS is maintained exactly: endpoint *required* times depend only
//! on the clock, the endpoint cell's setup and its wire delay — none of
//! which an upstream Vth swap changes — so re-deriving endpoint slacks
//! from the updated arrivals reproduces the full analysis.

use crate::analysis::{Derating, StaConfig};
use smt_base::units::{Cap, Time};
use smt_cells::library::Library;
use smt_netlist::graph::{topo_order, CombinationalCycle, TopoOrder};
use smt_netlist::netlist::{InstId, NetDriver, NetId, Netlist, PinRef, PortDir};
use smt_route::Parasitics;
use std::collections::BinaryHeap;

/// Persistent incremental setup-timing state.
#[derive(Debug, Clone)]
pub struct IncrementalSta {
    topo: TopoOrder,
    config: StaConfig,
    arrival: Vec<Time>,
    slew: Vec<Time>,
    /// Static required time per endpoint: `(net, required)`.
    endpoints: Vec<(NetId, Time)>,
}

impl IncrementalSta {
    /// Builds the engine and runs the initial full propagation.
    ///
    /// # Errors
    ///
    /// Propagates [`CombinationalCycle`] from levelisation.
    pub fn new(
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        config: &StaConfig,
        derating: &Derating,
    ) -> Result<Self, CombinationalCycle> {
        let topo = topo_order(netlist, lib)?;
        let mut s = IncrementalSta {
            topo,
            config: config.clone(),
            arrival: vec![Time::ZERO; netlist.num_nets()],
            slew: vec![config.source_slew; netlist.num_nets()],
            endpoints: Vec::new(),
        };
        s.collect_endpoints(netlist, lib, parasitics);
        s.full_propagate(netlist, lib, parasitics, derating);
        Ok(s)
    }

    fn collect_endpoints(&mut self, netlist: &Netlist, lib: &Library, parasitics: &Parasitics) {
        let req0 = self.config.clock_period - self.config.clock_skew;
        self.endpoints.clear();
        for (_, port) in netlist.ports() {
            if port.dir == PortDir::Output {
                self.endpoints
                    .push((port.net, req0 - self.config.output_margin));
            }
        }
        for (id, inst) in netlist.instances() {
            let cell = lib.cell(inst.cell);
            if !cell.is_sequential() {
                continue;
            }
            if let Some(dp) = cell.pin_index("D") {
                if let Some(dnet) = inst.net_on(dp) {
                    let ord = sink_ordinal(netlist, dnet, PinRef { inst: id, pin: dp });
                    let wire = parasitics.net(dnet).elmore(ord);
                    self.endpoints.push((dnet, req0 - cell.setup - wire));
                }
            }
        }
    }

    fn net_load(netlist: &Netlist, lib: &Library, parasitics: &Parasitics, net: NetId) -> Cap {
        let n = netlist.net(net);
        let pins: Cap = n
            .loads
            .iter()
            .map(|pr| lib.cell(netlist.inst(pr.inst).cell).pins[pr.pin].cap)
            .sum();
        pins + Cap::new(2.0 * n.port_loads.len() as f64) + parasitics.net(net).wire_cap
    }

    /// Evaluates one instance's output arrival/slew from current state.
    /// Returns `(net, arrival, slew)` or `None` for cells without a timed
    /// output.
    fn eval(
        &self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        derating: &Derating,
        id: InstId,
    ) -> Option<(NetId, Time, Time)> {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        let onet = inst.net_on(cell.output_pin()?)?;
        let load = Self::net_load(netlist, lib, parasitics, onet);
        let mut best = Time::ZERO;
        let mut best_slew = self.config.source_slew;
        let mut any = false;
        for &pin in &cell.logic_input_pins() {
            let Some(inet) = inst.net_on(pin) else {
                continue;
            };
            let Some(arc) = cell.arc_from(pin) else {
                continue;
            };
            any = true;
            let ord = sink_ordinal(netlist, inet, PinRef { inst: id, pin });
            let wire = parasitics.net(inet).elmore(ord);
            let at = self.arrival[inet.index()] + wire;
            let d = arc.delay(self.slew[inet.index()], load) * derating.factor(id);
            if at + d > best {
                best = at + d;
                best_slew = arc.output_slew(load);
            }
        }
        any.then_some((onet, best, best_slew))
    }

    fn seed_sources(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        derating: &Derating,
    ) {
        for (_, port) in netlist.ports() {
            if port.dir == PortDir::Input {
                self.arrival[port.net.index()] = self.config.input_delay;
                self.slew[port.net.index()] = self.config.source_slew;
            }
        }
        for (id, inst) in netlist.instances() {
            let cell = lib.cell(inst.cell);
            if !cell.is_sequential() {
                continue;
            }
            let Some(qp) = cell.output_pin() else {
                continue;
            };
            let Some(qnet) = inst.net_on(qp) else {
                continue;
            };
            let load = Self::net_load(netlist, lib, parasitics, qnet);
            if let Some(arc) = cell.arcs.first() {
                self.arrival[qnet.index()] =
                    arc.delay(self.config.source_slew, load) * derating.factor(id);
                self.slew[qnet.index()] = arc.output_slew(load);
            }
        }
    }

    fn full_propagate(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        derating: &Derating,
    ) {
        self.seed_sources(netlist, lib, parasitics, derating);
        for &id in &self.topo.order.clone() {
            if let Some((net, at, sl)) = self.eval(netlist, lib, parasitics, derating, id) {
                self.arrival[net.index()] = at;
                self.slew[net.index()] = sl;
            }
        }
    }

    /// Re-times after the cell of `swapped` changed variant (same pins).
    ///
    /// Re-evaluates the swapped instance, the *drivers of its inputs*
    /// (their load changed if pin caps differ across variants — with this
    /// library they do not, but the engine stays correct if they do), and
    /// then the fan-out cone in level order with convergence cut-off.
    pub fn update_after_swap(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        derating: &Derating,
        swapped: InstId,
    ) {
        // Worklist keyed by topo level so each instance is evaluated after its
        // perturbed fan-ins.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u32)>> = BinaryHeap::new();
        let mut queued = vec![false; netlist.inst_capacity()];
        let push = |heap: &mut BinaryHeap<_>, queued: &mut Vec<bool>, id: InstId, level: u32| {
            if !queued[id.index()] {
                queued[id.index()] = true;
                heap.push(std::cmp::Reverse((level, id.0)));
            }
        };
        let level_of = |id: InstId| -> u32 {
            let l = self.topo.level.get(id.index()).copied().unwrap_or(0);
            if l == u32::MAX {
                0
            } else {
                l
            }
        };
        // Fan-in drivers (their output load could change).
        {
            let inst = netlist.inst(swapped);
            let cell = lib.cell(inst.cell);
            for &pin in &cell.logic_input_pins() {
                if let Some(inet) = inst.net_on(pin) {
                    if let Some(NetDriver::Inst(pr)) = netlist.net(inet).driver {
                        if lib.cell(netlist.inst(pr.inst).cell).is_logic() {
                            push(&mut heap, &mut queued, pr.inst, level_of(pr.inst));
                        }
                    }
                }
            }
        }
        push(&mut heap, &mut queued, swapped, level_of(swapped));

        while let Some(std::cmp::Reverse((_, raw))) = heap.pop() {
            let id = InstId(raw);
            queued[id.index()] = false;
            let cell = lib.cell(netlist.inst(id).cell);
            if !cell.is_logic() {
                continue;
            }
            let Some((net, at, sl)) = self.eval(netlist, lib, parasitics, derating, id) else {
                continue;
            };
            let old_at = self.arrival[net.index()];
            let old_sl = self.slew[net.index()];
            if (at - old_at).abs().ps() < 1e-9 && (sl - old_sl).abs().ps() < 1e-9 {
                continue; // converged: the cone below is unaffected
            }
            self.arrival[net.index()] = at;
            self.slew[net.index()] = sl;
            for load in &netlist.net(net).loads {
                if lib.cell(netlist.inst(load.inst).cell).is_logic() {
                    push(&mut heap, &mut queued, load.inst, level_of(load.inst));
                }
            }
        }
    }

    /// Current arrival of a net.
    pub fn arrival(&self, net: NetId) -> Time {
        self.arrival[net.index()]
    }

    /// Current setup WNS from the maintained arrivals.
    pub fn wns(&self) -> Time {
        let mut wns = Time::new(f64::INFINITY);
        for &(net, req) in &self.endpoints {
            wns = wns.min(req - self.arrival[net.index()]);
        }
        if wns.is_finite() {
            wns
        } else {
            self.config.clock_period
        }
    }
}

fn sink_ordinal(netlist: &Netlist, net: NetId, pr: PinRef) -> usize {
    netlist
        .net(net)
        .loads
        .iter()
        .position(|l| *l == pr)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use smt_cells::cell::VthClass;
    use smt_circuits::gen::{random_logic, RandomLogicConfig};
    use smt_place::{place, PlacerConfig};

    /// The contract: after any sequence of swaps, incremental WNS equals a
    /// from-scratch full analysis.
    #[test]
    fn incremental_matches_full_sta_over_random_swaps() {
        let lib = Library::industrial_130nm();
        for seed in [1u64, 9, 23] {
            let mut n = random_logic(
                &lib,
                &RandomLogicConfig {
                    gates: 250,
                    seed,
                    ..RandomLogicConfig::default()
                },
            );
            let p = place(&n, &lib, &PlacerConfig::default());
            let par = Parasitics::estimate(&n, &lib, &p);
            let cfg = StaConfig::default();
            let der = Derating::none();
            let mut inc = IncrementalSta::new(&n, &lib, &par, &cfg, &der).unwrap();

            // Swap a pseudo-random subset of logic cells L<->H, checking
            // after each swap.
            let ids: Vec<InstId> = n
                .instances()
                .filter(|(_, i)| lib.cell(i.cell).is_logic())
                .map(|(id, _)| id)
                .collect();
            let mut rng = smt_base::SplitMix64::new(seed);
            for k in 0..24 {
                let id = *rng.choose(&ids);
                let cell = lib.cell(n.inst(id).cell);
                let target = if cell.vth == VthClass::Low {
                    VthClass::High
                } else {
                    VthClass::Low
                };
                let Some(v) = lib.variant_id(n.inst(id).cell, target) else {
                    continue;
                };
                n.replace_cell(id, v, &lib).unwrap();
                inc.update_after_swap(&n, &lib, &par, &der, id);

                let full = analyze(&n, &lib, &par, &cfg, &der).unwrap();
                assert!(
                    (inc.wns() - full.wns).abs().ps() < 1e-6,
                    "seed {seed} swap {k}: incremental {} vs full {}",
                    inc.wns(),
                    full.wns
                );
            }
        }
    }

    #[test]
    fn arrivals_match_full_sta_everywhere() {
        let lib = Library::industrial_130nm();
        let mut n = random_logic(
            &lib,
            &RandomLogicConfig {
                gates: 150,
                seed: 5,
                ..RandomLogicConfig::default()
            },
        );
        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        let cfg = StaConfig::default();
        let der = Derating::none();
        let mut inc = IncrementalSta::new(&n, &lib, &par, &cfg, &der).unwrap();
        // One swap deep in the design.
        let id = n
            .instances()
            .find(|(_, i)| lib.cell(i.cell).is_logic())
            .map(|(id, _)| id)
            .unwrap();
        let v = lib.variant_id(n.inst(id).cell, VthClass::High).unwrap();
        n.replace_cell(id, v, &lib).unwrap();
        inc.update_after_swap(&n, &lib, &par, &der, id);
        let full = analyze(&n, &lib, &par, &cfg, &der).unwrap();
        for (net, _) in n.nets() {
            assert!(
                (inc.arrival(net) - full.arrival[net.index()]).abs().ps() < 1e-6,
                "net {net}: {} vs {}",
                inc.arrival(net),
                full.arrival[net.index()]
            );
        }
    }
}
