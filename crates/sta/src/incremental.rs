//! Incremental timing: cone-limited arrival re-propagation after cell
//! swaps.
//!
//! The Vth-assignment loops make thousands of what-if cell swaps, each of
//! which only perturbs timing *downstream of the swapped cell*. This
//! engine keeps arrival/slew state resident and, on
//! [`IncrementalSta::update_after_swap`], re-evaluates only the affected
//! fan-out cone (plus the swapped cell's fan-in drivers, whose loads
//! changed), with early termination where arrivals converge back to their
//! old values.
//!
//! The engine runs on the shared [`TimingGraph`] kernel: levelization and
//! the sink-ordinal tables are built once (and, under
//! [`MultiCornerSta`](crate::multicorner::MultiCornerSta), shared across
//! every corner via [`IncrementalSta::with_graph`]); the engine owns only
//! the library-dependent [`SinkCache`] of per-net static loads and
//! ordinals, refreshing the nets a swap touches instead of re-deriving
//! them on every evaluation.
//!
//! Both setup (max-arrival) and hold (min-arrival) state are maintained:
//! endpoint *required* times depend only on the clock, the endpoint
//! cell's setup/hold and its wire delay — none of which an upstream Vth
//! swap changes — so re-deriving endpoint slacks from the updated
//! arrivals reproduces the full analysis. The per-endpoint slack is
//! computed with the same operation order as
//! [`analyze`](crate::analysis::analyze), so a freshly-built engine
//! reports bit-identical arrivals and WNS.

use crate::analysis::{Derating, HoldViolation, StaConfig};
use crate::graph::{PropState, SinkCache, TimingGraph};
use smt_base::units::Time;
use smt_cells::library::Library;
use smt_netlist::graph::CombinationalCycle;
use smt_netlist::netlist::{InstId, NetDriver, NetId, Netlist, PinRef, PortDir};
use smt_route::Parasitics;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A setup endpoint: required time and the endpoint wire delay, kept
/// separate so slack is computed exactly as the full analysis does
/// (`req − (arrival + wire)`).
#[derive(Debug, Clone, Copy)]
struct SetupEndpoint {
    net: NetId,
    /// Required time excluding the endpoint wire (`period − skew −
    /// margin` for ports, `period − skew − setup` for FF D pins).
    req: Time,
    /// Elmore delay of the endpoint sink pin (zero for ports).
    wire: Time,
    /// The endpoint sink pin (`None` for ports), kept so `wire` can be
    /// re-derived when a swap reorders the endpoint net's load list.
    pin: Option<PinRef>,
}

/// A hold check at a flip-flop D pin.
#[derive(Debug, Clone, Copy)]
struct HoldCheck {
    ff: InstId,
    net: NetId,
    wire: Time,
    /// Min-arrival requirement (`hold + skew`).
    need: Time,
    /// The D pin, kept so `wire` can be re-derived after swaps.
    pin: PinRef,
}

/// Persistent incremental setup+hold timing state.
#[derive(Debug, Clone)]
pub struct IncrementalSta {
    graph: Arc<TimingGraph>,
    cache: SinkCache,
    config: StaConfig,
    state: PropState,
    endpoints: Vec<SetupEndpoint>,
    hold_checks: Vec<HoldCheck>,
}

impl IncrementalSta {
    /// Builds the engine (including its own [`TimingGraph`]) and runs
    /// the initial full propagation.
    ///
    /// # Errors
    ///
    /// Propagates [`CombinationalCycle`] from levelisation.
    pub fn new(
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        config: &StaConfig,
        derating: &Derating,
    ) -> Result<Self, CombinationalCycle> {
        let graph = Arc::new(TimingGraph::build(netlist, lib)?);
        Ok(Self::with_graph(
            graph, netlist, lib, parasitics, config, derating,
        ))
    }

    /// Builds the engine over an already-built (possibly shared)
    /// [`TimingGraph`] and runs the initial full propagation. The graph
    /// must match the netlist's current topology; corner variants of the
    /// build library are fine.
    pub fn with_graph(
        graph: Arc<TimingGraph>,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        config: &StaConfig,
        derating: &Derating,
    ) -> Self {
        let cache = graph.build_cache(netlist);
        Self::with_graph_and_cache(graph, cache, netlist, lib, parasitics, config, derating)
    }

    /// [`IncrementalSta::with_graph`] with a pre-derived [`SinkCache`]:
    /// the cache is corner-invariant, so a multi-corner construction
    /// derives it once and clones it into each corner's engine (each
    /// engine then maintains its copy across swaps).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_graph_and_cache(
        graph: Arc<TimingGraph>,
        cache: SinkCache,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        config: &StaConfig,
        derating: &Derating,
    ) -> Self {
        let state = graph.propagate(netlist, lib, parasitics, config, derating, &cache);
        let mut s = IncrementalSta {
            graph,
            cache,
            config: config.clone(),
            state,
            endpoints: Vec::new(),
            hold_checks: Vec::new(),
        };
        s.collect_endpoints(netlist, lib, parasitics);
        s
    }

    /// The engine's (shareable) timing graph.
    pub fn graph(&self) -> &Arc<TimingGraph> {
        &self.graph
    }

    fn collect_endpoints(&mut self, netlist: &Netlist, lib: &Library, parasitics: &Parasitics) {
        let req0 = self.config.clock_period - self.config.clock_skew;
        self.endpoints.clear();
        self.hold_checks.clear();
        for (_, port) in netlist.ports() {
            if port.dir == PortDir::Output {
                self.endpoints.push(SetupEndpoint {
                    net: port.net,
                    req: req0 - self.config.output_margin,
                    wire: Time::ZERO,
                    pin: None,
                });
            }
        }
        for (id, inst) in netlist.instances() {
            let cell = lib.cell(inst.cell);
            if !cell.is_sequential() {
                continue;
            }
            if let Some(dp) = cell.pin_index("D") {
                if let Some(dnet) = inst.net_on(dp) {
                    let pr = PinRef { inst: id, pin: dp };
                    let ord = self.graph.ordinal(&self.cache, pr);
                    let wire = parasitics.net(dnet).elmore(ord);
                    self.endpoints.push(SetupEndpoint {
                        net: dnet,
                        req: req0 - cell.setup,
                        wire,
                        pin: Some(pr),
                    });
                    self.hold_checks.push(HoldCheck {
                        ff: id,
                        net: dnet,
                        wire,
                        need: cell.hold + self.config.clock_skew,
                        pin: pr,
                    });
                }
            }
        }
    }

    /// Re-times after the cell of `swapped` changed variant (same pins).
    ///
    /// Refreshes the swap-touched nets' cached loads and ordinals, then
    /// re-evaluates the swapped instance, the *drivers of its inputs*
    /// (their load changed if pin caps differ across variants — with this
    /// library they do not, but the engine stays correct if they do), and
    /// then the fan-out cone in level order with convergence cut-off.
    pub fn update_after_swap(
        &mut self,
        netlist: &Netlist,
        lib: &Library,
        parasitics: &Parasitics,
        derating: &Derating,
        swapped: InstId,
    ) {
        // The variant swap rebinds every pin of `swapped`
        // (disconnect + reconnect), which re-appends its input pins to
        // their nets' load lists: refresh those nets' cached loads and
        // every sink ordinal on them.
        let conns: Vec<NetId> = netlist
            .inst(swapped)
            .conns
            .iter()
            .copied()
            .flatten()
            .collect();
        for &net in &conns {
            self.cache.refresh_net(&self.graph, netlist, net);
        }
        // Endpoint/hold wire delays were derived from sink ordinals at
        // construction; a reordered load list moves those ordinals, so
        // re-derive them for every endpoint on a refreshed net.
        {
            let (graph, cache) = (&self.graph, &self.cache);
            for ep in &mut self.endpoints {
                if let Some(pr) = ep.pin {
                    if conns.contains(&ep.net) {
                        ep.wire = parasitics.net(ep.net).elmore(graph.ordinal(cache, pr));
                    }
                }
            }
            for hc in &mut self.hold_checks {
                if conns.contains(&hc.net) {
                    hc.wire = parasitics.net(hc.net).elmore(graph.ordinal(cache, hc.pin));
                }
            }
        }

        // Worklist keyed by graph level so each instance is evaluated
        // after its perturbed fan-ins.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u32)>> = BinaryHeap::new();
        let mut queued = vec![false; netlist.inst_capacity()];
        let push = |heap: &mut BinaryHeap<_>, queued: &mut Vec<bool>, id: InstId, level: u32| {
            if !queued[id.index()] {
                queued[id.index()] = true;
                heap.push(std::cmp::Reverse((level, id.0)));
            }
        };
        let level_of = |id: InstId| -> u32 { self.graph.level_of(id).unwrap_or(0) };
        // Fan-in drivers (their output load could change).
        {
            let inst = netlist.inst(swapped);
            let cell = lib.cell(inst.cell);
            for &pin in &cell.logic_input_pins() {
                if let Some(inet) = inst.net_on(pin) {
                    if let Some(NetDriver::Inst(pr)) = netlist.net(inet).driver {
                        if lib.cell(netlist.inst(pr.inst).cell).is_logic() {
                            push(&mut heap, &mut queued, pr.inst, level_of(pr.inst));
                        }
                    }
                }
            }
        }
        push(&mut heap, &mut queued, swapped, level_of(swapped));

        // Converged when both sides agree exactly (covers the ±inf case of
        // never-seeded min-arrivals) or within the re-propagation epsilon.
        let close = |a: Time, b: Time| a == b || (a - b).abs().ps() < 1e-9;
        while let Some(std::cmp::Reverse((_, raw))) = heap.pop() {
            let id = InstId(raw);
            queued[id.index()] = false;
            let cell = lib.cell(netlist.inst(id).cell);
            if !cell.is_logic() {
                continue;
            }
            let Some((net, at, at_min, sl)) = self.graph.eval_inst(
                netlist,
                lib,
                parasitics,
                derating,
                self.config.source_slew,
                &self.cache,
                &self.state,
                id,
            ) else {
                continue;
            };
            let old_at = self.state.arrival[net.index()];
            let old_min = self.state.arrival_min[net.index()];
            let old_sl = self.state.slew[net.index()];
            if close(at, old_at) && close(at_min, old_min) && close(sl, old_sl) {
                continue; // converged: the cone below is unaffected
            }
            self.state.arrival[net.index()] = at;
            self.state.arrival_min[net.index()] = at_min;
            self.state.slew[net.index()] = sl;
            for load in &netlist.net(net).loads {
                if lib.cell(netlist.inst(load.inst).cell).is_logic() {
                    push(&mut heap, &mut queued, load.inst, level_of(load.inst));
                }
            }
        }
    }

    /// Current (max) arrival of a net.
    pub fn arrival(&self, net: NetId) -> Time {
        self.state.arrival[net.index()]
    }

    /// Current min arrival of a net (`+inf` for unconstrained nets, as in
    /// the full analysis).
    pub fn arrival_min(&self, net: NetId) -> Time {
        self.state.arrival_min[net.index()]
    }

    /// Current setup WNS from the maintained arrivals.
    pub fn wns(&self) -> Time {
        let mut wns = Time::new(f64::INFINITY);
        for ep in &self.endpoints {
            let at = self.state.arrival[ep.net.index()] + ep.wire;
            wns = wns.min(ep.req - at);
        }
        if wns.is_finite() {
            wns
        } else {
            self.config.clock_period
        }
    }

    /// Current hold violations from the maintained min arrivals, in the
    /// same flip-flop order as the full analysis.
    pub fn hold_violations(&self) -> Vec<HoldViolation> {
        let mut out = Vec::new();
        for hc in &self.hold_checks {
            let mut at_min = self.state.arrival_min[hc.net.index()];
            if !at_min.is_finite() {
                at_min = Time::ZERO;
            }
            let at_min = at_min + hc.wire;
            if at_min < hc.need {
                out.push(HoldViolation {
                    ff: hc.ff,
                    arrival_min: at_min,
                    required: hc.need,
                });
            }
        }
        out
    }

    /// Worst (most negative) hold slack, or `None` when the design has no
    /// hold checks.
    pub fn hold_wns(&self) -> Option<Time> {
        self.hold_checks
            .iter()
            .map(|hc| {
                let mut at_min = self.state.arrival_min[hc.net.index()];
                if !at_min.is_finite() {
                    at_min = Time::ZERO;
                }
                at_min + hc.wire - hc.need
            })
            .min_by(Time::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use smt_cells::cell::VthClass;
    use smt_circuits::gen::{random_logic, RandomLogicConfig};
    use smt_place::{place, PlacerConfig};

    /// The contract: after any sequence of swaps, incremental WNS equals a
    /// from-scratch full analysis.
    #[test]
    fn incremental_matches_full_sta_over_random_swaps() {
        let lib = Library::industrial_130nm();
        for seed in [1u64, 9, 23] {
            let mut n = random_logic(
                &lib,
                &RandomLogicConfig {
                    gates: 250,
                    seed,
                    ..RandomLogicConfig::default()
                },
            )
            .expect("valid random_logic config");
            let p = place(&n, &lib, &PlacerConfig::default());
            let par = Parasitics::estimate(&n, &lib, &p);
            let cfg = StaConfig::default();
            let der = Derating::none();
            let mut inc = IncrementalSta::new(&n, &lib, &par, &cfg, &der).unwrap();

            // Swap a pseudo-random subset of logic cells L<->H, checking
            // after each swap.
            let ids: Vec<InstId> = n
                .instances()
                .filter(|(_, i)| lib.cell(i.cell).is_logic())
                .map(|(id, _)| id)
                .collect();
            let mut rng = smt_base::SplitMix64::new(seed);
            for k in 0..24 {
                let id = *rng.choose(&ids);
                let cell = lib.cell(n.inst(id).cell);
                let target = if cell.vth == VthClass::Low {
                    VthClass::High
                } else {
                    VthClass::Low
                };
                let Some(v) = lib.variant_id(n.inst(id).cell, target) else {
                    continue;
                };
                n.replace_cell(id, v, &lib).unwrap();
                inc.update_after_swap(&n, &lib, &par, &der, id);

                let full = analyze(&n, &lib, &par, &cfg, &der).unwrap();
                assert!(
                    (inc.wns() - full.wns).abs().ps() < 1e-6,
                    "seed {seed} swap {k}: incremental {} vs full {}",
                    inc.wns(),
                    full.wns
                );
                assert_eq!(
                    inc.hold_violations().len(),
                    full.hold_violations.len(),
                    "seed {seed} swap {k}: hold violation count"
                );
            }
        }
    }

    #[test]
    fn arrivals_match_full_sta_everywhere() {
        let lib = Library::industrial_130nm();
        let mut n = random_logic(
            &lib,
            &RandomLogicConfig {
                gates: 150,
                seed: 5,
                ..RandomLogicConfig::default()
            },
        )
        .expect("valid random_logic config");
        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        let cfg = StaConfig::default();
        let der = Derating::none();
        let mut inc = IncrementalSta::new(&n, &lib, &par, &cfg, &der).unwrap();
        // One swap deep in the design.
        let id = n
            .instances()
            .find(|(_, i)| lib.cell(i.cell).is_logic())
            .map(|(id, _)| id)
            .unwrap();
        let v = lib.variant_id(n.inst(id).cell, VthClass::High).unwrap();
        n.replace_cell(id, v, &lib).unwrap();
        inc.update_after_swap(&n, &lib, &par, &der, id);
        let full = analyze(&n, &lib, &par, &cfg, &der).unwrap();
        for (net, _) in n.nets() {
            assert!(
                (inc.arrival(net) - full.arrival[net.index()]).abs().ps() < 1e-6,
                "net {net}: {} vs {}",
                inc.arrival(net),
                full.arrival[net.index()]
            );
            let fm = full.arrival_min[net.index()];
            let im = inc.arrival_min(net);
            assert!(
                im == fm || (im - fm).abs().ps() < 1e-6,
                "net {net}: min {im} vs {fm}"
            );
        }
    }

    #[test]
    fn fresh_engine_is_bit_identical_to_full_sta() {
        let lib = Library::industrial_130nm();
        for seed in [2u64, 7, 40] {
            let n = random_logic(
                &lib,
                &RandomLogicConfig {
                    gates: 200,
                    seed,
                    ..RandomLogicConfig::default()
                },
            )
            .expect("valid random_logic config");
            let p = place(&n, &lib, &PlacerConfig::default());
            let par = Parasitics::estimate(&n, &lib, &p);
            let cfg = StaConfig::default();
            let der = Derating::none();
            let inc = IncrementalSta::new(&n, &lib, &par, &cfg, &der).unwrap();
            let full = analyze(&n, &lib, &par, &cfg, &der).unwrap();
            for (net, _) in n.nets() {
                assert_eq!(inc.arrival(net), full.arrival[net.index()], "seed {seed}");
                assert_eq!(
                    inc.arrival_min(net),
                    full.arrival_min[net.index()],
                    "seed {seed}"
                );
            }
            assert_eq!(inc.wns(), full.wns, "seed {seed}");
            assert_eq!(
                inc.hold_violations(),
                full.hold_violations,
                "seed {seed}: hold"
            );
        }
    }
}
