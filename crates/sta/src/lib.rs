//! # smt-sta
//!
//! Static timing analysis over gate-level netlists, supporting both points
//! where the paper's flow needs timing:
//!
//! * before routing, on estimated parasitics, to drive the Vth
//!   re-assignment ("replacing low-Vth cells by high-Vth cells & MT-cells
//!   with timing optimization");
//! * after routing, on extracted parasitics, for final verification and
//!   ECO hold fixing.
//!
//! The model is linear cell delay + per-sink wire Elmore, with optional
//! per-instance [`Derating`] that the MTCMOS clustering uses to apply the
//! VGND-bounce penalty to MT-cells.
//!
//! All analysis runs on the shared levelized [`TimingGraph`] kernel
//! (see [`graph`]): built once per netlist topology, it precomputes
//! CSR adjacency, levelization and per-sink Elmore ordinals, and runs a
//! level-parallel forward propagation that is bit-identical to the
//! retired sequential walk ([`analyze_baseline`] is kept as the
//! differential-testing reference). Repeated-analysis callers build the
//! graph once and use [`analyze_with_graph`]; resident engines
//! ([`IncrementalSta`], [`MultiCornerSta`]) share one graph across
//! swaps and corners.
//!
//! ```no_run
//! use smt_cells::library::Library;
//! use smt_netlist::netlist::Netlist;
//! use smt_place::{place, PlacerConfig};
//! use smt_route::Parasitics;
//! use smt_sta::{analyze, Derating, StaConfig};
//!
//! # fn design() -> Netlist { Netlist::new("x") }
//! let lib = Library::industrial_130nm();
//! let n = design();
//! let p = place(&n, &lib, &PlacerConfig::default());
//! let par = Parasitics::estimate(&n, &lib, &p);
//! let report = analyze(&n, &lib, &par, &StaConfig::default(), &Derating::none()).unwrap();
//! println!("WNS = {}", report.wns);
//! ```

pub mod analysis;
pub mod graph;
pub mod incremental;
pub mod multicorner;
pub mod report;

pub use analysis::{
    analyze, analyze_baseline, analyze_cached, analyze_with_graph, worst_path, Derating,
    HoldViolation, StaConfig, TimingReport,
};
pub use graph::{PropState, SinkCache, TimingGraph};
pub use incremental::IncrementalSta;
pub use multicorner::{merge_hold_violations, CornerSta, MultiCornerSta};
pub use report::{render_report, worst_paths, ReportedPath};
