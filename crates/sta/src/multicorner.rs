//! Multi-corner (PVT) static timing analysis.
//!
//! Signoff across corners asks two different questions of the same
//! netlist: *is setup met where devices are slowest* (the slow corner)
//! and *is hold met where they are fastest* (the fast corner). A
//! [`MultiCornerSta`] answers both by keeping one
//! [`IncrementalSta`] per corner, each timed against the corner's
//! re-characterised [`Library`] — cell ids are stable across
//! per-corner libraries (see [`smt_cells::corner`]), so a single netlist
//! indexes into all of them.
//!
//! The engine stays *incremental across corners*: a Vth swap updates
//! every corner's fan-out cone via
//! [`MultiCornerSta::update_after_swap`], so optimisation loops pay the
//! cone cost per corner instead of a full re-propagation per corner.
//!
//! All corners share **one** [`TimingGraph`]: corner derates move timing
//! numbers, never pin lists, so levelization and the sink-ordinal tables
//! are built once and handed to every corner's engine via
//! [`IncrementalSta::with_graph`] — only the cheap per-corner load cache
//! is private to each corner.
//!
//! Restricted to the single identity corner
//! ([`CornerSet::typical_only`]), every reported figure is bit-identical
//! to the single-corner [`analyze`](crate::analysis::analyze()) results —
//! the property the multi-corner flow relies on to leave single-corner
//! runs unchanged.

use crate::analysis::{analyze_with_graph, Derating, HoldViolation, StaConfig, TimingReport};
use crate::graph::TimingGraph;
use crate::incremental::IncrementalSta;
use smt_base::units::Time;
use smt_cells::corner::{Corner, CornerLibrary, CornerSet};
use smt_cells::library::Library;
use smt_netlist::graph::CombinationalCycle;
use smt_netlist::netlist::{InstId, NetId, Netlist};
use smt_route::Parasitics;
use std::sync::Arc;

/// Merges per-corner hold-violation lists into the union a multi-corner
/// ECO must fix: per flip-flop, the violation with the worst (most
/// negative) slack wins. Ordered by flip-flop id, matching the full
/// analysis.
pub fn merge_hold_violations<I>(groups: I) -> Vec<HoldViolation>
where
    I: IntoIterator<Item = Vec<HoldViolation>>,
{
    let mut worst: Vec<HoldViolation> = Vec::new();
    for group in groups {
        for v in group {
            match worst.iter_mut().find(|w| w.ff == v.ff) {
                Some(w) => {
                    if v.slack() < w.slack() {
                        *w = v;
                    }
                }
                None => worst.push(v),
            }
        }
    }
    worst.sort_by_key(|v| v.ff.index());
    worst
}

/// One corner's resident timing state.
#[derive(Debug, Clone)]
pub struct CornerSta {
    /// The corner this state is timed at.
    pub corner: Corner,
    /// The corner-characterised library.
    pub lib: Library,
    inc: IncrementalSta,
}

impl CornerSta {
    /// The corner's incremental engine (read-only).
    pub fn sta(&self) -> &IncrementalSta {
        &self.inc
    }
}

/// Per-corner incremental setup/hold timing over corner-characterised
/// libraries.
#[derive(Debug, Clone)]
pub struct MultiCornerSta {
    corners: Vec<CornerSta>,
}

impl MultiCornerSta {
    /// Builds per-corner libraries from `base` and runs the initial full
    /// propagation at every corner.
    ///
    /// # Errors
    ///
    /// Propagates [`CombinationalCycle`] from levelisation.
    pub fn new(
        netlist: &Netlist,
        base: &Library,
        parasitics: &Parasitics,
        config: &StaConfig,
        derating: &Derating,
        set: &CornerSet,
    ) -> Result<Self, CombinationalCycle> {
        Self::from_libraries(
            netlist,
            CornerLibrary::build_set(base, set),
            parasitics,
            config,
            derating,
        )
    }

    /// Builds the engine over already-characterised corner libraries
    /// (avoids regenerating them when the caller keeps a set around).
    ///
    /// # Errors
    ///
    /// Propagates [`CombinationalCycle`] from levelisation.
    pub fn from_libraries(
        netlist: &Netlist,
        libs: Vec<CornerLibrary>,
        parasitics: &Parasitics,
        config: &StaConfig,
        derating: &Derating,
    ) -> Result<Self, CombinationalCycle> {
        // One levelized graph — and one sink-cache derivation — for all
        // corners: corner libraries share cell structure (pin lists and
        // pin caps), so both are corner-invariant; each corner's engine
        // clones the cache and maintains its copy across swaps.
        let shared = match libs.first() {
            Some(cl) => {
                let graph = Arc::new(TimingGraph::build(netlist, &cl.lib)?);
                let cache = graph.build_cache(netlist);
                Some((graph, cache))
            }
            None => None,
        };
        let mut corners = Vec::with_capacity(libs.len());
        for cl in libs {
            let (graph, cache) = shared.as_ref().expect("graph built for non-empty set");
            let inc = IncrementalSta::with_graph_and_cache(
                graph.clone(),
                cache.clone(),
                netlist,
                &cl.lib,
                parasitics,
                config,
                derating,
            );
            corners.push(CornerSta {
                corner: cl.corner,
                lib: cl.lib,
                inc,
            });
        }
        Ok(MultiCornerSta { corners })
    }

    /// The per-corner states, in corner-set order.
    pub fn corners(&self) -> &[CornerSta] {
        &self.corners
    }

    /// Number of corners.
    pub fn num_corners(&self) -> usize {
        self.corners.len()
    }

    /// Re-times every corner after the cell of `swapped` changed variant
    /// (same pins). Each corner's update is cone-limited; see
    /// [`IncrementalSta::update_after_swap`].
    pub fn update_after_swap(
        &mut self,
        netlist: &Netlist,
        parasitics: &Parasitics,
        derating: &Derating,
        swapped: InstId,
    ) {
        for c in &mut self.corners {
            c.inc
                .update_after_swap(netlist, &c.lib, parasitics, derating, swapped);
        }
    }

    /// Setup WNS at one corner.
    pub fn wns_at(&self, corner: usize) -> Time {
        self.corners[corner].inc.wns()
    }

    /// Worst setup WNS across the corners that check setup (all corners
    /// when none is marked, so a degenerate set still reports timing).
    pub fn setup_wns(&self) -> Time {
        let mut wns = Time::new(f64::INFINITY);
        let mut any = false;
        for c in &self.corners {
            if c.corner.check_setup {
                any = true;
                wns = wns.min(c.inc.wns());
            }
        }
        if !any {
            for c in &self.corners {
                wns = wns.min(c.inc.wns());
            }
        }
        wns
    }

    /// Max arrival of a net at one corner.
    pub fn arrival(&self, corner: usize, net: NetId) -> Time {
        self.corners[corner].inc.arrival(net)
    }

    /// Min arrival of a net at one corner.
    pub fn arrival_min(&self, corner: usize, net: NetId) -> Time {
        self.corners[corner].inc.arrival_min(net)
    }

    /// Hold violations at one corner.
    pub fn hold_violations_at(&self, corner: usize) -> Vec<HoldViolation> {
        self.corners[corner].inc.hold_violations()
    }

    /// Hold violations merged across the corners that check hold: per
    /// flip-flop, the violation with the worst (most negative) slack.
    /// Ordered by flip-flop id, matching the full analysis.
    pub fn hold_violations(&self) -> Vec<HoldViolation> {
        merge_hold_violations(
            self.corners
                .iter()
                .filter(|c| c.corner.check_hold)
                .map(|c| c.inc.hold_violations()),
        )
    }

    /// Runs the *full* (non-incremental) analysis at one corner —
    /// required times, TNS, the complete [`TimingReport`]. This is the
    /// reference the incremental state is equivalent to. Reuses the
    /// corner engine's shared [`TimingGraph`] instead of re-levelizing.
    ///
    /// # Errors
    ///
    /// Kept for API stability; the shared graph already levelized, so
    /// this cannot fail any more.
    pub fn full_report(
        &self,
        corner: usize,
        netlist: &Netlist,
        parasitics: &Parasitics,
        config: &StaConfig,
        derating: &Derating,
    ) -> Result<TimingReport, CombinationalCycle> {
        let c = &self.corners[corner];
        Ok(analyze_with_graph(
            c.inc.graph(),
            netlist,
            &c.lib,
            parasitics,
            config,
            derating,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_cells::cell::VthClass;
    use smt_circuits::gen::{random_logic, RandomLogicConfig};
    use smt_place::{place, PlacerConfig};

    fn setup(seed: u64, gates: usize) -> (Library, Netlist, Parasitics) {
        let lib = Library::industrial_130nm();
        let n = random_logic(
            &lib,
            &RandomLogicConfig {
                gates,
                seed,
                ..RandomLogicConfig::default()
            },
        )
        .expect("valid random_logic config");
        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        (lib, n, par)
    }

    #[test]
    fn slow_corner_has_worse_setup_fast_corner_worse_hold() {
        let (lib, n, par) = setup(11, 200);
        let cfg = StaConfig::default();
        let der = Derating::none();
        let mc =
            MultiCornerSta::new(&n, &lib, &par, &cfg, &der, &CornerSet::slow_typ_fast()).unwrap();
        let [slow, typ, fast] = [mc.wns_at(0), mc.wns_at(1), mc.wns_at(2)];
        assert!(slow < typ, "slow {slow} vs typ {typ}");
        assert!(fast > typ, "fast {fast} vs typ {typ}");
        // Min arrivals shrink at the fast corner: hold can only get worse.
        assert!(
            mc.hold_violations_at(2).len() >= mc.hold_violations_at(1).len(),
            "fast corner cannot have fewer hold violations than typical"
        );
        assert_eq!(mc.setup_wns(), slow.min(typ));
    }

    #[test]
    fn incremental_multicorner_matches_rebuild() {
        let (lib, mut n, par) = setup(3, 180);
        let cfg = StaConfig::default();
        let der = Derating::none();
        let set = CornerSet::slow_typ_fast();
        let mut mc = MultiCornerSta::new(&n, &lib, &par, &cfg, &der, &set).unwrap();

        let ids: Vec<InstId> = n
            .instances()
            .filter(|(_, i)| lib.cell(i.cell).is_logic())
            .map(|(id, _)| id)
            .collect();
        let mut rng = smt_base::SplitMix64::new(99);
        for _ in 0..16 {
            let id = *rng.choose(&ids);
            let cell = lib.cell(n.inst(id).cell);
            let target = if cell.vth == VthClass::Low {
                VthClass::High
            } else {
                VthClass::Low
            };
            let Some(v) = lib.variant_id(n.inst(id).cell, target) else {
                continue;
            };
            n.replace_cell(id, v, &lib).unwrap();
            mc.update_after_swap(&n, &par, &der, id);
        }
        let fresh = MultiCornerSta::new(&n, &lib, &par, &cfg, &der, &set).unwrap();
        for k in 0..3 {
            assert!(
                (mc.wns_at(k) - fresh.wns_at(k)).abs().ps() < 1e-6,
                "corner {k}: {} vs {}",
                mc.wns_at(k),
                fresh.wns_at(k)
            );
            assert_eq!(
                mc.hold_violations_at(k).len(),
                fresh.hold_violations_at(k).len(),
                "corner {k} hold"
            );
        }
    }
}
