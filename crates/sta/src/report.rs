//! Human-readable timing reports: top-K worst paths with per-stage
//! breakdown, in the spirit of `report_timing`.

use crate::analysis::{Derating, StaConfig, TimingReport};
use smt_base::units::{Cap, Time};
use smt_cells::library::Library;
use smt_netlist::netlist::{InstId, NetDriver, NetId, Netlist, PortDir};
use smt_route::Parasitics;
use std::fmt::Write as _;

/// One stage of a reported path.
#[derive(Debug, Clone)]
pub struct PathStage {
    /// Driving instance (None for the launching port/FF).
    pub inst: Option<InstId>,
    /// Display name (instance or port).
    pub what: String,
    /// Cell type name, if an instance.
    pub cell: String,
    /// Stage delay (cell arc + wire to the next pin).
    pub delay: Time,
    /// Cumulative arrival after this stage.
    pub arrival: Time,
}

/// A reported timing path.
#[derive(Debug, Clone)]
pub struct ReportedPath {
    /// Endpoint description (FF `D` pin or output port).
    pub endpoint: String,
    /// Slack at the endpoint.
    pub slack: Time,
    /// Stages, launch first.
    pub stages: Vec<PathStage>,
}

impl ReportedPath {
    /// Renders the path like a classic STA report block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "endpoint: {}   slack: {}", self.endpoint, self.slack);
        let _ = writeln!(
            out,
            "  {:<28} {:<12} {:>10} {:>12}",
            "point", "cell", "delay", "arrival"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<28} {:<12} {:>10.2} {:>12.2}",
                s.what,
                s.cell,
                s.delay.ps(),
                s.arrival.ps()
            );
        }
        out
    }
}

/// Collects the `k` worst setup paths of a timed design.
///
/// Endpoints are ranked by slack; for each, the path is traced backwards
/// through the worst-arrival fan-in, then reported launch-first with
/// per-stage delays recomputed from the same models STA used.
pub fn worst_paths(
    netlist: &Netlist,
    lib: &Library,
    parasitics: &Parasitics,
    report: &TimingReport,
    config: &StaConfig,
    derating: &Derating,
    k: usize,
) -> Vec<ReportedPath> {
    // Endpoint list: (slack, endpoint net, description).
    let mut endpoints: Vec<(Time, NetId, String)> = Vec::new();
    for (_, port) in netlist.ports() {
        if port.dir == PortDir::Output {
            endpoints.push((
                report.slack(port.net),
                port.net,
                format!("output port {}", port.name),
            ));
        }
    }
    for (_, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        if !cell.is_sequential() {
            continue;
        }
        if let Some(dp) = cell.pin_index("D") {
            if let Some(dnet) = inst.net_on(dp) {
                endpoints.push((
                    report.slack(dnet),
                    dnet,
                    format!("{}/D ({})", inst.name, cell.name),
                ));
            }
        }
    }
    endpoints.sort_by(|a, b| a.0.total_cmp(&b.0));
    endpoints.truncate(k);

    endpoints
        .into_iter()
        .map(|(slack, net, endpoint)| {
            let stages = trace(netlist, lib, parasitics, report, config, derating, net);
            ReportedPath {
                endpoint,
                slack,
                stages,
            }
        })
        .collect()
}

fn net_load(netlist: &Netlist, lib: &Library, parasitics: &Parasitics, net: NetId) -> Cap {
    let n = netlist.net(net);
    let pins: Cap = n
        .loads
        .iter()
        .map(|pr| lib.cell(netlist.inst(pr.inst).cell).pins[pr.pin].cap)
        .sum();
    pins + Cap::new(2.0 * n.port_loads.len() as f64) + parasitics.net(net).wire_cap
}

fn trace(
    netlist: &Netlist,
    lib: &Library,
    parasitics: &Parasitics,
    report: &TimingReport,
    config: &StaConfig,
    derating: &Derating,
    endpoint: NetId,
) -> Vec<PathStage> {
    // Walk backwards choosing the worst-arrival input at each gate.
    let mut chain: Vec<(InstId, NetId)> = Vec::new();
    let mut net = endpoint;
    let mut launch: Option<String> = None;
    for _ in 0..netlist.num_instances() + 2 {
        match netlist.net(net).driver {
            Some(NetDriver::Port(p)) => {
                launch = Some(format!("input port {}", netlist.port(p).name));
                break;
            }
            Some(NetDriver::Inst(pr)) => {
                let cell = lib.cell(netlist.inst(pr.inst).cell);
                chain.push((pr.inst, net));
                if !cell.is_logic() {
                    launch = Some(format!("{}/Q ({})", netlist.inst(pr.inst).name, cell.name));
                    chain.pop();
                    // Keep the FF as the launching stage.
                    chain.push((pr.inst, net));
                    break;
                }
                let mut best: Option<(Time, NetId)> = None;
                for &pin in &cell.logic_input_pins() {
                    if let Some(inet) = netlist.inst(pr.inst).net_on(pin) {
                        let at = report.arrival[inet.index()];
                        if best.map(|(b, _)| at > b).unwrap_or(true) {
                            best = Some((at, inet));
                        }
                    }
                }
                match best {
                    Some((_, inet)) => net = inet,
                    None => break,
                }
            }
            None => break,
        }
    }
    chain.reverse();

    let mut stages = Vec::new();
    let mut arrival = Time::ZERO;
    if let Some(l) = launch {
        let is_port = l.starts_with("input port");
        if is_port {
            arrival = config.input_delay;
        }
        stages.push(PathStage {
            inst: None,
            what: l,
            cell: String::new(),
            delay: arrival,
            arrival,
        });
    }
    for (inst, onet) in chain {
        let cell = lib.cell(netlist.inst(inst).cell);
        let load = net_load(netlist, lib, parasitics, onet);
        // Stage delay: the arc from the input on the traced path (use the
        // first arc as representative when ambiguous) plus this net's
        // worst sink wire delay.
        let arc_delay = cell
            .arcs
            .first()
            .map(|a| a.delay(config.source_slew, load))
            .unwrap_or(Time::ZERO)
            * derating.factor(inst);
        let wire = netlist
            .net(onet)
            .loads
            .iter()
            .enumerate()
            .map(|(k, _)| parasitics.net(onet).elmore(k))
            .fold(Time::ZERO, Time::max);
        let delay = arc_delay + wire;
        arrival += delay;
        stages.push(PathStage {
            inst: Some(inst),
            what: format!("{}/Z", netlist.inst(inst).name),
            cell: cell.name.clone(),
            delay,
            arrival,
        });
    }
    stages
}

/// Renders a summary header plus the top-K paths as one text report.
pub fn render_report(
    netlist: &Netlist,
    lib: &Library,
    parasitics: &Parasitics,
    report: &TimingReport,
    config: &StaConfig,
    derating: &Derating,
    k: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timing report: clock {} | wns {} | tns {} | hold violations {}",
        config.clock_period,
        report.wns,
        report.tns,
        report.hold_violations.len()
    );
    for p in worst_paths(netlist, lib, parasitics, report, config, derating, k) {
        let _ = writeln!(out, "{}", p.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use smt_place::{place, PlacerConfig};

    fn chain(lib: &Library, len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let clk = n.add_clock("clk");
        let mut prev = n.add_input("a");
        let inv = lib.find_id("INV_X1_L").unwrap();
        for i in 0..len {
            let w = n.add_net(&format!("w{i}"));
            let u = n.add_instance(&format!("u{i}"), inv, lib);
            n.connect_by_name(u, "A", prev, lib).unwrap();
            n.connect_by_name(u, "Z", w, lib).unwrap();
            prev = w;
        }
        let q = n.add_output("q");
        let ff = n.add_instance("ff", lib.find_id("DFF_X1_H").unwrap(), lib);
        n.connect_by_name(ff, "D", prev, lib).unwrap();
        n.connect_by_name(ff, "CK", clk, lib).unwrap();
        n.connect_by_name(ff, "Q", q, lib).unwrap();
        n
    }

    #[test]
    fn report_contains_whole_chain() {
        let lib = Library::industrial_130nm();
        let n = chain(&lib, 8);
        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        let cfg = StaConfig::default();
        let r = analyze(&n, &lib, &par, &cfg, &Derating::none()).unwrap();
        let paths = worst_paths(&n, &lib, &par, &r, &cfg, &Derating::none(), 2);
        assert!(!paths.is_empty());
        let worst = &paths[0];
        assert!(worst.endpoint.contains("ff/D"), "{}", worst.endpoint);
        // Launch stage + 8 inverters.
        assert!(worst.stages.len() >= 9, "stages: {}", worst.stages.len());
        // Arrival is monotone along the path.
        for w in worst.stages.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        let text = worst.render();
        assert!(text.contains("u7/Z"));
        assert!(text.contains("INV_X1_L"));
    }

    #[test]
    fn render_report_has_header_and_paths() {
        let lib = Library::industrial_130nm();
        let n = chain(&lib, 4);
        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        let cfg = StaConfig::default();
        let r = analyze(&n, &lib, &par, &cfg, &Derating::none()).unwrap();
        let text = render_report(&n, &lib, &par, &r, &cfg, &Derating::none(), 3);
        assert!(text.contains("timing report"));
        assert!(text.contains("wns"));
        assert!(text.contains("endpoint:"));
    }

    #[test]
    fn endpoint_ranking_is_by_slack() {
        let lib = Library::industrial_130nm();
        // Two chains of different depth to two FFs.
        let mut n = Netlist::new("two");
        let clk = n.add_clock("clk");
        let inv = lib.find_id("INV_X1_L").unwrap();
        for (tag, len) in [("deep", 12), ("shal", 2)] {
            let mut prev = n.add_input(&format!("{tag}_in"));
            for i in 0..len {
                let w = n.add_net(&format!("{tag}_w{i}"));
                let u = n.add_instance(&format!("{tag}_u{i}"), inv, &lib);
                n.connect_by_name(u, "A", prev, &lib).unwrap();
                n.connect_by_name(u, "Z", w, &lib).unwrap();
                prev = w;
            }
            let q = n.add_output(&format!("{tag}_q"));
            let ff = n.add_instance(&format!("{tag}_ff"), lib.find_id("DFF_X1_H").unwrap(), &lib);
            n.connect_by_name(ff, "D", prev, &lib).unwrap();
            n.connect_by_name(ff, "CK", clk, &lib).unwrap();
            n.connect_by_name(ff, "Q", q, &lib).unwrap();
        }
        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        let cfg = StaConfig::default();
        let r = analyze(&n, &lib, &par, &cfg, &Derating::none()).unwrap();
        let paths = worst_paths(&n, &lib, &par, &r, &cfg, &Derating::none(), 4);
        assert!(
            paths[0].endpoint.contains("deep_ff"),
            "{}",
            paths[0].endpoint
        );
        assert!(paths[0].slack < paths.last().unwrap().slack);
    }
}
