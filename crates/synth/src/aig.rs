//! And-inverter graph with structural hashing, plus bit-blasting
//! elaboration from the RTL-lite AST.

use crate::ast::{Expr, Module, SignalKind};
use std::collections::HashMap;
use std::fmt;
use std::ops::Not;

/// A literal: an AIG node index with a complement bit in the LSB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// Constant false (the positive phase of node 0).
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node index and complement flag.
    #[inline]
    pub fn new(node: u32, complement: bool) -> Self {
        Lit(node << 1 | complement as u32)
    }

    /// The underlying node index.
    #[inline]
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// True when the literal is complemented.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    /// The complemented literal.
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}n{}",
            if self.is_complemented() { "!" } else { "" },
            self.node()
        )
    }
}

/// What a node computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Node 0: constant false.
    ConstFalse,
    /// Primary input / register output, with an ordinal.
    Input(u32),
    /// Two-input AND of literals.
    And(Lit, Lit),
}

/// An and-inverter graph.
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<NodeKind>,
    strash: HashMap<(Lit, Lit), u32>,
    n_inputs: u32,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![NodeKind::ConstFalse],
            strash: HashMap::new(),
            n_inputs: 0,
        }
    }

    /// Number of nodes (including the constant and inputs).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes beyond the constant.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, NodeKind::And(_, _)))
            .count()
    }

    /// Kind of a node.
    pub fn node(&self, idx: u32) -> NodeKind {
        self.nodes[idx as usize]
    }

    /// Adds a primary input and returns its positive literal.
    pub fn input(&mut self) -> Lit {
        let idx = self.nodes.len() as u32;
        self.nodes.push(NodeKind::Input(self.n_inputs));
        self.n_inputs += 1;
        Lit::new(idx, false)
    }

    /// AND of two literals with constant folding and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Normalise operand order for hashing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if a == Lit::FALSE || a == b.not() {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if let Some(&idx) = self.strash.get(&(a, b)) {
            return Lit::new(idx, false);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(NodeKind::And(a, b));
        self.strash.insert((a, b), idx);
        Lit::new(idx, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.not(), b.not()).not()
    }

    /// XOR built from two ANDs (the mapper pattern-matches this shape
    /// back into XOR2/XNR2 cells).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let t0 = self.and(a, b.not());
        let t1 = self.and(a.not(), b);
        self.or(t0, t1)
    }

    /// XNOR.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        self.xor(a, b).not()
    }

    /// 2:1 mux: `c ? t : e` (the mapper pattern-matches this into MUX2).
    pub fn mux(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(c, t);
        let b = self.and(c.not(), e);
        self.or(a, b)
    }

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let c0 = self.and(a, b);
        let c1 = self.and(axb, cin);
        let cout = self.or(c0, c1);
        (sum, cout)
    }
}

/// One register bit after elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegBit {
    /// Flattened name, e.g. `acc[3]` (or `acc` for 1-bit regs).
    pub name: String,
    /// The AIG input literal standing for the register's `Q`.
    pub q: Lit,
    /// Next-state literal (the `D` input).
    pub next: Lit,
}

/// A fully elaborated design: AIG plus port/register binding.
#[derive(Debug, Clone, Default)]
pub struct Design {
    /// Module name.
    pub name: String,
    /// The graph. (Empty `Default` only for struct update syntax.)
    pub aig: Aig,
    /// Primary inputs: `(flattened bit name, literal)`, LSB first per port.
    pub inputs: Vec<(String, Lit)>,
    /// Primary outputs: `(flattened bit name, literal)`.
    pub outputs: Vec<(String, Lit)>,
    /// Registers.
    pub regs: Vec<RegBit>,
    /// True when the module declared a clock (required if `regs` is
    /// non-empty).
    pub has_clock: bool,
}

/// Elaboration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.message)
    }
}

impl std::error::Error for ElabError {}

fn err(message: impl Into<String>) -> ElabError {
    ElabError {
        message: message.into(),
    }
}

/// Flattened bit name.
fn bit_name(base: &str, width: u32, bit: u32) -> String {
    if width == 1 {
        base.to_owned()
    } else {
        format!("{base}[{bit}]")
    }
}

struct Elaborator<'m> {
    module: &'m Module,
    aig: Aig,
    env: HashMap<String, Vec<Lit>>,
    visiting: Vec<String>,
}

impl<'m> Elaborator<'m> {
    /// Resolves a signal to its bit literals, evaluating assignments on
    /// demand (so source order does not matter).
    fn resolve(&mut self, name: &str) -> Result<Vec<Lit>, ElabError> {
        if let Some(bits) = self.env.get(name) {
            return Ok(bits.clone());
        }
        let sig = self
            .module
            .signal(name)
            .ok_or_else(|| err(format!("unknown signal `{name}`")))?;
        if self.visiting.iter().any(|v| v == name) {
            return Err(err(format!(
                "combinational cycle through `{name}` (chain: {})",
                self.visiting.join(" -> ")
            )));
        }
        let assign = self
            .module
            .assigns
            .iter()
            .find(|a| a.lhs == name)
            .ok_or_else(|| {
                err(format!(
                    "signal `{name}` ({:?}) is never assigned",
                    sig.kind
                ))
            })?;
        self.visiting.push(name.to_owned());
        let mut bits = self.eval(&assign.rhs)?;
        self.visiting.pop();
        fit_width(&mut bits, sig.width);
        self.env.insert(name.to_owned(), bits.clone());
        Ok(bits)
    }

    fn eval(&mut self, e: &Expr) -> Result<Vec<Lit>, ElabError> {
        match e {
            Expr::Ident(name) => self.resolve(name),
            Expr::Const(l) => Ok((0..l.width)
                .map(|b| {
                    if l.value >> b & 1 == 1 {
                        Lit::TRUE
                    } else {
                        Lit::FALSE
                    }
                })
                .collect()),
            Expr::Index(inner, i) => {
                let bits = self.eval(inner)?;
                bits.get(*i as usize)
                    .copied()
                    .map(|b| vec![b])
                    .ok_or_else(|| err(format!("bit index {i} out of range")))
            }
            Expr::Slice(inner, hi, lo) => {
                let bits = self.eval(inner)?;
                if *hi < *lo || *hi as usize >= bits.len() {
                    return Err(err(format!("slice [{hi}:{lo}] out of range")));
                }
                Ok(bits[*lo as usize..=*hi as usize].to_vec())
            }
            Expr::Concat(parts) => {
                // Verilog: first part is MSB.
                let mut bits = Vec::new();
                for p in parts.iter().rev() {
                    bits.extend(self.eval(p)?);
                }
                Ok(bits)
            }
            Expr::Not(inner) => {
                let bits = self.eval(inner)?;
                Ok(bits.into_iter().map(Lit::not).collect())
            }
            Expr::And(a, b) => self.bitwise(a, b, |g, x, y| g.and(x, y)),
            Expr::Or(a, b) => self.bitwise(a, b, |g, x, y| g.or(x, y)),
            Expr::Xor(a, b) => self.bitwise(a, b, |g, x, y| g.xor(x, y)),
            Expr::Add(a, b) => {
                let (x, y) = self.equalise(a, b)?;
                Ok(self.ripple_add(&x, &y, Lit::FALSE).0)
            }
            Expr::Sub(a, b) => {
                let (x, y) = self.equalise(a, b)?;
                let yb: Vec<Lit> = y.iter().map(|l| l.not()).collect();
                Ok(self.ripple_add(&x, &yb, Lit::TRUE).0)
            }
            Expr::Eq(a, b) => {
                let (x, y) = self.equalise(a, b)?;
                let mut acc = Lit::TRUE;
                for (xa, ya) in x.iter().zip(&y) {
                    let same = self.aig.xnor(*xa, *ya);
                    acc = self.aig.and(acc, same);
                }
                Ok(vec![acc])
            }
            Expr::Ne(a, b) => {
                let eq = self.eval(&Expr::Eq(a.clone(), b.clone()))?;
                Ok(vec![eq[0].not()])
            }
            Expr::Lt(a, b) => {
                // a < b  <=>  carry-out of a + ~b + 1 is 0.
                let (x, y) = self.equalise(a, b)?;
                let yb: Vec<Lit> = y.iter().map(|l| l.not()).collect();
                let (_, cout) = self.ripple_add(&x, &yb, Lit::TRUE);
                Ok(vec![cout.not()])
            }
            Expr::Shl(inner, k) => {
                let bits = self.eval(inner)?;
                let w = bits.len();
                let mut out = vec![Lit::FALSE; w];
                for i in *k as usize..w {
                    out[i] = bits[i - *k as usize];
                }
                Ok(out)
            }
            Expr::Shr(inner, k) => {
                let bits = self.eval(inner)?;
                let w = bits.len();
                let mut out = vec![Lit::FALSE; w];
                for i in 0..w.saturating_sub(*k as usize) {
                    out[i] = bits[i + *k as usize];
                }
                Ok(out)
            }
            Expr::Mux(c, t, f) => {
                let cb = self.eval(c)?;
                if cb.len() != 1 {
                    return Err(err("mux condition must be 1 bit wide"));
                }
                let (tv, fv) = self.equalise(t, f)?;
                Ok(tv
                    .iter()
                    .zip(&fv)
                    .map(|(a, b)| self.aig.mux(cb[0], *a, *b))
                    .collect())
            }
        }
    }

    fn bitwise(
        &mut self,
        a: &Expr,
        b: &Expr,
        f: impl Fn(&mut Aig, Lit, Lit) -> Lit,
    ) -> Result<Vec<Lit>, ElabError> {
        let (x, y) = self.equalise(a, b)?;
        Ok(x.iter()
            .zip(&y)
            .map(|(p, q)| f(&mut self.aig, *p, *q))
            .collect())
    }

    /// Evaluates both operands and zero-extends the narrower to match.
    fn equalise(&mut self, a: &Expr, b: &Expr) -> Result<(Vec<Lit>, Vec<Lit>), ElabError> {
        let mut x = self.eval(a)?;
        let mut y = self.eval(b)?;
        let w = x.len().max(y.len()) as u32;
        fit_width(&mut x, w);
        fit_width(&mut y, w);
        Ok((x, y))
    }

    fn ripple_add(&mut self, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
        let mut carry = cin;
        let mut out = Vec::with_capacity(a.len());
        for (x, y) in a.iter().zip(b) {
            let (s, c) = self.aig.full_adder(*x, *y, carry);
            out.push(s);
            carry = c;
        }
        (out, carry)
    }
}

/// Zero-extends or truncates a bit vector to `width`.
fn fit_width(bits: &mut Vec<Lit>, width: u32) {
    bits.resize(width as usize, Lit::FALSE);
}

/// Elaborates a parsed module into a [`Design`].
///
/// # Errors
///
/// [`ElabError`] for unknown/unassigned signals, combinational cycles
/// through wires, out-of-range selects, or registers without a clock.
pub fn elaborate(module: &Module) -> Result<Design, ElabError> {
    let mut el = Elaborator {
        module,
        aig: Aig::new(),
        env: HashMap::new(),
        visiting: Vec::new(),
    };
    let mut inputs = Vec::new();
    let mut has_clock = false;

    // Inputs and register Qs become AIG inputs up front.
    for sig in &module.signals {
        match sig.kind {
            SignalKind::Input => {
                if sig.is_clock {
                    has_clock = true;
                    continue;
                }
                let bits: Vec<Lit> = (0..sig.width)
                    .map(|b| {
                        let l = el.aig.input();
                        inputs.push((bit_name(&sig.name, sig.width, b), l));
                        l
                    })
                    .collect();
                el.env.insert(sig.name.clone(), bits);
            }
            SignalKind::Reg => {
                let bits: Vec<Lit> = (0..sig.width).map(|_| el.aig.input()).collect();
                el.env.insert(sig.name.clone(), bits);
            }
            _ => {}
        }
    }

    // Register next-state functions.
    let mut regs = Vec::new();
    for ra in &module.reg_assigns {
        let sig = module
            .signal(&ra.lhs)
            .ok_or_else(|| err(format!("unknown register `{}`", ra.lhs)))?;
        if sig.kind != SignalKind::Reg {
            return Err(err(format!("`{}` is not declared `reg`", ra.lhs)));
        }
        let mut next = el.eval(&ra.rhs)?;
        fit_width(&mut next, sig.width);
        let qbits = el.env.get(&ra.lhs).expect("reg Q created above").clone();
        for (b, (q, d)) in qbits.iter().zip(&next).enumerate() {
            regs.push(RegBit {
                name: bit_name(&ra.lhs, sig.width, b as u32),
                q: *q,
                next: *d,
            });
        }
    }
    if !regs.is_empty() && !has_clock {
        return Err(err("registers declared but no clock input (`clk`)"));
    }

    // Outputs.
    let mut outputs = Vec::new();
    for sig in &module.signals {
        if sig.kind != SignalKind::Output {
            continue;
        }
        let bits = el.resolve(&sig.name)?;
        for (b, l) in bits.iter().enumerate() {
            outputs.push((bit_name(&sig.name, sig.width, b as u32), *l));
        }
    }

    Ok(Design {
        name: module.name.clone(),
        aig: el.aig,
        inputs,
        outputs,
        regs,
        has_clock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_rtl;

    /// Evaluates an AIG literal given input values by ordinal.
    fn eval_lit(aig: &Aig, lit: Lit, inputs: &[bool]) -> bool {
        fn node_val(aig: &Aig, idx: u32, inputs: &[bool]) -> bool {
            match aig.node(idx) {
                NodeKind::ConstFalse => false,
                NodeKind::Input(i) => inputs[i as usize],
                NodeKind::And(a, b) => {
                    let va = node_val(aig, a.node(), inputs) ^ a.is_complemented();
                    let vb = node_val(aig, b.node(), inputs) ^ b.is_complemented();
                    va && vb
                }
            }
        }
        node_val(aig, lit.node(), inputs) ^ lit.is_complemented()
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.input();
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, a.not()), Lit::FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn full_adder_truth() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let (s, co) = g.full_adder(a, b, c);
        for v in 0..8u32 {
            let ins = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
            let total = ins.iter().filter(|&&x| x).count();
            assert_eq!(eval_lit(&g, s, &ins), total % 2 == 1, "sum at {v}");
            assert_eq!(eval_lit(&g, co, &ins), total >= 2, "carry at {v}");
        }
    }

    #[test]
    fn elaborate_adder_matches_arithmetic() {
        let m = parse_rtl(
            "module add4;\ninput [3:0] a, b;\noutput [4:0] s;\nassign s = {1'b0, a} + {1'b0, b};\nendmodule\n",
        )
        .unwrap();
        let d = elaborate(&m).unwrap();
        assert_eq!(d.inputs.len(), 8);
        assert_eq!(d.outputs.len(), 5);
        for av in 0..16u32 {
            for bv in 0..16u32 {
                let mut ins = vec![false; 8];
                for i in 0..4 {
                    ins[i] = av >> i & 1 == 1; // a bits come first
                    ins[4 + i] = bv >> i & 1 == 1;
                }
                let mut sum = 0u32;
                for (i, (_, lit)) in d.outputs.iter().enumerate() {
                    if eval_lit(&d.aig, *lit, &ins) {
                        sum |= 1 << i;
                    }
                }
                assert_eq!(sum, av + bv, "a={av} b={bv}");
            }
        }
    }

    #[test]
    fn elaborate_subtract_compare() {
        let m = parse_rtl(
            "module cmp;\ninput [3:0] a, b;\noutput lt;\noutput eq;\noutput [3:0] d;\nassign lt = a < b;\nassign eq = a == b;\nassign d = a - b;\nendmodule\n",
        )
        .unwrap();
        let d = elaborate(&m).unwrap();
        let get = |name: &str| {
            d.outputs
                .iter()
                .filter(|(n, _)| n.starts_with(name))
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
        };
        let lt = get("lt")[0];
        let eq = get("eq")[0];
        let diff = get("d[");
        for av in 0..16u32 {
            for bv in 0..16u32 {
                let mut ins = vec![false; 8];
                for i in 0..4 {
                    ins[i] = av >> i & 1 == 1;
                    ins[4 + i] = bv >> i & 1 == 1;
                }
                assert_eq!(eval_lit(&d.aig, lt, &ins), av < bv);
                assert_eq!(eval_lit(&d.aig, eq, &ins), av == bv);
                let mut dv = 0u32;
                for (i, l) in diff.iter().enumerate() {
                    if eval_lit(&d.aig, *l, &ins) {
                        dv |= 1 << i;
                    }
                }
                assert_eq!(dv, (av.wrapping_sub(bv)) & 0xF);
            }
        }
    }

    #[test]
    fn registers_require_clock() {
        let m = parse_rtl(
            "module r;\ninput [1:0] d;\nreg [1:0] q;\noutput [1:0] y;\nalways @(posedge clk) q <= d;\nassign y = q;\nendmodule\n",
        )
        .unwrap();
        let e = elaborate(&m).unwrap_err();
        assert!(e.message.contains("clock"));
    }

    #[test]
    fn register_elaboration() {
        let m = parse_rtl(
            "module r;\ninput clk;\ninput [1:0] d;\nreg [1:0] q;\noutput [1:0] y;\nalways @(posedge clk) q <= d ^ q;\nassign y = q;\nendmodule\n",
        )
        .unwrap();
        let d = elaborate(&m).unwrap();
        assert!(d.has_clock);
        assert_eq!(d.regs.len(), 2);
        assert_eq!(d.regs[0].name, "q[0]");
    }

    #[test]
    fn combinational_cycle_detected() {
        let m = parse_rtl(
            "module c;\ninput a;\nwire x = y & a;\nwire y = x | a;\noutput o;\nassign o = x;\nendmodule\n",
        )
        .unwrap();
        let e = elaborate(&m).unwrap_err();
        assert!(e.message.contains("cycle"));
    }

    #[test]
    fn unassigned_wire_detected() {
        let m = parse_rtl("module u;\nwire w;\noutput o;\nassign o = w;\nendmodule\n").unwrap();
        let e = elaborate(&m).unwrap_err();
        assert!(e.message.contains("never assigned"));
    }

    #[test]
    fn mux_condition_width_checked() {
        let m = parse_rtl(
            "module m;\ninput [1:0] c;\ninput a, b;\noutput y;\nassign y = c ? a : b;\nendmodule\n",
        )
        .unwrap();
        assert!(elaborate(&m).is_err());
    }
}
