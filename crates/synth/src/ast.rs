//! RTL-lite: grammar, AST, and recursive-descent parser.
//!
//! ```text
//! module <name>;
//! input clk;                      // the clock, by name
//! input [15:0] a, b;              // bit-vector ports, MSB:LSB
//! output [16:0] sum;
//! reg   [15:0] acc;               // registered signal
//! wire  [15:0] t = a ^ b;         // wire with inline definition
//! assign sum = {1'b0, a} + {1'b0, b};
//! always @(posedge clk) begin
//!   acc <= acc + a;
//! end
//! endmodule
//! ```
//!
//! Expression operators, loosest first:
//! `?:` · `|` · `^` · `&` · `== !=` · `<` · `<< >>` (constant shift) ·
//! `+ -` · unary `~` · primary (identifier, bit select `a[3]`, slice
//! `a[7:4]`, literal `8'hFF` / `4'b1010` / `13`, concatenation `{a, b}`,
//! parentheses).

use std::fmt;

/// A width-annotated literal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Literal {
    /// Bit width.
    pub width: u32,
    /// Value (LSB-aligned; bits above `width` are zero).
    pub value: u64,
}

/// An RTL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Signal reference.
    Ident(String),
    /// Constant.
    Const(Literal),
    /// Single-bit select `sig[i]`.
    Index(Box<Expr>, u32),
    /// Slice `sig[hi:lo]`.
    Slice(Box<Expr>, u32, u32),
    /// Concatenation `{a, b, ...}` (MSB part first, Verilog style).
    Concat(Vec<Expr>),
    /// Bitwise NOT.
    Not(Box<Expr>),
    /// Bitwise AND.
    And(Box<Expr>, Box<Expr>),
    /// Bitwise OR.
    Or(Box<Expr>, Box<Expr>),
    /// Bitwise XOR.
    Xor(Box<Expr>, Box<Expr>),
    /// Addition (modular, result width = max operand width).
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Equality (1-bit result).
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality (1-bit result).
    Ne(Box<Expr>, Box<Expr>),
    /// Unsigned less-than (1-bit result).
    Lt(Box<Expr>, Box<Expr>),
    /// Left shift by constant.
    Shl(Box<Expr>, u32),
    /// Right shift by constant.
    Shr(Box<Expr>, u32),
    /// Conditional `cond ? t : e` (cond reduced to its LSB... must be 1 bit).
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Direction/kind of a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalKind {
    /// Module input.
    Input,
    /// Module output.
    Output,
    /// Internal wire.
    Wire,
    /// Registered signal (becomes DFFs).
    Reg,
}

/// A declared signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    /// Name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Kind.
    pub kind: SignalKind,
    /// True when this input is the clock.
    pub is_clock: bool,
}

/// A combinational assignment (`assign lhs = expr` or a wire initialiser).
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Target signal name.
    pub lhs: String,
    /// Right-hand side.
    pub rhs: Expr,
}

/// A registered assignment inside `always @(posedge clk)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegAssign {
    /// Target register name.
    pub lhs: String,
    /// Next-state expression.
    pub rhs: Expr,
}

/// A parsed RTL-lite module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// All declared signals.
    pub signals: Vec<Signal>,
    /// Combinational assignments, in source order.
    pub assigns: Vec<Assign>,
    /// Registered assignments.
    pub reg_assigns: Vec<RegAssign>,
}

impl Module {
    /// Looks up a signal by name.
    pub fn signal(&self, name: &str) -> Option<&Signal> {
        self.signals.iter().find(|s| s.name == name)
    }
}

/// Parse failure with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRtlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseRtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rtl parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseRtlError {}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(u64),
    SizedLit(Literal),
    Punct(&'static str),
}

struct Lexer {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

fn lex(text: &str) -> Result<Lexer, ParseRtlError> {
    let mut toks = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = match raw.find("//") {
            Some(i) => &raw[..i],
            None => raw,
        };
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((line, Tok::Ident(code[start..i].to_owned())));
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let num: u64 = code[start..i].parse().map_err(|_| ParseRtlError {
                    line,
                    message: "number too large".to_owned(),
                })?;
                // Sized literal? <width>'<base><digits>
                if i < bytes.len() && bytes[i] == b'\'' {
                    i += 1;
                    if i >= bytes.len() {
                        return Err(ParseRtlError {
                            line,
                            message: "truncated sized literal".to_owned(),
                        });
                    }
                    let base = bytes[i] as char;
                    i += 1;
                    let dstart = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    let digits: String = code[dstart..i].replace('_', "");
                    let radix = match base {
                        'b' | 'B' => 2,
                        'o' | 'O' => 8,
                        'd' | 'D' => 10,
                        'h' | 'H' => 16,
                        _ => {
                            return Err(ParseRtlError {
                                line,
                                message: format!("unknown literal base `{base}`"),
                            })
                        }
                    };
                    let value = u64::from_str_radix(&digits, radix).map_err(|_| ParseRtlError {
                        line,
                        message: format!("bad literal digits `{digits}`"),
                    })?;
                    let width = num as u32;
                    if width == 0 || width > 64 {
                        return Err(ParseRtlError {
                            line,
                            message: "literal width must be 1..=64".to_owned(),
                        });
                    }
                    let mask = if width == 64 {
                        u64::MAX
                    } else {
                        (1u64 << width) - 1
                    };
                    toks.push((
                        line,
                        Tok::SizedLit(Literal {
                            width,
                            value: value & mask,
                        }),
                    ));
                } else {
                    toks.push((line, Tok::Number(num)));
                }
                continue;
            }
            // Punctuation (two-char first).
            let two: Option<&'static str> = if i + 1 < bytes.len() {
                match &code[i..i + 2] {
                    "<=" => Some("<="),
                    "==" => Some("=="),
                    "!=" => Some("!="),
                    "<<" => Some("<<"),
                    ">>" => Some(">>"),
                    "@(" => None, // handled as single chars
                    _ => None,
                }
            } else {
                None
            };
            if let Some(p) = two {
                toks.push((line, Tok::Punct(p)));
                i += 2;
                continue;
            }
            let one: &'static str = match c {
                ';' => ";",
                ',' => ",",
                '(' => "(",
                ')' => ")",
                '[' => "[",
                ']' => "]",
                '{' => "{",
                '}' => "}",
                ':' => ":",
                '?' => "?",
                '~' => "~",
                '&' => "&",
                '|' => "|",
                '^' => "^",
                '+' => "+",
                '-' => "-",
                '=' => "=",
                '<' => "<",
                '@' => "@",
                _ => {
                    return Err(ParseRtlError {
                        line,
                        message: format!("unexpected character `{c}`"),
                    })
                }
            };
            toks.push((line, Tok::Punct(one)));
            i += 1;
        }
    }
    Ok(Lexer { toks, pos: 0 })
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(l, _)| *l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek() == Some(&Tok::Punct_of(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseRtlError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`")))
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseRtlError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err("expected identifier".to_owned())),
        }
    }

    fn expect_number(&mut self) -> Result<u64, ParseRtlError> {
        match self.next() {
            Some(Tok::Number(n)) => Ok(n),
            _ => Err(self.err("expected number".to_owned())),
        }
    }

    fn err(&self, message: String) -> ParseRtlError {
        ParseRtlError {
            line: self.line(),
            message,
        }
    }
}

impl Tok {
    #[allow(non_snake_case)]
    fn Punct_of(p: &str) -> Tok {
        // Interned punctuation set; `Punct` stores &'static str, so match
        // through the known table.
        const TABLE: &[&str] = &[
            ";", ",", "(", ")", "[", "]", "{", "}", ":", "?", "~", "&", "|", "^", "+", "-", "=",
            "<", "@", "<=", "==", "!=", "<<", ">>",
        ];
        for &t in TABLE {
            if t == p {
                return Tok::Punct(t);
            }
        }
        unreachable!("unknown punct {p}")
    }
}

// --------------------------------------------------------------- parser --

/// Parses RTL-lite source into a [`Module`].
///
/// # Errors
///
/// Returns [`ParseRtlError`] with the source line on any syntax problem.
pub fn parse_rtl(text: &str) -> Result<Module, ParseRtlError> {
    let mut lx = lex(text)?;
    let mut module = Module::default();
    if !lx.eat_ident("module") {
        return Err(lx.err("expected `module`".to_owned()));
    }
    module.name = lx.expect_ident()?;
    lx.expect_punct(";")?;

    loop {
        if lx.eat_ident("endmodule") {
            break;
        }
        if lx.peek().is_none() {
            return Err(lx.err("missing `endmodule`".to_owned()));
        }
        if lx.eat_ident("input") {
            parse_decl(&mut lx, &mut module, SignalKind::Input)?;
        } else if lx.eat_ident("output") {
            parse_decl(&mut lx, &mut module, SignalKind::Output)?;
        } else if lx.eat_ident("wire") {
            parse_decl(&mut lx, &mut module, SignalKind::Wire)?;
        } else if lx.eat_ident("reg") {
            parse_decl(&mut lx, &mut module, SignalKind::Reg)?;
        } else if lx.eat_ident("assign") {
            let lhs = lx.expect_ident()?;
            lx.expect_punct("=")?;
            let rhs = parse_expr(&mut lx)?;
            lx.expect_punct(";")?;
            module.assigns.push(Assign { lhs, rhs });
        } else if lx.eat_ident("always") {
            parse_always(&mut lx, &mut module)?;
        } else {
            return Err(lx.err("expected declaration, assign, always or endmodule".to_owned()));
        }
    }
    Ok(module)
}

fn parse_decl(lx: &mut Lexer, module: &mut Module, kind: SignalKind) -> Result<(), ParseRtlError> {
    let width = if lx.eat_punct("[") {
        let hi = lx.expect_number()? as u32;
        lx.expect_punct(":")?;
        let lo = lx.expect_number()? as u32;
        lx.expect_punct("]")?;
        if lo != 0 {
            return Err(lx.err("ranges must be [hi:0]".to_owned()));
        }
        hi + 1
    } else {
        1
    };
    loop {
        let name = lx.expect_ident()?;
        if module.signal(&name).is_some() {
            return Err(lx.err(format!("duplicate signal `{name}`")));
        }
        let is_clock =
            kind == SignalKind::Input && width == 1 && (name == "clk" || name == "clock");
        // Wire with inline definition: `wire [..] t = expr;`
        let mut inline = None;
        if kind == SignalKind::Wire && lx.eat_punct("=") {
            inline = Some(parse_expr(lx)?);
        }
        module.signals.push(Signal {
            name: name.clone(),
            width,
            kind,
            is_clock,
        });
        if let Some(rhs) = inline {
            module.assigns.push(Assign { lhs: name, rhs });
        }
        if lx.eat_punct(",") {
            continue;
        }
        lx.expect_punct(";")?;
        return Ok(());
    }
}

fn parse_always(lx: &mut Lexer, module: &mut Module) -> Result<(), ParseRtlError> {
    lx.expect_punct("@")?;
    lx.expect_punct("(")?;
    if !lx.eat_ident("posedge") {
        return Err(lx.err("only `always @(posedge <clk>)` is supported".to_owned()));
    }
    let _clk = lx.expect_ident()?;
    lx.expect_punct(")")?;
    let block = lx.eat_ident("begin");
    loop {
        if block && lx.eat_ident("end") {
            break;
        }
        let lhs = lx.expect_ident()?;
        lx.expect_punct("<=")?;
        let rhs = parse_expr(lx)?;
        lx.expect_punct(";")?;
        module.reg_assigns.push(RegAssign { lhs, rhs });
        if !block {
            break;
        }
    }
    Ok(())
}

fn parse_expr(lx: &mut Lexer) -> Result<Expr, ParseRtlError> {
    parse_mux(lx)
}

fn parse_mux(lx: &mut Lexer) -> Result<Expr, ParseRtlError> {
    let cond = parse_or(lx)?;
    if lx.eat_punct("?") {
        let t = parse_mux(lx)?;
        lx.expect_punct(":")?;
        let e = parse_mux(lx)?;
        Ok(Expr::Mux(Box::new(cond), Box::new(t), Box::new(e)))
    } else {
        Ok(cond)
    }
}

fn parse_or(lx: &mut Lexer) -> Result<Expr, ParseRtlError> {
    let mut a = parse_xor(lx)?;
    while lx.eat_punct("|") {
        let b = parse_xor(lx)?;
        a = Expr::Or(Box::new(a), Box::new(b));
    }
    Ok(a)
}

fn parse_xor(lx: &mut Lexer) -> Result<Expr, ParseRtlError> {
    let mut a = parse_and(lx)?;
    while lx.eat_punct("^") {
        let b = parse_and(lx)?;
        a = Expr::Xor(Box::new(a), Box::new(b));
    }
    Ok(a)
}

fn parse_and(lx: &mut Lexer) -> Result<Expr, ParseRtlError> {
    let mut a = parse_cmp(lx)?;
    while lx.eat_punct("&") {
        let b = parse_cmp(lx)?;
        a = Expr::And(Box::new(a), Box::new(b));
    }
    Ok(a)
}

fn parse_cmp(lx: &mut Lexer) -> Result<Expr, ParseRtlError> {
    let a = parse_shift(lx)?;
    if lx.eat_punct("==") {
        let b = parse_shift(lx)?;
        Ok(Expr::Eq(Box::new(a), Box::new(b)))
    } else if lx.eat_punct("!=") {
        let b = parse_shift(lx)?;
        Ok(Expr::Ne(Box::new(a), Box::new(b)))
    } else if lx.eat_punct("<") {
        let b = parse_shift(lx)?;
        Ok(Expr::Lt(Box::new(a), Box::new(b)))
    } else {
        Ok(a)
    }
}

fn parse_shift(lx: &mut Lexer) -> Result<Expr, ParseRtlError> {
    let mut a = parse_add(lx)?;
    loop {
        if lx.eat_punct("<<") {
            let n = lx.expect_number()? as u32;
            a = Expr::Shl(Box::new(a), n);
        } else if lx.eat_punct(">>") {
            let n = lx.expect_number()? as u32;
            a = Expr::Shr(Box::new(a), n);
        } else {
            return Ok(a);
        }
    }
}

fn parse_add(lx: &mut Lexer) -> Result<Expr, ParseRtlError> {
    let mut a = parse_unary(lx)?;
    loop {
        if lx.eat_punct("+") {
            let b = parse_unary(lx)?;
            a = Expr::Add(Box::new(a), Box::new(b));
        } else if lx.eat_punct("-") {
            let b = parse_unary(lx)?;
            a = Expr::Sub(Box::new(a), Box::new(b));
        } else {
            return Ok(a);
        }
    }
}

fn parse_unary(lx: &mut Lexer) -> Result<Expr, ParseRtlError> {
    if lx.eat_punct("~") {
        let e = parse_unary(lx)?;
        return Ok(Expr::Not(Box::new(e)));
    }
    parse_primary(lx)
}

fn parse_primary(lx: &mut Lexer) -> Result<Expr, ParseRtlError> {
    match lx.next() {
        Some(Tok::Ident(name)) => {
            let mut e = Expr::Ident(name);
            if lx.eat_punct("[") {
                let hi = lx.expect_number()? as u32;
                if lx.eat_punct(":") {
                    let lo = lx.expect_number()? as u32;
                    lx.expect_punct("]")?;
                    e = Expr::Slice(Box::new(e), hi, lo);
                } else {
                    lx.expect_punct("]")?;
                    e = Expr::Index(Box::new(e), hi);
                }
            }
            Ok(e)
        }
        Some(Tok::SizedLit(l)) => Ok(Expr::Const(l)),
        Some(Tok::Number(n)) => Ok(Expr::Const(Literal {
            // Unsized decimal: width = bits needed (min 1).
            width: (64 - n.leading_zeros()).max(1),
            value: n,
        })),
        Some(Tok::Punct("(")) => {
            let e = parse_expr(lx)?;
            lx.expect_punct(")")?;
            Ok(e)
        }
        Some(Tok::Punct("{")) => {
            let mut parts = vec![parse_expr(lx)?];
            while lx.eat_punct(",") {
                parts.push(parse_expr(lx)?);
            }
            lx.expect_punct("}")?;
            Ok(Expr::Concat(parts))
        }
        other => Err(lx.err(format!("unexpected token in expression: {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations_and_assigns() {
        let m = parse_rtl(
            "module t;\ninput clk;\ninput [7:0] a, b;\noutput [7:0] y;\nwire [7:0] w = a & b;\nassign y = w | b;\nendmodule\n",
        )
        .unwrap();
        assert_eq!(m.name, "t");
        assert_eq!(m.signals.len(), 5);
        assert!(m.signal("clk").unwrap().is_clock);
        assert_eq!(m.signal("a").unwrap().width, 8);
        assert_eq!(m.assigns.len(), 2); // wire initialiser + assign
    }

    #[test]
    fn parses_always_block() {
        let m = parse_rtl(
            "module t;\ninput clk;\ninput [3:0] d;\nreg [3:0] q;\noutput [3:0] y;\nalways @(posedge clk) begin\n q <= d + 4'd1;\nend\nassign y = q;\nendmodule\n",
        )
        .unwrap();
        assert_eq!(m.reg_assigns.len(), 1);
        assert_eq!(m.reg_assigns[0].lhs, "q");
    }

    #[test]
    fn operator_precedence() {
        let m =
            parse_rtl("module t;\ninput a, b, c;\noutput y;\nassign y = a | b & c;\nendmodule\n")
                .unwrap();
        // & binds tighter than |
        match &m.assigns[0].rhs {
            Expr::Or(l, r) => {
                assert_eq!(**l, Expr::Ident("a".into()));
                assert!(matches!(**r, Expr::And(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mux_and_comparison() {
        let m = parse_rtl(
            "module t;\ninput [3:0] a, b;\ninput s;\noutput [3:0] y;\nassign y = s ? a + b : a - b;\noutput e;\nassign e = a == b;\nendmodule\n",
        )
        .unwrap();
        assert!(matches!(m.assigns[0].rhs, Expr::Mux(_, _, _)));
        assert!(matches!(m.assigns[1].rhs, Expr::Eq(_, _)));
    }

    #[test]
    fn literals() {
        let m =
            parse_rtl("module t;\noutput [7:0] y;\nassign y = 8'hA5 ^ 8'b1111_0000;\nendmodule\n")
                .unwrap();
        match &m.assigns[0].rhs {
            Expr::Xor(l, r) => {
                assert_eq!(
                    **l,
                    Expr::Const(Literal {
                        width: 8,
                        value: 0xA5
                    })
                );
                assert_eq!(
                    **r,
                    Expr::Const(Literal {
                        width: 8,
                        value: 0xF0
                    })
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn slice_index_concat_shift() {
        let m = parse_rtl(
            "module t;\ninput [7:0] a;\noutput [7:0] y;\nassign y = {a[3:0], a[7:4]} << 1;\noutput b;\nassign b = a[7];\nendmodule\n",
        )
        .unwrap();
        assert!(matches!(m.assigns[0].rhs, Expr::Shl(_, 1)));
        assert!(matches!(m.assigns[1].rhs, Expr::Index(_, 7)));
    }

    #[test]
    fn errors_report_lines() {
        let e = parse_rtl("module t;\ninput a\noutput y;\nendmodule\n").unwrap_err();
        assert!(e.line >= 2, "line = {}", e.line);
        assert!(parse_rtl("garbage").is_err());
        assert!(parse_rtl("module t;\ninput a;\n").is_err()); // no endmodule
    }

    #[test]
    fn duplicate_signal_rejected() {
        let e = parse_rtl("module t;\ninput a;\ninput a;\nendmodule\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }
}
