//! # smt-synth
//!
//! RTL-to-gates synthesis: the front of the paper's Fig. 4 flow
//! ("RTL → physical synthesis using low-Vth cells → initial netlist").
//!
//! Pipeline:
//!
//! 1. [`ast`] — an RTL-lite hardware description language (a Verilog
//!    subset: modules, bit-vector wires/regs, `assign`, `always
//!    @(posedge clk)`, operators `~ & | ^ + - == != < << >> ?:`, bit
//!    select/slice, literals) with a recursive-descent parser;
//! 2. [`aig`] — bit-blasting into an and-inverter graph with structural
//!    hashing and constant folding;
//! 3. [`map`] — technology mapping onto the low-Vth cells of a
//!    [`smt_cells::library::Library`] (NAND/INV core with XOR/MUX pattern
//!    rescue and fanout-based drive selection), producing a
//!    [`smt_netlist::netlist::Netlist`].
//!
//! ```
//! use smt_cells::library::Library;
//! use smt_synth::{synthesize, SynthOptions};
//!
//! let rtl = r"
//! module maj;
//! input a, b, c;
//! output y;
//! assign y = (a & b) | (a & c) | (b & c);
//! endmodule
//! ";
//! let lib = Library::industrial_130nm();
//! let netlist = synthesize(rtl, &lib, &SynthOptions::default()).unwrap();
//! assert!(netlist.num_instances() > 0);
//! ```

pub mod aig;
pub mod ast;
pub mod map;
pub mod snl;

pub use aig::{Aig, Lit};
pub use ast::{parse_rtl, Module, ParseRtlError};
pub use map::{map_to_netlist, SynthOptions};
pub use snl::{read as read_snl, write as write_snl, ParseSnlError, WriteSnlError};

/// Parses RTL-lite text, elaborates it into an AIG and maps it to gates.
///
/// # Errors
///
/// Returns [`SynthError`] for parse failures or elaboration problems
/// (unknown identifiers, width mismatches).
pub fn synthesize(
    rtl: &str,
    lib: &smt_cells::library::Library,
    options: &SynthOptions,
) -> Result<smt_netlist::netlist::Netlist, SynthError> {
    let module = parse_rtl(rtl).map_err(SynthError::Parse)?;
    let design = aig::elaborate(&module).map_err(SynthError::Elab)?;
    Ok(map_to_netlist(&design, lib, options))
}

/// Top-level synthesis error.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// RTL text did not parse.
    Parse(ParseRtlError),
    /// Elaboration failed (unknown name, width mismatch...).
    Elab(aig::ElabError),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::Parse(e) => write!(f, "{e}"),
            SynthError::Elab(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SynthError {}
