//! Technology mapping: AIG → gate-level netlist on low-Vth cells.
//!
//! Strategy (a classical NAND-based mapper with pattern rescue):
//!
//! * each demanded AND node is realised as a `ND2` whose output is the
//!   node's *negative* phase — complemented fanins of other AND nodes are
//!   therefore free;
//! * positive phases are produced by `INV` where demanded;
//! * the XOR/MUX shapes emitted by [`crate::aig::Aig::xor`] /
//!   [`crate::aig::Aig::mux`] are pattern-matched back into `XOR2` /
//!   `XNR2` / `MUX2` cells, saving 3 NANDs each;
//! * registers become `DFF` cells clocked by the `clk` port;
//! * finally, drive strengths are upsized (`X1 → X2 → X4`) on
//!   fanout-heavy nets.
//!
//! The paper's flow synthesises with **low-Vth cells only** so the timing
//! constraint is met at the start ("As the low-Vth cell is faster, the
//! timing constraint can be satisfied"); Vth relaxation happens later in
//! `smt-core`.

use crate::aig::{Design, Lit, NodeKind};
use smt_cells::cell::VthClass;
use smt_cells::library::Library;
use smt_netlist::netlist::{NetId, Netlist};
use std::collections::HashMap;
use std::ops::Not;

/// Mapper options.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthOptions {
    /// Net fanout at which drivers are upsized to X2.
    pub x2_fanout: usize,
    /// Net fanout at which drivers are upsized to X4.
    pub x4_fanout: usize,
    /// Enable XOR2/XNR2/MUX2 pattern rescue.
    pub pattern_rescue: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            x2_fanout: 5,
            x4_fanout: 10,
            pattern_rescue: true,
        }
    }
}

/// A recognised multi-node pattern rooted at an AND node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    /// Node's positive phase = XNOR(a, b) (negative = XOR).
    Xnor(Lit, Lit),
    /// Node's negative phase = MUX(c, t, e) (positive needs an INV).
    Mux(Lit, Lit, Lit),
    /// Node's positive phase = AOI21(a, b, c) = `!((a&b)|c)`.
    Aoi21(Lit, Lit, Lit),
    /// Node's negative phase = OAI21(a, b, c) = `!((a|b)&c)`.
    Oai21(Lit, Lit, Lit),
}

struct Mapper<'a> {
    design: &'a Design,
    lib: &'a Library,
    options: &'a SynthOptions,
    netlist: Netlist,
    /// Net realising each demanded literal.
    lit_net: HashMap<Lit, NetId>,
    gate_counter: usize,
    clk: Option<NetId>,
}

impl<'a> Mapper<'a> {
    fn fresh_gate_name(&mut self, prefix: &str) -> String {
        let name = format!("{prefix}{}", self.gate_counter);
        self.gate_counter += 1;
        name
    }

    fn cell(&self, base: &str) -> smt_cells::cell::CellId {
        self.lib
            .find_id(&format!("{base}_X1_L"))
            .unwrap_or_else(|| panic!("library lacks {base}_X1_L"))
    }

    /// Detects the XOR / MUX shapes on an AND node.
    fn match_pattern(&self, node: u32) -> Option<Pattern> {
        let NodeKind::And(x, y) = self.design.aig.node(node) else {
            return None;
        };
        if !(x.is_complemented() && y.is_complemented()) {
            return None;
        }
        let NodeKind::And(a0, a1) = self.design.aig.node(x.node()) else {
            return None;
        };
        let NodeKind::And(b0, b1) = self.design.aig.node(y.node()) else {
            return None;
        };
        // XOR: children are and(a, !b) and and(!a, b).
        for (p, q) in [(a0, a1), (a1, a0)] {
            for (r, s) in [(b0, b1), (b1, b0)] {
                if p == r.not() && q == s.not() {
                    // node = and(!(p&q), !(!p&!q))?? — verify shapes:
                    // x = and(p, q), y = and(p.not(), q.not()) means
                    // node = !(p&q) & !(!p&!q) = XOR(p,q)... but the
                    // canonical xor builder emits and(a,!b), and(!a,b):
                    // x = and(a, !b), y = and(!a, b) -> node = XNOR? No:
                    // node = !x' ... handled below by concrete check.
                    let a = p;
                    let b = q.not();
                    // Check exact builder shape: x.node = and(a, !b),
                    // y.node = and(!a, b).
                    let xa = self.design.aig.node(x.node());
                    let ya = self.design.aig.node(y.node());
                    if let (NodeKind::And(x0, x1), NodeKind::And(y0, y1)) = (xa, ya) {
                        let xs = [x0, x1];
                        let ys = [y0, y1];
                        let has = |arr: [Lit; 2], l: Lit| arr[0] == l || arr[1] == l;
                        if has(xs, a) && has(xs, b.not()) && has(ys, a.not()) && has(ys, b) {
                            // node = and(!and(a,!b), !and(!a,b)) = XNOR(a,b).
                            return Some(Pattern::Xnor(a, b));
                        }
                    }
                }
            }
        }
        // MUX: node = and(!and(c, t), !and(!c, e)) -> !node = mux(c,t,e).
        let xs = [a0, a1];
        let ys = [b0, b1];
        for c in xs {
            for yc in ys {
                if yc == c.not() {
                    let t = if xs[0] == c { xs[1] } else { xs[0] };
                    let e = if ys[0] == yc { ys[1] } else { ys[0] };
                    return Some(Pattern::Mux(c, t, e));
                }
            }
        }
        None
    }

    /// A literal's net is "free" when realising it costs no extra gate:
    /// already materialised, a positive input, or the natural NAND output
    /// of an AND node (negative phase).
    fn lit_is_free(&self, l: Lit) -> bool {
        if self.lit_net.contains_key(&l) {
            return true;
        }
        match self.design.aig.node(l.node()) {
            NodeKind::Input(_) => !l.is_complemented(),
            NodeKind::And(_, _) => l.is_complemented(),
            NodeKind::ConstFalse => false,
        }
    }

    /// Complex-gate rescue for one demanded phase of an AND node:
    ///
    /// * positive phase of `and(!u, !c)` with `u = and(a, b)` is
    ///   `AOI21(a, b, c)`;
    /// * negative phase of `and(!u, y)` with `u = and(p, q)` is
    ///   `OAI21(!p, !q, y)`.
    ///
    /// Applied only when the pattern's input nets are free, so the rescue
    /// can only reduce gate count.
    fn match_complex(&self, node: u32, complemented: bool) -> Option<Pattern> {
        let NodeKind::And(x, y) = self.design.aig.node(node) else {
            return None;
        };
        // Try both operand orders: the complemented-AND child becomes `u`.
        for (u_lit, other) in [(x, y), (y, x)] {
            if !u_lit.is_complemented() {
                continue;
            }
            let NodeKind::And(p, q) = self.design.aig.node(u_lit.node()) else {
                continue;
            };
            // AOI21(p, q, c) realises the node's positive phase natively
            // (an INV recovers the negative one — still cheaper than the
            // NAND+INV+NAND default).
            if other.is_complemented() {
                let c = other.not();
                if self.lit_is_free(p) && self.lit_is_free(q) && self.lit_is_free(c) {
                    return Some(Pattern::Aoi21(p, q, c));
                }
            }
            // OAI21(!p, !q, other) realises the negative phase natively.
            if complemented {
                let a = p.not();
                let b = q.not();
                if self.lit_is_free(a) && self.lit_is_free(b) && self.lit_is_free(other) {
                    return Some(Pattern::Oai21(a, b, other));
                }
            }
        }
        None
    }

    /// Returns (creating if needed) the net carrying a literal.
    fn net_of(&mut self, lit: Lit) -> NetId {
        if let Some(&n) = self.lit_net.get(&lit) {
            return n;
        }
        let net = match self.design.aig.node(lit.node()) {
            NodeKind::ConstFalse => self.const_net(lit.is_complemented()),
            NodeKind::Input(_) => {
                // Input nets are seeded in `run`; reaching here means the
                // positive phase exists and we need an inverter.
                let pos = Lit::new(lit.node(), false);
                let src = *self.lit_net.get(&pos).expect("input nets are pre-seeded");
                debug_assert!(lit.is_complemented());
                self.emit_unary("INV", src)
            }
            NodeKind::And(x, y) => {
                if self.options.pattern_rescue {
                    if let Some(p) = self.match_pattern(lit.node()) {
                        let net = self.emit_pattern(p, lit.is_complemented());
                        self.lit_net.insert(lit, net);
                        return net;
                    }
                    if let Some(p) = self.match_complex(lit.node(), lit.is_complemented()) {
                        let net = self.emit_pattern(p, lit.is_complemented());
                        self.lit_net.insert(lit, net);
                        return net;
                    }
                }
                if lit.is_complemented() {
                    // Negative phase: a NAND.
                    let xa = self.net_of(x);
                    let ya = self.net_of(y);
                    self.emit_binary("ND2", xa, ya)
                } else {
                    // Positive phase: invert the negative phase.
                    let neg = self.net_of(lit.not());
                    self.emit_unary("INV", neg)
                }
            }
        };
        self.lit_net.insert(lit, net);
        net
    }

    /// Constant nets, built once from the first primary input
    /// (`XOR2(i, i) = 0`; `XNR2(i, i) = 1`). Real libraries use tie cells;
    /// the XOR trick keeps the library small and the constants testable.
    fn const_net(&mut self, one: bool) -> NetId {
        let seed_lit = self
            .design
            .inputs
            .first()
            .map(|(_, l)| *l)
            .or_else(|| self.design.regs.first().map(|r| r.q))
            .expect("constant outputs require at least one input or register");
        let seed = self.net_of(seed_lit);
        let base = if one { "XNR2" } else { "XOR2" };
        self.emit_binary(base, seed, seed)
    }

    fn emit_pattern(&mut self, p: Pattern, complemented: bool) -> NetId {
        match p {
            Pattern::Xnor(a, b) => {
                let an = self.net_of(a);
                let bn = self.net_of(b);
                // positive phase = XNOR, negative = XOR.
                let base = if complemented { "XOR2" } else { "XNR2" };
                self.emit_binary(base, an, bn)
            }
            Pattern::Mux(c, t, e) => {
                let cn = self.net_of(c);
                let tn = self.net_of(t);
                let en = self.net_of(e);
                // negative phase = MUX output; positive needs INV.
                let mux = self.emit_mux(cn, tn, en);
                if complemented {
                    mux
                } else {
                    self.emit_unary("INV", mux)
                }
            }
            Pattern::Aoi21(a, b, c) => {
                let an = self.net_of(a);
                let bn = self.net_of(b);
                let cn = self.net_of(c);
                let pos = self.emit_ternary("AOI21", an, bn, cn);
                if complemented {
                    self.emit_unary("INV", pos)
                } else {
                    pos
                }
            }
            Pattern::Oai21(a, b, c) => {
                let an = self.net_of(a);
                let bn = self.net_of(b);
                let cn = self.net_of(c);
                let neg = self.emit_ternary("OAI21", an, bn, cn);
                if complemented {
                    neg
                } else {
                    self.emit_unary("INV", neg)
                }
            }
        }
    }

    /// Emits a 3-input cell with pins A, B, C.
    fn emit_ternary(&mut self, base: &str, a: NetId, b: NetId, c: NetId) -> NetId {
        let cell = self.cell(base);
        let name = self.fresh_gate_name("g");
        let out = self.netlist.add_net(&self.netlist.fresh_net_name("n"));
        let inst = self.netlist.add_instance(&name, cell, self.lib);
        for (pin, net) in [("A", a), ("B", b), ("C", c)] {
            self.netlist
                .connect_by_name(inst, pin, net, self.lib)
                .expect("ternary cell pins");
        }
        self.netlist
            .connect_by_name(inst, "Z", out, self.lib)
            .expect("ternary cell pin Z");
        out
    }

    fn emit_unary(&mut self, base: &str, a: NetId) -> NetId {
        let cell = self.cell(base);
        let name = self.fresh_gate_name("g");
        let out = self.netlist.add_net(&self.netlist.fresh_net_name("n"));
        let inst = self.netlist.add_instance(&name, cell, self.lib);
        self.netlist
            .connect_by_name(inst, "A", a, self.lib)
            .expect("unary cell pin A");
        self.netlist
            .connect_by_name(inst, "Z", out, self.lib)
            .expect("unary cell pin Z");
        out
    }

    fn emit_binary(&mut self, base: &str, a: NetId, b: NetId) -> NetId {
        let cell = self.cell(base);
        let name = self.fresh_gate_name("g");
        let out = self.netlist.add_net(&self.netlist.fresh_net_name("n"));
        let inst = self.netlist.add_instance(&name, cell, self.lib);
        self.netlist
            .connect_by_name(inst, "A", a, self.lib)
            .expect("binary cell pin A");
        self.netlist
            .connect_by_name(inst, "B", b, self.lib)
            .expect("binary cell pin B");
        self.netlist
            .connect_by_name(inst, "Z", out, self.lib)
            .expect("binary cell pin Z");
        out
    }

    fn emit_mux(&mut self, c: NetId, t: NetId, e: NetId) -> NetId {
        let cell = self.cell("MUX2");
        let name = self.fresh_gate_name("g");
        let out = self.netlist.add_net(&self.netlist.fresh_net_name("n"));
        let inst = self.netlist.add_instance(&name, cell, self.lib);
        // MUX2: Z = S ? B : A.
        self.netlist
            .connect_by_name(inst, "S", c, self.lib)
            .expect("mux pin S");
        self.netlist
            .connect_by_name(inst, "B", t, self.lib)
            .expect("mux pin B");
        self.netlist
            .connect_by_name(inst, "A", e, self.lib)
            .expect("mux pin A");
        self.netlist
            .connect_by_name(inst, "Z", out, self.lib)
            .expect("mux pin Z");
        out
    }

    fn run(mut self) -> Netlist {
        // Ports.
        for (name, lit) in &self.design.inputs {
            let net = self.netlist.add_input(name);
            self.lit_net.insert(*lit, net);
        }
        if self.design.has_clock || !self.design.regs.is_empty() {
            self.clk = Some(self.netlist.add_clock("clk"));
        }

        // Registers: create Q nets up front so logic can reference them.
        // FFs are mapped on high-Vth: they hold state in standby and can
        // never be power-gated, so a low-Vth FF would leak forever. The
        // low-Vth *logic* around them absorbs the timing cost (standard
        // practice in standby-critical designs and consistent with the
        // paper's figures, which draw the F/Fs outside the MT regions).
        let dff = self.lib.find_id("DFF_X1_H").expect("library has DFF_X1_H");
        let mut ff_insts = Vec::new();
        for (i, reg) in self.design.regs.iter().enumerate() {
            let q_net = self
                .netlist
                .add_net(&format!("{}__q", reg.name.replace(['[', ']'], "_")));
            self.lit_net.insert(reg.q, q_net);
            let inst = self.netlist.add_instance(&format!("ff{i}"), dff, self.lib);
            self.netlist
                .connect_by_name(inst, "Q", q_net, self.lib)
                .expect("DFF pin Q");
            self.netlist
                .connect_by_name(inst, "CK", self.clk.expect("regs imply clk"), self.lib)
                .expect("DFF pin CK");
            ff_insts.push(inst);
        }

        // Map register D cones.
        for (i, reg) in self.design.regs.iter().enumerate() {
            let d_net = self.net_of(reg.next);
            self.netlist
                .connect_by_name(ff_insts[i], "D", d_net, self.lib)
                .expect("DFF pin D");
        }

        // Map outputs.
        for (name, lit) in &self.design.outputs {
            let net = self.net_of(*lit);
            self.netlist.expose_output(name, net);
        }

        self.upsize_drivers();
        self.netlist
    }

    /// Upsizes X1 gates whose output fanout exceeds the thresholds.
    fn upsize_drivers(&mut self) {
        let mut work: Vec<(smt_netlist::netlist::InstId, u8)> = Vec::new();
        for (id, inst) in self.netlist.instances() {
            let cell = self.lib.cell(inst.cell);
            let Some(out) = cell.output_pin() else {
                continue;
            };
            let Some(net) = inst.net_on(out) else {
                continue;
            };
            let fanout = self.netlist.net(net).loads.len();
            let want = if fanout >= self.options.x4_fanout {
                4
            } else if fanout >= self.options.x2_fanout {
                2
            } else {
                1
            };
            if want > cell.drive {
                work.push((id, want));
            }
        }
        for (id, drive) in work {
            let cell = self.lib.cell(self.netlist.inst(id).cell);
            let name = format!("{}_X{}_{}", cell.kind.base_name(), drive, cell.vth.suffix());
            if let Some(new_id) = self.lib.find_id(&name) {
                self.netlist
                    .replace_cell(id, new_id, self.lib)
                    .expect("drive upsizing keeps the same pin names");
            }
        }
    }
}

/// Maps an elaborated design onto the library's low-Vth cells.
///
/// # Panics
///
/// Panics if the library lacks the required `_X1_L` cells (generated
/// libraries always have them) or if a constant output exists in a design
/// with no inputs or registers.
pub fn map_to_netlist(design: &Design, lib: &Library, options: &SynthOptions) -> Netlist {
    let mapper = Mapper {
        design,
        lib,
        options,
        netlist: Netlist::new(&design.name),
        lit_net: HashMap::new(),
        gate_counter: 0,
        clk: None,
    };
    let netlist = mapper.run();
    debug_assert!(netlist.instances().all(|(_, i)| {
        let c = lib.cell(i.cell);
        c.vth == VthClass::Low || c.is_sequential()
    }));
    netlist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::elaborate;
    use crate::ast::parse_rtl;
    use smt_netlist::check::{analyze, LintPolicy};
    use smt_sim::{Simulator, Value};

    fn lib() -> Library {
        Library::industrial_130nm()
    }

    fn synth(rtl: &str, lib: &Library) -> Netlist {
        let m = parse_rtl(rtl).unwrap();
        let d = elaborate(&m).unwrap();
        map_to_netlist(&d, lib, &SynthOptions::default())
    }

    #[test]
    fn mapped_xor_uses_pattern_cell() {
        let lib = lib();
        let n = synth(
            "module x;\ninput a, b;\noutput y;\nassign y = a ^ b;\nendmodule\n",
            &lib,
        );
        let kinds: Vec<&str> = n
            .instances()
            .map(|(_, i)| lib.cell(i.cell).kind.base_name())
            .collect();
        assert!(
            kinds.contains(&"XOR2") || kinds.contains(&"XNR2"),
            "pattern rescue failed: {kinds:?}"
        );
        // Far fewer gates than the 4-NAND expansion.
        assert!(n.num_instances() <= 2, "{kinds:?}");
    }

    #[test]
    fn mapped_netlist_is_lint_clean() {
        let lib = lib();
        let n = synth(
            "module m;\ninput clk;\ninput [3:0] a, b;\nreg [3:0] acc;\noutput [3:0] y;\nalways @(posedge clk) acc <= acc + (a ^ b);\nassign y = acc;\nendmodule\n",
            &lib,
        );
        let report = analyze(&n, &lib, &LintPolicy::structural());
        assert!(report.is_clean(), "{report:?}");
        assert!(n.clock_net().is_some());
    }

    #[test]
    fn functional_check_combinational() {
        // Map a majority gate, then simulate all 8 input states.
        let lib = lib();
        let n = synth(
            "module maj;\ninput a, b, c;\noutput y;\nassign y = (a & b) | (a & c) | (b & c);\nendmodule\n",
            &lib,
        );
        let mut sim = Simulator::new(&n, &lib).unwrap();
        let a = n.find_net("a").unwrap();
        let b = n.find_net("b").unwrap();
        let c = n.find_net("c").unwrap();
        let y = n
            .ports()
            .find(|(_, p)| p.name == "y")
            .map(|(_, p)| p.net)
            .unwrap();
        for v in 0..8u32 {
            sim.set_input(a, Value::from_bool(v & 1 != 0));
            sim.set_input(b, Value::from_bool(v & 2 != 0));
            sim.set_input(c, Value::from_bool(v & 4 != 0));
            sim.propagate(&n, &lib);
            let expect = (v.count_ones() >= 2) as u32 == 1;
            assert_eq!(sim.value(y), Value::from_bool(expect), "state {v}");
        }
    }

    #[test]
    fn functional_check_sequential_counter() {
        let lib = lib();
        let n = synth(
            "module cnt;\ninput clk;\nreg [2:0] q;\noutput [2:0] y;\nalways @(posedge clk) q <= q + 3'd1;\nassign y = q;\nendmodule\n",
            &lib,
        );
        let mut sim = Simulator::new(&n, &lib).unwrap();
        // Reset all FFs to 0 (cold X otherwise).
        for (id, inst) in n.instances() {
            if lib.cell(inst.cell).is_sequential() {
                sim.set_ff_state(id, Value::Zero);
            }
        }
        sim.propagate(&n, &lib);
        let bits: Vec<_> = (0..3)
            .map(|i| {
                n.ports()
                    .find(|(_, p)| p.name == format!("y[{i}]"))
                    .map(|(_, p)| p.net)
                    .unwrap()
            })
            .collect();
        let read = |s: &Simulator| -> u32 {
            bits.iter()
                .enumerate()
                .map(|(i, &net)| match s.value(net) {
                    Value::One => 1 << i,
                    _ => 0,
                })
                .sum()
        };
        assert_eq!(read(&sim), 0);
        for step in 1..=10u32 {
            sim.clock_edge(&n, &lib);
            assert_eq!(read(&sim), step % 8, "after {step} edges");
        }
    }

    #[test]
    fn constant_output_mapped_via_tie_trick() {
        let lib = lib();
        let n = synth(
            "module k;\ninput a;\noutput z0;\noutput z1;\nassign z0 = a & ~a;\nassign z1 = a | ~a;\nendmodule\n",
            &lib,
        );
        let mut sim = Simulator::new(&n, &lib).unwrap();
        let a = n.find_net("a").unwrap();
        for v in [Value::Zero, Value::One] {
            sim.set_input(a, v);
            sim.propagate(&n, &lib);
            let z0 = n.ports().find(|(_, p)| p.name == "z0").unwrap().1.net;
            let z1 = n.ports().find(|(_, p)| p.name == "z1").unwrap().1.net;
            assert_eq!(sim.value(z0), Value::Zero);
            assert_eq!(sim.value(z1), Value::One);
        }
    }

    #[test]
    fn complex_gate_rescue_reduces_gate_count() {
        // y = (a & b) | c maps to one AOI21 + INV (or OAI-form) instead of
        // three NAND/INV stages.
        let lib = lib();
        let rtl = "module t;\ninput a, b, c;\noutput y;\nassign y = (a & b) | c;\nendmodule\n";
        let with = synth(rtl, &lib);
        let m = parse_rtl(rtl).unwrap();
        let d = elaborate(&m).unwrap();
        let without = map_to_netlist(
            &d,
            &lib,
            &SynthOptions {
                pattern_rescue: false,
                ..SynthOptions::default()
            },
        );
        assert!(
            with.num_instances() < without.num_instances(),
            "rescue {} vs plain {}",
            with.num_instances(),
            without.num_instances()
        );
        let kinds: Vec<&str> = with
            .instances()
            .map(|(_, i)| lib.cell(i.cell).kind.base_name())
            .collect();
        assert!(
            kinds.contains(&"AOI21") || kinds.contains(&"OAI21"),
            "no complex gate used: {kinds:?}"
        );
        // Function intact across both mappings.
        use smt_sim::check_equivalence;
        let eq = check_equivalence(&without, &with, &lib, 32, 4).unwrap();
        assert!(eq.is_equivalent(), "{:?}", eq.mismatches.first());
    }

    #[test]
    fn drive_upsizing_on_fanout() {
        // One input fanning out to many XORs forces the driver upsize path
        // through an inverter stage.
        let lib = lib();
        let mut rtl = String::from("module f;\ninput a, b;\n");
        for i in 0..12 {
            rtl.push_str(&format!("output y{i};\nassign y{i} = ~(a ^ b);\n"));
        }
        rtl.push_str("endmodule\n");
        let n = synth(&rtl, &lib);
        // The XNOR result feeds 0 gates (each output is separate), but the
        // shared XOR/XNR gate output is reused: structural hashing should
        // collapse all 12 to ONE gate (shared net), so no upsize needed but
        // the netlist must stay small.
        assert!(
            n.num_instances() <= 3,
            "hashing failed: {}",
            n.num_instances()
        );
    }
}
