//! SNL — the *structural netlist lite* text format, the workload-suite
//! ingestion front end.
//!
//! A BLIF-like, technology-independent gate-level dialect: designs are
//! described as generic logic operators and latches over named nets, and
//! **ingestion lowers through the existing synthesis pipeline** — the
//! parser builds an [`Aig`]-backed
//! [`Design`] (structural hashing and constant
//! folding apply exactly as for RTL-lite elaboration) and
//! [`map_to_netlist`] produces the all-low-Vth
//! [`Netlist`] every flow run starts from. The inverse direction,
//! [`fn@write`], serialises any pre-flow netlist back to the dialect.
//!
//! ```text
//! # any line may carry a '#' comment
//! .model adder4
//! .inputs a0 a1 b0 b1
//! .clock clk
//! .outputs s0 s1
//! .gate xor2 A=a0 B=b0 Z=n1
//! .gate an2  A=a0 B=b0 Z=c0
//! .latch n1 s0
//! .gate xor2 A=a1 B=b1 Z=t1
//! .gate xor2 A=t1 B=c0 Z=n2
//! .latch n2 s1
//! .end
//! ```
//!
//! Directives:
//!
//! * `.model <name>` — must come first; names the design;
//! * `.inputs <net>...` / `.outputs <net>...` — primary ports (repeatable,
//!   lists accumulate in order);
//! * `.clock <net>` — the clock input (required iff `.latch` is used);
//! * `.gate <op> <PIN>=<net>...` — one generic logic operator; the formal
//!   pin names of each op mirror the library cells (`A`, `B`, `C`, `D`,
//!   `S` for the mux select, `Z` for the output);
//! * `.latch <d-net> <q-net>` — a rising-edge D flip-flop;
//! * `.end` — required terminator (a missing `.end` means a truncated
//!   file and is an error).
//!
//! Supported ops: `inv buf nd2 nd3 nd4 nr2 nr3 an2 or2 xor2 xnr2 aoi21
//! oai21 aoi22 oai22 mux2` — exactly the combinational
//! [`CellKind`]s of the library, so
//! [`fn@write`] can serialise any mapped netlist and reading it back is a
//! pure re-synthesis.
//!
//! Gates may appear in any order; the parser resolves nets on demand and
//! reports combinational cycles, dangling nets (a consumed net that
//! nothing drives), duplicate drivers, unknown ops and truncated files as
//! [`ParseSnlError`]s — malformed input never panics.
//!
//! **Round-trip normal form.** `read` is a re-synthesis, so a
//! `write → read` pair may restructure logic (an `an2` becomes the
//! mapper's NAND+INV normal form, structural hashing merges duplicate
//! gates, complex-gate covers regroup). Within a trip or two the text
//! reaches the mapper's normal form, which **is** a fixed point of
//! `write → parse → write` — the property the I/O round-trip tests pin
//! down (`tests/io_roundtrips.rs`).

use crate::aig::{Aig, Design, Lit, RegBit};
use crate::map::{map_to_netlist, SynthOptions};
use smt_cells::cell::{CellKind, CellRole};
use smt_cells::library::Library;
use smt_netlist::netlist::{Netlist, PortDir};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Error produced by [`parse`] / [`read`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSnlError {
    /// 1-based source line (0 for whole-file problems such as a missing
    /// `.end`).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseSnlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snl parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSnlError {}

/// Error produced by [`fn@write`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteSnlError {
    /// The netlist contains a cell with no generic-logic equivalent
    /// (switches, holders, clock-tree buffers): SNL is a *pre-flow*
    /// format.
    UnsupportedCell {
        /// Instance name.
        inst: String,
        /// Cell name.
        cell: String,
    },
    /// An instance pin that the format needs is unconnected.
    DanglingPin {
        /// Instance name.
        inst: String,
        /// Pin name.
        pin: String,
    },
    /// The netlist has flip-flops but no clock port.
    MissingClock,
    /// An output port's name is also the name of a different, driven
    /// net: in the text both would drive the same symbol, so the output
    /// could not be parsed back.
    AmbiguousName {
        /// The colliding output port.
        port: String,
    },
}

impl fmt::Display for WriteSnlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteSnlError::UnsupportedCell { inst, cell } => {
                write!(
                    f,
                    "instance `{inst}` ({cell}) has no SNL equivalent (pre-flow netlists only)"
                )
            }
            WriteSnlError::DanglingPin { inst, pin } => {
                write!(f, "instance `{inst}` pin `{pin}` is unconnected")
            }
            WriteSnlError::MissingClock => {
                write!(f, "netlist has flip-flops but no clock port")
            }
            WriteSnlError::AmbiguousName { port } => {
                write!(
                    f,
                    "output port `{port}` shares its name with a different driven \
                     net; the text form would give the symbol two drivers"
                )
            }
        }
    }
}

impl std::error::Error for WriteSnlError {}

/// The generic logic operators of the dialect, i.e. the combinational
/// cell kinds. `(keyword, input formals, CellKind)`.
const OPS: &[(&str, &[&str], CellKind)] = &[
    ("inv", &["A"], CellKind::Inv),
    ("buf", &["A"], CellKind::Buf),
    ("nd2", &["A", "B"], CellKind::Nand2),
    ("nd3", &["A", "B", "C"], CellKind::Nand3),
    ("nd4", &["A", "B", "C", "D"], CellKind::Nand4),
    ("nr2", &["A", "B"], CellKind::Nor2),
    ("nr3", &["A", "B", "C"], CellKind::Nor3),
    ("an2", &["A", "B"], CellKind::And2),
    ("or2", &["A", "B"], CellKind::Or2),
    ("xor2", &["A", "B"], CellKind::Xor2),
    ("xnr2", &["A", "B"], CellKind::Xnor2),
    ("aoi21", &["A", "B", "C"], CellKind::Aoi21),
    ("oai21", &["A", "B", "C"], CellKind::Oai21),
    ("aoi22", &["A", "B", "C", "D"], CellKind::Aoi22),
    ("oai22", &["A", "B", "C", "D"], CellKind::Oai22),
    ("mux2", &["A", "B", "S"], CellKind::Mux2),
];

fn op_for_kind(kind: CellKind) -> Option<(&'static str, &'static [&'static str])> {
    OPS.iter()
        .find(|(_, _, k)| *k == kind)
        .map(|(name, formals, _)| (*name, *formals))
}

fn op_by_name(name: &str) -> Option<(&'static [&'static str], CellKind)> {
    OPS.iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, formals, k)| (*formals, *k))
}

/// The register name a latch's Q net stands for: the technology mapper
/// names a register's output net `<reg>__q`, so the parser strips one
/// `__q` suffix when turning a `.latch` back into a register — otherwise
/// every write → read trip would accrete another suffix and the
/// round-trip would never reach a fixed point.
fn latch_symbol(q_net: &str) -> &str {
    q_net.strip_suffix("__q").unwrap_or(q_net)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serialises a pre-flow netlist (logic gates + flip-flops) to SNL text.
///
/// MT-variant logic cells serialise fine (their `MTE`/`VGND` power pins
/// are not logic and are omitted); switches, holders and clock-tree
/// buffers have no generic-logic equivalent and are rejected.
///
/// # Errors
///
/// See [`WriteSnlError`].
pub fn write(netlist: &Netlist, lib: &Library) -> Result<String, WriteSnlError> {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", netlist.name);

    let inputs: Vec<&str> = netlist
        .ports()
        .filter(|(_, p)| p.dir == PortDir::Input && !p.is_clock)
        .map(|(_, p)| p.name.as_str())
        .collect();
    if !inputs.is_empty() {
        for chunk in inputs.chunks(16) {
            let _ = writeln!(out, ".inputs {}", chunk.join(" "));
        }
    }
    let clock = netlist
        .ports()
        .find(|(_, p)| p.dir == PortDir::Input && p.is_clock)
        .map(|(_, p)| p.name.clone());
    if let Some(ck) = &clock {
        let _ = writeln!(out, ".clock {ck}");
    }
    let outputs: Vec<&str> = netlist
        .ports()
        .filter(|(_, p)| p.dir == PortDir::Output)
        .map(|(_, p)| p.name.as_str())
        .collect();
    for chunk in outputs.chunks(16) {
        let _ = writeln!(out, ".outputs {}", chunk.join(" "));
    }

    let pin_net = |inst: &smt_netlist::netlist::Instance,
                   cell: &smt_cells::cell::Cell,
                   pin: usize|
     -> Result<String, WriteSnlError> {
        inst.net_on(pin)
            .map(|n| netlist.net(n).name.clone())
            .ok_or_else(|| WriteSnlError::DanglingPin {
                inst: inst.name.clone(),
                pin: cell.pins[pin].name.clone(),
            })
    };

    for (_, inst) in netlist.instances() {
        let cell = lib.cell(inst.cell);
        match cell.role {
            CellRole::Sequential => {
                if clock.is_none() {
                    return Err(WriteSnlError::MissingClock);
                }
                let d = cell
                    .pin_index("D")
                    .ok_or_else(|| WriteSnlError::UnsupportedCell {
                        inst: inst.name.clone(),
                        cell: cell.name.clone(),
                    })?;
                let q = cell
                    .pin_index("Q")
                    .ok_or_else(|| WriteSnlError::UnsupportedCell {
                        inst: inst.name.clone(),
                        cell: cell.name.clone(),
                    })?;
                let d_net = pin_net(inst, cell, d)?;
                let q_net = pin_net(inst, cell, q)?;
                let _ = writeln!(out, ".latch {d_net} {q_net}");
            }
            CellRole::Logic => {
                let (op, formals) =
                    op_for_kind(cell.kind).ok_or_else(|| WriteSnlError::UnsupportedCell {
                        inst: inst.name.clone(),
                        cell: cell.name.clone(),
                    })?;
                let _ = write!(out, ".gate {op}");
                for formal in formals {
                    let pin =
                        cell.pin_index(formal)
                            .ok_or_else(|| WriteSnlError::UnsupportedCell {
                                inst: inst.name.clone(),
                                cell: cell.name.clone(),
                            })?;
                    let _ = write!(out, " {formal}={}", pin_net(inst, cell, pin)?);
                }
                let z = cell
                    .output_pin()
                    .ok_or_else(|| WriteSnlError::UnsupportedCell {
                        inst: inst.name.clone(),
                        cell: cell.name.clone(),
                    })?;
                let _ = writeln!(out, " Z={}", pin_net(inst, cell, z)?);
            }
            CellRole::ClockBuf | CellRole::Switch | CellRole::Holder => {
                return Err(WriteSnlError::UnsupportedCell {
                    inst: inst.name.clone(),
                    cell: cell.name.clone(),
                });
            }
        }
    }

    // Output ports exposed on internal nets (the mapper's normal case)
    // become identity `buf` gates driving a net named after the port, so
    // the alias survives the trip. If a *different* net already uses the
    // port's name, the alias gate and that net's driver would collide on
    // one symbol in the text — unrepresentable, so refuse.
    for (_, p) in netlist.ports() {
        if p.dir == PortDir::Output && netlist.net(p.net).name != p.name {
            if netlist.find_net(&p.name).is_some() {
                return Err(WriteSnlError::AmbiguousName {
                    port: p.name.clone(),
                });
            }
            let _ = writeln!(out, ".gate buf A={} Z={}", netlist.net(p.net).name, p.name);
        }
    }

    out.push_str(".end\n");
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct RawGate {
    line: usize,
    kind: CellKind,
    /// Input nets in formal order.
    inputs: Vec<String>,
    /// Output net.
    output: String,
}

#[derive(Debug)]
struct RawLatch {
    line: usize,
    d: String,
    q: String,
}

#[derive(Debug, Default)]
struct RawModel {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    clock: Option<String>,
    gates: Vec<RawGate>,
    latches: Vec<RawLatch>,
}

fn err(line: usize, message: impl Into<String>) -> ParseSnlError {
    ParseSnlError {
        line,
        message: message.into(),
    }
}

fn scan(text: &str) -> Result<RawModel, ParseSnlError> {
    let mut model: Option<RawModel> = None;
    let mut ended = false;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let code = raw.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if ended {
            return Err(err(lineno, "content after `.end`"));
        }
        let mut toks = code.split_whitespace();
        let head = toks.next().expect("non-empty line has a token");
        let rest: Vec<&str> = toks.collect();
        if head == ".model" {
            if model.is_some() {
                return Err(err(lineno, "duplicate `.model`"));
            }
            let [name] = rest.as_slice() else {
                return Err(err(lineno, "`.model` takes exactly one name"));
            };
            model = Some(RawModel {
                name: (*name).to_owned(),
                ..RawModel::default()
            });
            continue;
        }
        let m = model
            .as_mut()
            .ok_or_else(|| err(lineno, format!("`{head}` before `.model`")))?;
        match head {
            ".inputs" => m.inputs.extend(rest.iter().map(|s| (*s).to_owned())),
            ".outputs" => m.outputs.extend(rest.iter().map(|s| (*s).to_owned())),
            ".clock" => {
                let [ck] = rest.as_slice() else {
                    return Err(err(lineno, "`.clock` takes exactly one net"));
                };
                if m.clock.is_some() {
                    return Err(err(lineno, "duplicate `.clock`"));
                }
                m.clock = Some((*ck).to_owned());
            }
            ".latch" => {
                let [d, q] = rest.as_slice() else {
                    return Err(err(lineno, "`.latch` takes `<d-net> <q-net>`"));
                };
                m.latches.push(RawLatch {
                    line: lineno,
                    d: (*d).to_owned(),
                    q: (*q).to_owned(),
                });
            }
            ".gate" => {
                let Some((op, conns)) = rest.split_first() else {
                    return Err(err(lineno, "`.gate` needs an operator"));
                };
                let Some((formals, kind)) = op_by_name(op) else {
                    return Err(err(lineno, format!("unknown operator `{op}`")));
                };
                let mut bound: HashMap<&str, &str> = HashMap::new();
                for conn in conns {
                    let Some((formal, net)) = conn.split_once('=') else {
                        return Err(err(lineno, format!("expected `PIN=net`, got `{conn}`")));
                    };
                    if net.is_empty() {
                        return Err(err(lineno, format!("empty net in `{conn}`")));
                    }
                    if bound.insert(formal, net).is_some() {
                        return Err(err(lineno, format!("pin `{formal}` bound twice")));
                    }
                }
                let mut inputs = Vec::with_capacity(formals.len());
                for formal in formals {
                    let net = bound.remove(formal).ok_or_else(|| {
                        err(lineno, format!("operator `{op}` is missing pin `{formal}`"))
                    })?;
                    inputs.push(net.to_owned());
                }
                let output = bound
                    .remove("Z")
                    .ok_or_else(|| err(lineno, format!("operator `{op}` is missing pin `Z`")))?
                    .to_owned();
                if let Some(stray) = bound.keys().next() {
                    return Err(err(lineno, format!("operator `{op}` has no pin `{stray}`")));
                }
                m.gates.push(RawGate {
                    line: lineno,
                    kind,
                    inputs,
                    output,
                });
            }
            ".end" => {
                if !rest.is_empty() {
                    return Err(err(lineno, "`.end` takes no arguments"));
                }
                ended = true;
            }
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }
    let m = model.ok_or_else(|| err(0, "no `.model` declaration found"))?;
    if !ended {
        return Err(err(0, "missing `.end` (truncated file?)"));
    }
    Ok(m)
}

/// On-demand net resolution: builds the AIG by walking gate fanin cones
/// from the outputs and latch D inputs.
struct Resolver<'m> {
    model: &'m RawModel,
    aig: Aig,
    /// Net name → literal, seeded with inputs and latch Qs.
    env: HashMap<String, Lit>,
    /// Net name → index of the gate driving it.
    driver: HashMap<&'m str, usize>,
    /// Expansion path, as a vec (for cycle error messages, in order) and
    /// a set (for O(1) membership on deep chains).
    visiting: Vec<&'m str>,
    visiting_set: std::collections::HashSet<&'m str>,
    /// Inner A·B / A+B literal of an in-flight AOI21/OAI21, by gate
    /// index (see the `Mid` frame below).
    partial: HashMap<usize, Lit>,
}

/// One step of the iterative cone walk. SNL ingests arbitrary designs at
/// ≥50k-gate scale, where a recursive resolver would overflow the stack
/// on long unregistered chains — so the walk keeps its own frame stack.
enum Frame<'m> {
    /// Demand a net (recorded with the line that referenced it).
    Enter(&'m str, usize),
    /// Build the inner A·B (resp. A+B) node of gate `gi` — AOI21/OAI21
    /// must create it *before* the C cone is resolved. This reproduces
    /// the node-creation order of the technology mapper's own
    /// complex-gate rescue, so re-reading a written netlist regroups
    /// these gates identically; without it the rescue's operand grouping
    /// flips on every write→read trip and the round trip never reaches
    /// a fixed point.
    Mid(usize),
    /// All inputs of gate `gi` resolved: build its output literal.
    Exit(&'m str, usize),
}

impl<'m> Resolver<'m> {
    fn resolve(&mut self, net: &'m str, use_line: usize) -> Result<Lit, ParseSnlError> {
        let mut stack = vec![Frame::Enter(net, use_line)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(net, line) => {
                    if self.env.contains_key(net) {
                        continue;
                    }
                    let Some(&gi) = self.driver.get(net) else {
                        return Err(err(
                            line,
                            format!("net `{net}` is never driven (dangling reference)"),
                        ));
                    };
                    if self.visiting_set.contains(net) {
                        return Err(err(
                            self.model.gates[gi].line,
                            format!(
                                "combinational cycle through `{net}` (chain: {})",
                                self.visiting.join(" -> ")
                            ),
                        ));
                    }
                    self.visiting.push(net);
                    self.visiting_set.insert(net);
                    let gate = &self.model.gates[gi];
                    stack.push(Frame::Exit(net, gi));
                    // Frames pop LIFO: push in reverse of execution order.
                    match gate.kind {
                        CellKind::Aoi21 | CellKind::Oai21 => {
                            stack.push(Frame::Enter(&gate.inputs[2], gate.line));
                            stack.push(Frame::Mid(gi));
                            stack.push(Frame::Enter(&gate.inputs[1], gate.line));
                            stack.push(Frame::Enter(&gate.inputs[0], gate.line));
                        }
                        _ => {
                            for input in gate.inputs.iter().rev() {
                                stack.push(Frame::Enter(input, gate.line));
                            }
                        }
                    }
                }
                Frame::Mid(gi) => {
                    let gate = &self.model.gates[gi];
                    let a = self.env[&gate.inputs[0]];
                    let b = self.env[&gate.inputs[1]];
                    let ab = match gate.kind {
                        CellKind::Aoi21 => self.aig.and(a, b),
                        CellKind::Oai21 => self.aig.or(a, b),
                        _ => unreachable!("Mid frames are only pushed for AOI21/OAI21"),
                    };
                    self.partial.insert(gi, ab);
                }
                Frame::Exit(net, gi) => {
                    let gate = &self.model.gates[gi];
                    let lit = match gate.kind {
                        CellKind::Aoi21 => {
                            let ab = self.partial.remove(&gi).expect("Mid ran before Exit");
                            let c = self.env[&gate.inputs[2]];
                            !self.aig.or(ab, c)
                        }
                        CellKind::Oai21 => {
                            let ab = self.partial.remove(&gi).expect("Mid ran before Exit");
                            let c = self.env[&gate.inputs[2]];
                            !self.aig.and(ab, c)
                        }
                        _ => {
                            let ins: Vec<Lit> =
                                gate.inputs.iter().map(|input| self.env[input]).collect();
                            build_op(&mut self.aig, gate.kind, &ins)
                        }
                    };
                    self.visiting.pop();
                    self.visiting_set.remove(net);
                    self.env.insert(net.to_owned(), lit);
                }
            }
        }
        Ok(self.env[net])
    }
}

/// Realises one generic operator over already-resolved input literals.
fn build_op(aig: &mut Aig, kind: CellKind, ins: &[Lit]) -> Lit {
    let and_all = |aig: &mut Aig, lits: &[Lit]| {
        lits.iter()
            .copied()
            .reduce(|a, b| aig.and(a, b))
            .expect("ops have at least one input")
    };
    match kind {
        CellKind::Inv => !ins[0],
        CellKind::Buf | CellKind::ClkBuf => ins[0],
        CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => !and_all(aig, ins),
        CellKind::And2 => and_all(aig, ins),
        CellKind::Nor2 | CellKind::Nor3 => {
            let inv: Vec<Lit> = ins.iter().map(|l| !*l).collect();
            and_all(aig, &inv)
        }
        CellKind::Or2 => aig.or(ins[0], ins[1]),
        CellKind::Xor2 => aig.xor(ins[0], ins[1]),
        CellKind::Xnor2 => aig.xnor(ins[0], ins[1]),
        // Z = !((A&B) | C)
        CellKind::Aoi21 => {
            let ab = aig.and(ins[0], ins[1]);
            !aig.or(ab, ins[2])
        }
        // Z = !((A|B) & C)
        CellKind::Oai21 => {
            let ab = aig.or(ins[0], ins[1]);
            !aig.and(ab, ins[2])
        }
        // Z = !((A&B) | (C&D))
        CellKind::Aoi22 => {
            let ab = aig.and(ins[0], ins[1]);
            let cd = aig.and(ins[2], ins[3]);
            !aig.or(ab, cd)
        }
        // Z = !((A|B) & (C|D))
        CellKind::Oai22 => {
            let ab = aig.or(ins[0], ins[1]);
            let cd = aig.or(ins[2], ins[3]);
            !aig.and(ab, cd)
        }
        // Z = S ? B : A
        CellKind::Mux2 => aig.mux(ins[2], ins[1], ins[0]),
        CellKind::Dff | CellKind::Switch | CellKind::Holder => {
            unreachable!("non-logic kinds never reach build_op")
        }
    }
}

/// Parses SNL text into an elaborated [`Design`] (the AIG plus port and
/// register bindings), ready for [`map_to_netlist`].
///
/// # Errors
///
/// [`ParseSnlError`] for malformed text: unknown directives/operators,
/// missing or doubly-bound pins, duplicate drivers, dangling nets,
/// combinational cycles, latches without a `.clock`, truncated files.
pub fn parse(text: &str) -> Result<Design, ParseSnlError> {
    let model = scan(text)?;
    let mut aig = Aig::new();
    let mut env: HashMap<String, Lit> = HashMap::new();
    let mut inputs = Vec::with_capacity(model.inputs.len());

    for name in &model.inputs {
        if env.contains_key(name) || model.clock.as_deref() == Some(name.as_str()) {
            return Err(err(0, format!("duplicate input `{name}`")));
        }
        // The mapper always names the clock port `clk`; a *data* input
        // with that name would collide with it during mapping.
        if name == "clk" && model.clock.is_some() {
            return Err(err(
                0,
                "input `clk` collides with the mapped clock port (rename it \
                 or declare it as the `.clock`)",
            ));
        }
        let lit = aig.input();
        env.insert(name.clone(), lit);
        inputs.push((name.clone(), lit));
    }
    if !model.latches.is_empty() && model.clock.is_none() {
        let line = model.latches[0].line;
        return Err(err(line, "`.latch` requires a `.clock` declaration"));
    }
    // Latch Q nets become AIG inputs (register outputs). Beyond textual
    // duplicates, reject collisions in the *mapped* Q-net namespace: the
    // technology mapper names each register's output net
    // `<name, brackets replaced>__q` after the parser strips one `__q`
    // suffix, so e.g. latch Qs `x` and `x__q` — or a primary input
    // already named `x__q` — would collide inside `map_to_netlist` and
    // panic there instead of erroring here.
    let mut q_lits = Vec::with_capacity(model.latches.len());
    let mut mapped_q: std::collections::HashSet<String> = std::collections::HashSet::new();
    for latch in &model.latches {
        if env.contains_key(&latch.q) {
            return Err(err(
                latch.line,
                format!("net `{}` has multiple drivers", latch.q),
            ));
        }
        let mapped = format!("{}__q", latch_symbol(&latch.q).replace(['[', ']'], "_"));
        if !mapped_q.insert(mapped.clone())
            || model.inputs.contains(&mapped)
            || model.clock.as_deref() == Some(mapped.as_str())
        {
            return Err(err(
                latch.line,
                format!(
                    "latch output `{}` normalises to register net `{mapped}`, \
                     which collides with another latch or port",
                    latch.q
                ),
            ));
        }
        let lit = aig.input();
        env.insert(latch.q.clone(), lit);
        q_lits.push(lit);
    }
    // Gate output nets: build the driver index, rejecting duplicates.
    let mut driver: HashMap<&str, usize> = HashMap::new();
    for (gi, gate) in model.gates.iter().enumerate() {
        if env.contains_key(&gate.output) || driver.insert(&gate.output, gi).is_some() {
            return Err(err(
                gate.line,
                format!("net `{}` has multiple drivers", gate.output),
            ));
        }
    }

    let mut r = Resolver {
        model: &model,
        aig,
        env,
        driver,
        visiting: Vec::new(),
        visiting_set: std::collections::HashSet::new(),
        partial: HashMap::new(),
    };
    let mut regs = Vec::with_capacity(model.latches.len());
    for (latch, q) in model.latches.iter().zip(q_lits) {
        let next = r.resolve(&latch.d, latch.line)?;
        regs.push(RegBit {
            name: latch_symbol(&latch.q).to_owned(),
            q,
            next,
        });
    }
    let mut outputs = Vec::with_capacity(model.outputs.len());
    for name in &model.outputs {
        if outputs.iter().any(|(n, _)| n == name) {
            return Err(err(0, format!("duplicate output `{name}`")));
        }
        let lit = r.resolve(name, 0)?;
        outputs.push((name.clone(), lit));
    }

    Ok(Design {
        name: model.name.clone(),
        aig: r.aig,
        inputs,
        outputs,
        regs,
        has_clock: model.clock.is_some(),
    })
}

/// Parses SNL text and technology-maps it onto the library's low-Vth
/// cells — the workload-suite ingestion entry point.
///
/// # Errors
///
/// See [`parse`].
pub fn read(text: &str, lib: &Library, options: &SynthOptions) -> Result<Netlist, ParseSnlError> {
    let design = parse(text)?;
    Ok(map_to_netlist(&design, lib, options))
}

/// Loads SNL text *structurally*: every `.gate` becomes the matching
/// X1 low-Vth library cell and every `.latch` a `DFF_X1_H`, with no
/// AIG round trip — where [`read`] is a re-synthesis that may
/// restructure logic, `load` reconstructs the written netlist
/// one-to-one (instance order, net names, port order). Because
/// [`fn@write`] emits exactly one line per instance, `load(write(n))`
/// reproduces `n` up to instance names, uniform X1/low-Vth sizing, and
/// one alias `buf` per output port exposed on an internally-named net.
/// The design cache (`smt_core::cache`) reads its entries through this
/// loader so cached designs keep the generator's structure instead of
/// drifting to the mapper's normal form.
///
/// Validation matches the writer's domain: unknown operators, rebound
/// pins, duplicate drivers, dangling nets and a `.latch` without a
/// `.clock` are positioned errors. Combinational cycles are *not*
/// detected here (there is no levelisation) — downstream lint/STA
/// reports them, exactly as for a hand-built netlist.
///
/// # Errors
///
/// [`ParseSnlError`] with the offending line.
pub fn load(text: &str, lib: &Library) -> Result<Netlist, ParseSnlError> {
    let m = scan(text)?;
    let mut n = Netlist::new(&m.name);
    let mut nets: HashMap<String, smt_netlist::netlist::NetId> = HashMap::new();
    for name in &m.inputs {
        if nets.contains_key(name) {
            return Err(err(0, format!("duplicate input net `{name}`")));
        }
        nets.insert(name.clone(), n.add_input(name));
    }
    let clock = match &m.clock {
        Some(ck) => {
            if nets.contains_key(ck) {
                return Err(err(0, format!("clock `{ck}` collides with an input")));
            }
            let id = n.add_clock(ck);
            nets.insert(ck.clone(), id);
            Some(id)
        }
        None => None,
    };
    fn net_of(
        n: &mut Netlist,
        nets: &mut HashMap<String, smt_netlist::netlist::NetId>,
        name: &str,
    ) -> smt_netlist::netlist::NetId {
        if let Some(&id) = nets.get(name) {
            return id;
        }
        let id = n.add_net(name);
        nets.insert(name.to_owned(), id);
        id
    }
    let cell_of = |kind: CellKind, line: usize| {
        let name = format!("{}_X1_L", kind.base_name());
        lib.find_id(&name)
            .ok_or_else(|| err(line, format!("library lacks `{name}`")))
    };
    for (i, gate) in m.gates.iter().enumerate() {
        let cell = cell_of(gate.kind, gate.line)?;
        let inst = n.add_instance(&format!("g{i}"), cell, lib);
        let (_, formals) = op_for_kind(gate.kind).expect("scan accepted the operator");
        for (formal, net_name) in formals.iter().zip(&gate.inputs) {
            let net = net_of(&mut n, &mut nets, net_name);
            n.connect_by_name(inst, formal, net, lib)
                .map_err(|e| err(gate.line, e.to_string()))?;
        }
        let out = net_of(&mut n, &mut nets, &gate.output);
        n.connect_by_name(inst, "Z", out, lib)
            .map_err(|e| err(gate.line, e.to_string()))?;
    }
    for (i, latch) in m.latches.iter().enumerate() {
        let clock = clock.ok_or_else(|| err(latch.line, "`.latch` requires a `.clock`"))?;
        let cell = lib
            .find_id("DFF_X1_H")
            .ok_or_else(|| err(latch.line, "library lacks `DFF_X1_H`"))?;
        let inst = n.add_instance(&format!("ff{i}"), cell, lib);
        let d = net_of(&mut n, &mut nets, &latch.d);
        let q = net_of(&mut n, &mut nets, &latch.q);
        for (pin, net) in [("D", d), ("CK", clock), ("Q", q)] {
            n.connect_by_name(inst, pin, net, lib)
                .map_err(|e| err(latch.line, e.to_string()))?;
        }
    }
    let mut exposed: Vec<&str> = Vec::with_capacity(m.outputs.len());
    for name in &m.outputs {
        if exposed.contains(&name.as_str()) {
            return Err(err(0, format!("duplicate output `{name}`")));
        }
        exposed.push(name);
        let net = nets
            .get(name)
            .copied()
            .ok_or_else(|| err(0, format!("output `{name}` is never driven")))?;
        n.expose_output(name, net);
    }
    // Every consumed net must have a driver (inputs drive themselves).
    for (_, net) in n.nets() {
        let consumed = !net.loads.is_empty() || !net.port_loads.is_empty();
        if consumed && net.driver.is_none() {
            return Err(err(
                0,
                format!("net `{}` is consumed but never driven", net.name),
            ));
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_netlist::check::{analyze, LintPolicy};
    use smt_sim::check_equivalence;

    fn lib() -> Library {
        Library::industrial_130nm()
    }

    const SAMPLE: &str = "\
# a 1-bit accumulator
.model acc1
.inputs a
.clock clk
.outputs y
.gate xor2 A=a B=q Z=d    # feedback
.latch d q
.gate buf A=q Z=y
.end
";

    #[test]
    fn parse_and_map_sample() {
        let l = lib();
        let n = read(SAMPLE, &l, &SynthOptions::default()).unwrap();
        assert_eq!(n.name, "acc1");
        assert!(n.clock_net().is_some());
        assert!(n.num_instances() >= 2);
        let report = analyze(&n, &l, &LintPolicy::structural());
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn gates_in_any_order_resolve() {
        let text = "\
.model reorder
.inputs a b
.outputs y
.gate inv A=n1 Z=y
.gate an2 A=a B=b Z=n1
.end
";
        let l = lib();
        let n = read(text, &l, &SynthOptions::default()).unwrap();
        // AND followed by INV re-synthesises to a single NAND.
        assert_eq!(n.num_instances(), 1);
    }

    #[test]
    fn every_op_round_trips_functionally() {
        // One gate of every op, written then reread: function preserved.
        let l = lib();
        for (op, formals, _) in OPS {
            let mut text = String::from(".model one\n.inputs i0 i1 i2 i3\n.outputs y\n");
            let _ = write!(text, ".gate {op}");
            for (i, f) in formals.iter().enumerate() {
                let _ = write!(text, " {f}=i{i}");
            }
            text.push_str(" Z=y\n.end\n");
            let n1 =
                read(&text, &l, &SynthOptions::default()).unwrap_or_else(|e| panic!("{op}: {e}"));
            let t2 = write(&n1, &l).unwrap();
            let n2 = read(&t2, &l, &SynthOptions::default()).unwrap();
            let eq = check_equivalence(&n1, &n2, &l, 48, 11).unwrap();
            assert!(eq.is_equivalent(), "{op}: {:?}", eq.mismatches.first());
        }
    }

    #[test]
    fn write_read_write_is_a_fixed_point() {
        let l = lib();
        let n1 = read(SAMPLE, &l, &SynthOptions::default()).unwrap();
        let t1 = write(&n1, &l).unwrap();
        let n2 = read(&t1, &l, &SynthOptions::default()).unwrap();
        let t2 = write(&n2, &l).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn dangling_net_is_an_error() {
        let text = ".model d\n.inputs a\n.outputs y\n.gate an2 A=a B=ghost Z=y\n.end\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("ghost"), "{e}");
        assert_eq!(e.line, 4);
    }

    #[test]
    fn duplicate_driver_is_an_error() {
        let text = "\
.model d
.inputs a b
.outputs y
.gate inv A=a Z=y
.gate inv A=b Z=y
.end
";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("multiple drivers"), "{e}");
        assert_eq!(e.line, 5);
    }

    #[test]
    fn truncated_file_is_an_error() {
        let text = ".model t\n.inputs a\n.outputs y\n.gate inv A=a Z=y\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");
    }

    #[test]
    fn combinational_cycle_is_an_error() {
        let text = "\
.model c
.inputs a
.outputs y
.gate an2 A=a B=n2 Z=n1
.gate inv A=n1 Z=n2
.gate buf A=n1 Z=y
.end
";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("cycle"), "{e}");
    }

    #[test]
    fn latch_without_clock_is_an_error() {
        let text = ".model l\n.inputs a\n.outputs q\n.latch a q\n.end\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("clock"), "{e}");
    }

    #[test]
    fn unknown_op_and_bad_pins_are_errors() {
        for bad in [
            ".model x\n.inputs a\n.outputs y\n.gate frob A=a Z=y\n.end\n",
            ".model x\n.inputs a\n.outputs y\n.gate inv A=a\n.end\n", // no Z
            ".model x\n.inputs a\n.outputs y\n.gate inv Z=y\n.end\n", // no A
            ".model x\n.inputs a\n.outputs y\n.gate inv A=a B=a Z=y\n.end\n", // stray B
            ".model x\n.inputs a\n.outputs y\n.gate inv A=a A=a Z=y\n.end\n", // dup A
            ".model x\n.inputs a a\n.outputs y\n.gate inv A=a Z=y\n.end\n", // dup input
            "gate inv A=a Z=y\n.end\n",                               // before .model
            ".model x\n.model y\n.end\n",                             // dup model
            ".model x\n.wat a\n.end\n",                               // unknown directive
            ".model x\n.end\nleftovers\n",                            // after .end
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn deep_unregistered_chains_do_not_overflow_the_stack() {
        // 120k chained buffers: the iterative resolver must walk this
        // without recursing (a recursive walk overflows around ~50k
        // frames), and constant folding collapses it to the input.
        let mut text = String::from(".model chain\n.inputs a\n.outputs y\n");
        let n = 120_000;
        let mut prev = "a".to_owned();
        for i in 0..n {
            let out = if i == n - 1 {
                "y".to_owned()
            } else {
                format!("c{i}")
            };
            let _ = writeln!(text, ".gate buf A={prev} Z={out}");
            prev = out;
        }
        text.push_str(".end\n");
        let d = parse(&text).expect("deep chain parses");
        assert_eq!(d.outputs.len(), 1);
        // buf is the AIG identity, so the whole chain folds to `a`.
        assert_eq!(d.outputs[0].1, d.inputs[0].1);
    }

    #[test]
    fn colliding_register_namespaces_error_instead_of_panicking_in_map() {
        // Latch Qs `x` and `x__q` both normalise to register net
        // `x__q`; an input may also squat on a latch's mapped name.
        // Either way parse must reject it — mapping would panic on the
        // duplicate net otherwise.
        for (what, text) in [
            (
                "two latches",
                ".model m\n.inputs a b\n.clock clk\n.outputs x\n.latch a x\n.latch b x__q\n.end\n",
            ),
            (
                "input vs latch",
                ".model m\n.inputs a x__q\n.clock clk\n.outputs x\n.latch a x\n.end\n",
            ),
            (
                "data input named clk",
                ".model m\n.inputs a clk\n.clock ck\n.outputs y\n.gate an2 A=a B=clk Z=y\n.end\n",
            ),
        ] {
            let e = parse(text).unwrap_err();
            assert!(
                e.message.contains("collides"),
                "{what}: unexpected error `{e}`"
            );
        }
        // The benign shapes still parse and map.
        let l = lib();
        let ok = ".model m\n.inputs a\n.clock clk\n.outputs y\n.latch a x__q\n.gate buf A=x__q Z=y\n.end\n";
        assert!(read(ok, &l, &SynthOptions::default()).is_ok());
    }

    #[test]
    fn writer_rejects_output_port_shadowed_by_a_net() {
        // An internal net literally named `y` plus an output port `y`
        // exposed on a different net: the text form would hand the
        // symbol `y` two drivers, so write must refuse.
        let l = lib();
        let mut n = Netlist::new("shadow");
        let a = n.add_input("a");
        let y_net = n.add_net("y");
        let w = n.add_net("w");
        let g1 = n.add_instance("g1", l.find_id("INV_X1_L").unwrap(), &l);
        let g2 = n.add_instance("g2", l.find_id("BUF_X1_L").unwrap(), &l);
        n.connect_by_name(g1, "A", a, &l).unwrap();
        n.connect_by_name(g1, "Z", y_net, &l).unwrap();
        n.connect_by_name(g2, "A", y_net, &l).unwrap();
        n.connect_by_name(g2, "Z", w, &l).unwrap();
        n.expose_output("y", w);
        let e = write(&n, &l).unwrap_err();
        assert!(
            matches!(e, WriteSnlError::AmbiguousName { ref port } if port == "y"),
            "{e}"
        );
    }

    #[test]
    fn writer_rejects_post_flow_cells() {
        let l = lib();
        let mut n = Netlist::new("sw");
        let a = n.add_input("a");
        let sw_cell = l.find_id("SW_W8").expect("library has a switch");
        let sw = n.add_instance("sw0", sw_cell, &l);
        let _ = (a, sw);
        let e = write(&n, &l).unwrap_err();
        assert!(matches!(e, WriteSnlError::UnsupportedCell { .. }));
    }
}
