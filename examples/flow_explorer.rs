//! Interactive constraint exploration: sweep the designer knobs the paper
//! names (bounce limit, VGND wirelength cap, cells-per-switch) on any of
//! the bundled circuits and watch the area/leakage/timing trade move.
//!
//! ```text
//! cargo run --release --example flow_explorer -- [a|b] [bounce_mv] [max_len_um] [max_cells]
//! cargo run --release --example flow_explorer -- a 30 200 16
//! cargo run --release --example flow_explorer -- b 50 400 24 --signoff
//! ```

use selective_mt::base::units::Volt;
use selective_mt::cells::library::Library;
use selective_mt::circuits::rtl::{circuit_a_rtl, circuit_b_rtl};
use selective_mt::core::flow::{run_flow, FlowConfig, Technique};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let circuit = args.first().map(String::as_str).unwrap_or("b");
    let bounce_mv: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(50.0);
    let max_len: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400.0);
    let max_cells: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(24);

    let (rtl, margin, frac) = match circuit {
        "a" | "A" => (circuit_a_rtl(), 1.22, 0.60),
        _ => (circuit_b_rtl(), 1.30, 0.74),
    };

    let lib = Library::industrial_130nm();
    let mut cfg = FlowConfig {
        technique: Technique::ImprovedSmt,
        period_margin: margin,
        ..FlowConfig::default()
    };
    cfg.dualvth.max_high_fraction = Some(frac);
    cfg.cluster.bounce_limit = Volt::from_millivolts(bounce_mv);
    cfg.cluster.max_vgnd_length_um = max_len;
    cfg.cluster.max_cells_per_switch = max_cells;

    eprintln!(
        "circuit {circuit}: bounce <= {bounce_mv} mV, VGND length <= {max_len} um, <= {max_cells} cells/switch"
    );
    let r = run_flow(&rtl, &lib, &cfg)?;

    println!("clock period  : {}", r.clock_period);
    println!("area          : {}", r.area);
    println!("standby       : {}", r.standby_leakage);
    println!("setup WNS     : {}", r.timing.wns);
    if let Some(c) = &r.cluster {
        println!(
            "clusters      : {} over {} MT-cells (largest {}), switch width {:.1} um",
            c.clusters, c.mt_cells, c.largest_cluster, c.total_switch_width_um
        );
        println!(
            "worst bounce  : {:.1} mV (limit {bounce_mv} mV), worst VGND length {:.0} um (limit {max_len} um)",
            c.worst_bounce.millivolts(),
            c.worst_length_um
        );
    }
    if let Some(re) = &r.reopt {
        println!(
            "re-opt        : {} upsized / {} downsized ({:+.1} um)",
            re.upsized, re.downsized, re.width_delta_um
        );
    }
    println!(
        "verification  : {}",
        if r.verify.passed() { "PASS" } else { "FAIL" }
    );
    if args.iter().any(|a| a == "--signoff") {
        println!("\n{}", selective_mt::core::report::render_signoff(&r, &lib, 3));
    }
    Ok(())
}
