//! Interactive constraint exploration: sweep the designer knobs the paper
//! names (bounce limit, VGND wirelength cap, cells-per-switch) on any of
//! the bundled circuits and watch the area/leakage/timing trade move.
//!
//! All variants fork one shared synthesis + placement checkpoint and run
//! in parallel (`run_sweep`), so exploring N operating points costs far
//! less than N full flows.
//!
//! ```text
//! cargo run --release --example flow_explorer -- [a|b] [bounce_mv...]
//! cargo run --release --example flow_explorer -- a 30 50 90
//! cargo run --release --example flow_explorer -- b 50 --signoff
//! cargo run --release --example flow_explorer -- b --config sweep.json
//! ```
//!
//! With `--config FILE`, FILE is a JSON `FlowConfig` (see
//! `smt_core::config_io`) used as the base for every variant.

use selective_mt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let circuit = args.first().map(String::as_str).unwrap_or("b");
    let cli_bounces_mv: Vec<f64> = args[1.min(args.len())..]
        .iter()
        .filter_map(|s| s.parse().ok())
        .collect();

    let (rtl, margin, frac) = match circuit {
        "a" | "A" => (circuit_a_rtl(), 1.22, 0.60),
        _ => (circuit_b_rtl(), 1.30, 0.74),
    };

    let lib = Library::industrial_130nm();
    // A `--config` file is the base for every variant, technique included;
    // without one, the improved technique with per-circuit defaults.
    let base = match args.iter().position(|a| a == "--config") {
        Some(i) => {
            let path = args.get(i + 1).ok_or("--config needs a file path")?;
            FlowConfig::from_json(&std::fs::read_to_string(path)?)?
        }
        None => {
            let mut cfg = FlowConfig {
                technique: Technique::ImprovedSmt,
                period_margin: margin,
                ..FlowConfig::default()
            };
            cfg.dualvth.max_high_fraction = Some(frac);
            cfg
        }
    };
    // Bounce points: CLI values if given, else the config's own limit,
    // else the paper's spread.
    let bounces_mv = if !cli_bounces_mv.is_empty() {
        cli_bounces_mv
    } else if args.iter().any(|a| a == "--config") {
        vec![base.cluster.bounce_limit.millivolts()]
    } else {
        vec![30.0, 50.0, 90.0]
    };

    let runs: Vec<SweepRun> = bounces_mv
        .iter()
        .map(|&mv| {
            let mut cfg = base.clone();
            cfg.cluster.bounce_limit = Volt::from_millivolts(mv);
            SweepRun::new(format!("bounce <= {mv:.0} mV"), cfg)
        })
        .collect();

    eprintln!(
        "circuit {circuit}: {} variants over one shared checkpoint",
        runs.len()
    );
    let outcomes = run_sweep(&rtl, &lib, &base, &runs, 0)?;

    for outcome in &outcomes {
        println!("== {} ==", outcome.label);
        let r = match &outcome.result {
            Ok(r) => r,
            Err(e) => {
                println!("failed: {e}\n");
                continue;
            }
        };
        println!("clock period  : {}", r.clock_period);
        println!("area          : {}", r.area);
        println!("standby       : {}", r.standby_leakage);
        println!("setup WNS     : {}", r.timing.wns);
        if let Some(c) = &r.cluster {
            println!(
                "clusters      : {} over {} MT-cells (largest {}), switch width {:.1} um",
                c.clusters, c.mt_cells, c.largest_cluster, c.total_switch_width_um
            );
            println!(
                "worst bounce  : {:.1} mV, worst VGND length {:.0} um",
                c.worst_bounce.millivolts(),
                c.worst_length_um
            );
        }
        if let Some(re) = &r.reopt {
            println!(
                "re-opt        : {} upsized / {} downsized ({:+.1} um)",
                re.upsized, re.downsized, re.width_delta_um
            );
        }
        println!(
            "verification  : {}",
            if r.verify.passed() { "PASS" } else { "FAIL" }
        );
        if args.iter().any(|a| a == "--signoff") {
            println!(
                "\n{}",
                selective_mt::core::report::render_signoff(r, &lib, 3)
            );
        }
        println!();
    }
    Ok(())
}
