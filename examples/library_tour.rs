//! A tour of the generated standard-cell library: the four Vth flavours,
//! the footer-switch ladder, Liberty-lite round-tripping, and the
//! transistor-level MT-cell schematics of Fig. 1.
//!
//! ```text
//! cargo run --example library_tour
//! ```

use selective_mt::base::report::Table;
use selective_mt::base::units::{Cap, Time};
use selective_mt::cells::cell::VthClass;
use selective_mt::cells::library::Library;
use selective_mt::cells::{liberty, schematic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::industrial_130nm();
    println!(
        "library `{}`: {} cells on smt130lp (VDD {}, Vth {} / {})\n",
        lib.tech.name,
        lib.len(),
        lib.tech.vdd,
        lib.tech.vth_low,
        lib.tech.vth_high
    );

    // Vth flavours of one function.
    let mut t = Table::new(
        "the four flavours of ND2_X1",
        &["cell", "area um^2", "standby uA", "delay @10fF ps"],
    );
    for v in [
        VthClass::Low,
        VthClass::High,
        VthClass::MtEmbedded,
        VthClass::MtVgnd,
    ] {
        let c = lib
            .find(&format!("ND2_X1_{}", v.suffix()))
            .expect("generated");
        t.row_owned(vec![
            c.name.clone(),
            format!("{:.2}", c.area.um2()),
            format!("{:.6}", c.standby_leak.ua()),
            format!(
                "{:.1}",
                c.arcs[0].delay(Time::new(40.0), Cap::new(10.0)).ps()
            ),
        ]);
    }
    println!("{t}");

    // The switch ladder.
    let mut t = Table::new(
        "footer-switch ladder",
        &[
            "cell",
            "width um",
            "on-res kOhm",
            "off-leak uA",
            "EM limit uA",
        ],
    );
    for id in lib.switch_cells() {
        let c = lib.cell(id);
        let s = c.switch.expect("switch spec");
        t.row_owned(vec![
            c.name.clone(),
            format!("{:.0}", s.width_um),
            format!("{:.4}", s.on_res.kohm()),
            format!("{:.6}", s.off_leak.ua()),
            format!("{:.0}", s.max_current.ua()),
        ]);
    }
    println!("{t}");

    // Liberty-lite round trip.
    let text = liberty::write(&lib);
    let parsed = liberty::parse(&text, lib.tech.clone())?;
    println!(
        "liberty-lite: serialised {} KiB, parsed back {} cells — round trip OK\n",
        text.len() / 1024,
        parsed.len()
    );

    // Fig. 1 schematics.
    for name in ["ND2_X1_MC", "ND2_X1_MV"] {
        let cell = lib.find(name).expect("cell");
        let s = schematic::mt_cell_schematic(&lib, cell);
        println!("{name}:");
        println!("{}", s.ascii_art());
    }
    Ok(())
}
