//! Quickstart: run the paper's improved Selective-MT flow on a small
//! design with the `FlowEngine` stage-graph API and inspect what it did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use selective_mt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A technology library with all four Vth flavours of every gate,
    //    footer switches and output holders.
    let lib = Library::industrial_130nm();

    // 2. Some RTL. The crate bundles benchmark designs; any RTL-lite
    //    source works.
    let rtl = r"
module accumulate;
input clk;
input [7:0] din;
input enable;
reg [11:0] acc;
wire [11:0] sum = acc + {4'd0, din};
output [11:0] total;
assign total = acc;
always @(posedge clk) acc <= enable ? sum : acc;
endmodule
";

    // 3. Build a flow engine for the full Fig. 4 stage graph: synthesis,
    //    placement, Dual-Vth assignment, MT-cell replacement, holder
    //    insertion, switch clustering, routing/CTS, post-route
    //    re-optimization, ECO, verification. The `StageLogger` observer
    //    prints each stage as it completes.
    let mut engine = FlowEngine::new(
        &lib,
        FlowConfig {
            technique: Technique::ImprovedSmt,
            ..FlowConfig::default()
        },
    )
    .observe(StageLogger);
    println!("stage plan: {:?}\n", engine.plan());
    let result = engine.run(rtl)?;

    println!("clock period     : {}", result.clock_period);
    println!("final area       : {}", result.area);
    println!("standby leakage  : {}", result.standby_leakage);
    println!("active leakage   : {}", result.active_leakage);
    println!("setup WNS        : {}", result.timing.wns);
    println!(
        "cells            : {} ({} MT-cells, {} shared switches, {} holders)",
        result.census.total(),
        result.census.mt_vgnd,
        result.census.switches,
        result.census.holders
    );
    println!(
        "verification     : {}",
        if result.verify.passed() {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // 4. Compare against the Dual-Vth baseline on the same constraints.
    //    One-shot wrapper API; see `run_sweep` for checkpoint-forked
    //    multi-config comparisons that share the synthesis + placement
    //    prefix.
    let baseline = run_flow(
        rtl,
        &lib,
        &FlowConfig {
            technique: Technique::DualVth,
            clock_period: Some(result.clock_period),
            ..FlowConfig::default()
        },
    )?;
    println!(
        "\nvs Dual-Vth      : leakage {:.1}% of baseline, area {:+.1}%",
        100.0 * result.standby_leakage.ua() / baseline.standby_leakage.ua(),
        100.0 * (result.area.um2() / baseline.area.um2() - 1.0),
    );
    Ok(())
}
