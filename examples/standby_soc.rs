//! The paper's motivating scenario: a portable-appliance SoC block that is
//! on standby most of the day (the intro cites cellular basebands; ref [3]
//! is a 3G baseband chip using this technique).
//!
//! This example runs all three techniques on the circuit-A substitute and
//! converts the results into battery-relevant numbers: charge drawn per
//! day at a given standby duty cycle.
//!
//! ```text
//! cargo run --release --example standby_soc
//! ```

use selective_mt::base::report::Table;
use selective_mt::prelude::*;

/// Fraction of the day the block is active (a paging/idle-mode modem
/// block: a few minutes per day).
const ACTIVE_DUTY: f64 = 0.002;
/// Clock frequency while active, GHz.
const ACTIVE_FREQ_GHZ: f64 = 0.2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::industrial_130nm();
    let rtl = circuit_a_rtl();

    let mut table = Table::new(
        "standby SoC: daily charge per technique (99% standby)",
        &[
            "technique",
            "standby uA",
            "dynamic uW (active)",
            "uAh/day",
            "vs Dual-Vth",
        ],
    );

    // One checkpoint-forked comparison: the synthesis + placement prefix
    // runs once, the Dual-Vth baseline pins the clock, and the two SMT
    // flows fork the shared checkpoint in parallel.
    let mut base = FlowConfig {
        period_margin: 1.22,
        ..FlowConfig::default()
    };
    base.dualvth.max_high_fraction = Some(0.6);
    eprintln!("running all three techniques from one checkpoint...");
    let results = run_three_techniques(&rtl, &lib, &base)?;

    let mut baseline_uah = None;
    let techniques = [
        Technique::DualVth,
        Technique::ConventionalSmt,
        Technique::ImprovedSmt,
    ];
    for (technique, r) in techniques.into_iter().zip(&results) {
        // Dynamic power while active, from simulated toggle rates. The MT
        // enable is a *mode* pin, not a data input: the random-vector
        // toggle estimator must not flip it (it carries the switch gates'
        // large capacitance), so its activity is pinned to zero.
        let mut toggles = selective_mt::sim::estimate_toggles(&r.netlist, &lib, 128, 7)?;
        if let Some(mte) = r.netlist.find_net("mte") {
            toggles.toggles[mte.index()] = 0;
        }
        let dynamic =
            selective_mt::power::dynamic_power(&r.netlist, &lib, &toggles, ACTIVE_FREQ_GHZ, |_| {
                selective_mt::base::units::Cap::new(4.0)
            });

        // Daily charge: standby current over ~24h plus active share.
        // (Active-mode leakage also counts during the active window.)
        let hours_standby = 24.0 * (1.0 - ACTIVE_DUTY);
        let hours_active = 24.0 * ACTIVE_DUTY;
        let vdd = lib.tech.vdd.volts();
        let active_current_ua = dynamic.uw() / vdd + r.active_leakage.ua();
        let uah = r.standby_leakage.ua() * hours_standby + active_current_ua * hours_active;

        let vs = match baseline_uah {
            None => {
                baseline_uah = Some(uah);
                "100.0%".to_owned()
            }
            Some(base) => format!("{:.1}%", 100.0 * uah / base),
        };
        table.row_owned(vec![
            technique.to_string(),
            format!("{:.4}", r.standby_leakage.ua()),
            format!("{:.2}", dynamic.uw()),
            format!("{:.2}", uah),
            vs,
        ]);
    }
    println!("{table}");
    println!(
        "At {:.1}% standby the battery draw is dominated by standby leakage —\n\
         which is why the paper optimises it, and why the improved\n\
         technique's extra leakage cut matters at system level.",
        100.0 * (1.0 - ACTIVE_DUTY)
    );
    Ok(())
}
