//! # selective-mt
//!
//! Umbrella crate for the reproduction of *"Area-Efficient Selective
//! Multi-Threshold CMOS Design Methodology for Standby Leakage Power
//! Reduction"* (Kitahara et al., DATE 2005).
//!
//! This crate re-exports the whole workspace under stable module names so a
//! downstream user can depend on one crate:
//!
//! * [`base`] — units, geometry, deterministic RNG, report tables
//! * [`cells`] — technology + standard-cell library (four Vth flavours,
//!   switches, holders), Liberty-lite I/O
//! * [`netlist`] — gate-level netlist, structural-Verilog-lite I/O, editing
//! * [`sim`] — logic simulation and equivalence checking
//! * [`synth`] — RTL-lite → AIG → technology mapping
//! * [`place`] — min-cut placement + legalization + annealing
//! * [`route`] — Steiner/maze routing, RC extraction, SPEF-lite, CTS
//! * [`sta`] — static timing analysis
//! * [`power`] — standby leakage and VGND bounce analysis
//! * [`core`] — the paper's methodology: Dual-Vth, conventional SMT,
//!   improved SMT with shared-switch clustering, and the Fig. 4 flow
//! * [`circuits`] — benchmark designs (circuit A/B substitutes and more)
//! * [`serve`] — flow-as-a-service: the resident `smtd` daemon, its
//!   line-protocol client, and the distributed shard coordinator
//!
//! ## Quickstart
//!
//! ```
//! use selective_mt::prelude::*;
//!
//! let lib = Library::industrial_130nm();
//! assert!(lib.find("ND2_X1_MV").is_some());
//! let engine = FlowEngine::new(&lib, FlowConfig::default());
//! assert_eq!(engine.plan().first(), Some(&StageId::Synthesize));
//! ```
//!
//! See `examples/quickstart.rs` for the full three-technique comparison
//! that reproduces the paper's Table 1, and [`prelude`] for the one-line
//! import covering the flow-engine API.

pub mod prelude;

pub use smt_base as base;
pub use smt_cells as cells;
pub use smt_circuits as circuits;
pub use smt_core as core;
pub use smt_netlist as netlist;
pub use smt_place as place;
pub use smt_power as power;
pub use smt_route as route;
pub use smt_serve as serve;
pub use smt_sim as sim;
pub use smt_sta as sta;
pub use smt_synth as synth;
