//! One-line import for the common case: library + flow engine + benchmark
//! circuits.
//!
//! ```
//! use selective_mt::prelude::*;
//!
//! let lib = Library::industrial_130nm();
//! let cfg = FlowConfig { technique: Technique::DualVth, ..FlowConfig::default() };
//! let plan = FlowEngine::new(&lib, cfg).plan();
//! assert!(plan.contains(&StageId::Signoff));
//! ```

pub use smt_base::units::{Area, Cap, Current, Micron, Power, Res, Time, Volt};
pub use smt_cells::corner::{Corner, CornerLibrary, CornerSet};
pub use smt_cells::library::Library;
pub use smt_circuits::families::{generate, standard_suite, FamilyConfig, SuiteScale, Workload};
pub use smt_circuits::gen::{random_logic, GenError, RandomLogicConfig};
pub use smt_circuits::rtl::{
    circuit_a_rtl, circuit_a_rtl_lanes, circuit_b_rtl, circuit_b_rtl_sized,
};
pub use smt_core::cache::{CacheStats, DesignCache};
pub use smt_core::config_io::JsonConfig;
pub use smt_core::engine::{
    run_sweep, run_three_techniques, Checkpoint, CornerSignoff, DesignState, FlowConfig,
    FlowEngine, FlowError, FlowResult, Observer, Stage, StageId, StageLogger, StageMetrics,
    SweepOutcome, SweepRun, Technique,
};
pub use smt_core::flow::{run_flow, run_flow_netlist};
pub use smt_core::suite::{
    plan_shards, render_suite, ShardPlan, ShardStrategy, SuiteReport, WorkloadSuite,
};
pub use smt_sta::{IncrementalSta, MultiCornerSta};
