//! Checkpoint/resume determinism and sweep semantics of the
//! `FlowEngine` stage-graph API.
//!
//! The load-bearing guarantee: a flow resumed from a checkpoint must be
//! **bit-identical** to the uninterrupted run — otherwise checkpoint-forked
//! sweeps (and the Table 1 comparison built on them) would not be
//! comparable to standalone flows.

use selective_mt::cells::library::Library;
use selective_mt::circuits::rtl::circuit_b_rtl_sized;
use selective_mt::core::engine::{
    run_sweep, FlowEngine, FlowError, FlowResult, StageId, SweepRun, Technique,
};
use selective_mt::core::flow::{run_flow, FlowConfig};

fn base_config(technique: Technique) -> FlowConfig {
    let mut cfg = FlowConfig {
        technique,
        period_margin: 1.30,
        ..FlowConfig::default()
    };
    cfg.dualvth.max_high_fraction = Some(0.75);
    cfg
}

/// Every scalar that the paper's tables report, compared exactly.
fn assert_bit_identical(a: &FlowResult, b: &FlowResult, what: &str) {
    assert_eq!(
        a.standby_leakage.ua(),
        b.standby_leakage.ua(),
        "{what}: standby leakage"
    );
    assert_eq!(
        a.active_leakage.ua(),
        b.active_leakage.ua(),
        "{what}: active leakage"
    );
    assert_eq!(a.area.um2(), b.area.um2(), "{what}: area");
    assert_eq!(a.timing.wns.ps(), b.timing.wns.ps(), "{what}: WNS");
    assert_eq!(
        a.clock_period.ps(),
        b.clock_period.ps(),
        "{what}: clock period"
    );
    assert_eq!(a.census, b.census, "{what}: Vth census");
    assert_eq!(a.hold_fix, b.hold_fix, "{what}: hold-fix report");
    assert_eq!(
        a.netlist.num_instances(),
        b.netlist.num_instances(),
        "{what}: instance count"
    );
}

/// Resuming from a checkpoint taken after `AssignDualVth` reproduces the
/// uninterrupted run bit-for-bit, for all three techniques.
#[test]
fn resume_after_dualvth_is_bit_identical() {
    let lib = Library::industrial_130nm();
    let rtl = circuit_b_rtl_sized(8);
    for technique in [
        Technique::DualVth,
        Technique::ConventionalSmt,
        Technique::ImprovedSmt,
    ] {
        let cfg = base_config(technique);
        let uninterrupted = run_flow(&rtl, &lib, &cfg).expect("uninterrupted flow");

        let mut engine = FlowEngine::new(&lib, cfg.clone());
        let checkpoint = engine
            .run_until(&rtl, StageId::AssignDualVth)
            .expect("prefix");
        assert_eq!(checkpoint.stage(), Some(StageId::AssignDualVth));
        let resumed = engine.resume(&checkpoint).expect("resumed flow");

        assert_bit_identical(&uninterrupted, &resumed, &technique.to_string());
        // The stage walk is the same plan in both runs.
        assert_eq!(
            uninterrupted
                .stages
                .iter()
                .map(|s| s.id)
                .collect::<Vec<_>>(),
            resumed.stages.iter().map(|s| s.id).collect::<Vec<_>>(),
        );
    }
}

/// One checkpoint can fork repeatedly: the snapshot is immutable and every
/// fork sees the same state.
#[test]
fn checkpoint_forks_are_independent() {
    let lib = Library::industrial_130nm();
    let rtl = circuit_b_rtl_sized(8);
    let cfg = base_config(Technique::ImprovedSmt);
    let mut engine = FlowEngine::new(&lib, cfg);
    let checkpoint = engine
        .run_until(&rtl, StageId::PlaceAndClock)
        .expect("prefix");
    let first = engine.resume(&checkpoint).expect("first fork");
    let second = engine.resume(&checkpoint).expect("second fork");
    assert_bit_identical(&first, &second, "fork");
}

/// `run_sweep` forks the shared prefix across techniques and matches the
/// equivalent standalone flows exactly (clock pinned to the shared
/// prefix's auto-selected period, as the sweep itself does).
#[test]
fn sweep_matches_standalone_flows() {
    let lib = Library::industrial_130nm();
    let rtl = circuit_b_rtl_sized(8);
    let base = base_config(Technique::DualVth);

    let runs: Vec<SweepRun> = [Technique::DualVth, Technique::ImprovedSmt]
        .into_iter()
        .map(|t| SweepRun::new(t.to_string(), base_config(t)))
        .collect();
    let outcomes = run_sweep(&rtl, &lib, &base, &runs, 2).expect("sweep prefix");
    assert_eq!(outcomes.len(), 2);

    for outcome in &outcomes {
        let technique = Technique::parse_json_str(&outcome.label).unwrap();
        let standalone = run_flow(&rtl, &lib, &base_config(technique)).expect("standalone");
        let swept = outcome.result.as_ref().expect("sweep run");
        assert_bit_identical(swept, &standalone, &outcome.label);
    }
}

/// Asking to stop at a stage the technique's plan does not contain is an
/// error, not a silent full run.
#[test]
fn run_until_rejects_stage_outside_plan() {
    let lib = Library::industrial_130nm();
    let mut engine = FlowEngine::new(&lib, base_config(Technique::DualVth));
    let err = engine
        .run_until(&circuit_b_rtl_sized(6), StageId::ClusterSwitches)
        .unwrap_err();
    assert!(
        matches!(
            err,
            FlowError::StageNotInPlan {
                stage: StageId::ClusterSwitches
            }
        ),
        "{err}"
    );
}

/// Resuming "until" a stage the checkpoint already completed returns
/// immediately instead of running the rest of the flow.
#[test]
fn resume_until_completed_stage_is_a_noop() {
    let lib = Library::industrial_130nm();
    let rtl = circuit_b_rtl_sized(6);
    let mut engine = FlowEngine::new(&lib, base_config(Technique::ImprovedSmt));
    let checkpoint = engine
        .run_until(&rtl, StageId::PlaceAndClock)
        .expect("prefix");
    let again = engine
        .resume_until(&checkpoint, StageId::PlaceAndClock)
        .expect("noop resume");
    assert_eq!(again.stage(), Some(StageId::PlaceAndClock));
    assert_eq!(
        again.state().completed,
        checkpoint.state().completed,
        "no extra stages may run"
    );
}

/// A config that pins a different clock cannot resume a checkpoint whose
/// dual-Vth assignment was computed for another period.
#[test]
fn repinning_clock_after_assignment_is_rejected() {
    let lib = Library::industrial_130nm();
    let rtl = circuit_b_rtl_sized(6);
    let cfg = base_config(Technique::DualVth);
    let mut engine = FlowEngine::new(&lib, cfg.clone());
    let checkpoint = engine
        .run_until(&rtl, StageId::AssignDualVth)
        .expect("prefix");
    let committed = checkpoint.state().clock_period.expect("clock chosen");
    let mut repin = cfg;
    repin.clock_period = Some(committed * 0.5);
    let err = FlowEngine::new(&lib, repin)
        .resume(&checkpoint)
        .unwrap_err();
    assert!(
        matches!(err, FlowError::ClockRepinnedAfterTiming { .. }),
        "{err}"
    );
}

/// Observers see every stage of the plan, in order.
#[test]
fn observers_walk_the_plan_in_order() {
    use selective_mt::core::engine::{Observer, StageMetrics};
    use std::sync::{Arc, Mutex};

    #[derive(Default)]
    struct Recorder(Arc<Mutex<Vec<StageId>>>);
    impl Observer for Recorder {
        fn on_stage_end(&mut self, stage: StageId, _m: &StageMetrics, _e: std::time::Duration) {
            self.0.lock().unwrap().push(stage);
        }
    }

    let lib = Library::industrial_130nm();
    let rtl = circuit_b_rtl_sized(6);
    let cfg = base_config(Technique::ImprovedSmt);
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut engine = FlowEngine::new(&lib, cfg).observe(Recorder(seen.clone()));
    engine.run(&rtl).expect("flow");
    assert_eq!(
        seen.lock().unwrap().as_slice(),
        StageId::plan(Technique::ImprovedSmt),
    );
}
