//! Signoff-level contract of the word-parallel equivalence checker,
//! exercised across every generator family rather than hand-built
//! netlists:
//!
//! * the 64-lane word simulator is bit-identical to 64 independent
//!   scalar simulation passes on every design,
//! * the cone-parallel report (digest included) is invariant under the
//!   worker count — this is the test the nightly ThreadSanitizer job
//!   runs to check the stronger no-data-race claim,
//! * the fraig fast path certifies a self-comparison without
//!   simulating, and a single flipped gate is still caught with the
//!   fast path on.

use selective_mt::cells::library::Library;
use selective_mt::circuits::families::{generate, standard_suite, SuiteScale};
use selective_mt::netlist::netlist::{Netlist, PortDir};
use selective_mt::sim::equiv::stimulus_word;
use selective_mt::sim::{
    check_equivalence_scalar, check_equivalence_with, EquivOptions, Mode, Simulator, Value, Word,
    WordSimulator,
};

fn lib() -> Library {
    Library::industrial_130nm()
}

/// Copies of `n`, each with one inverter retyped to the same-drive,
/// same-Vth buffer — single-gate function flips for the checker to
/// catch. Random families carry dead and redundant logic, so not every
/// candidate is observable at an output; callers probe for one that is.
fn inverter_flips(n: &Netlist, l: &Library) -> Vec<Netlist> {
    n.instances()
        .filter_map(|(id, inst)| {
            let name = &l.cell(inst.cell).name;
            let swapped = name.strip_prefix("INV")?;
            let buf = l.find_id(&format!("BUF{swapped}"))?;
            let mut broken = n.clone();
            broken.replace_cell(id, buf, l).ok()?;
            Some(broken)
        })
        .collect()
}

#[test]
fn word_simulation_is_bit_identical_to_64_scalar_passes_on_every_family() {
    const CYCLES: usize = 6;
    const SEED: u64 = 0xD1FF;
    let l = lib();
    for w in standard_suite(SuiteScale::Smoke) {
        let n = generate(&l, &w.config).unwrap();
        let inputs: Vec<_> = n
            .ports()
            .filter(|(_, p)| p.dir == PortDir::Input && !p.is_clock)
            .map(|(_, p)| (p.name.clone(), p.net))
            .collect();

        let mut word = WordSimulator::new(&n, &l).unwrap();
        word.set_mode(Mode::Active);
        let mut scalar: Vec<Simulator> = (0..64)
            .map(|_| {
                let mut s = Simulator::new(&n, &l).unwrap();
                s.set_mode(Mode::Active);
                s
            })
            .collect();

        for cycle in 0..CYCLES {
            for (name, net) in &inputs {
                let bits = stimulus_word(SEED, name, cycle);
                word.set_input(*net, Word::from_bits(bits));
                for (lane, s) in scalar.iter_mut().enumerate() {
                    s.set_input(*net, Value::from_bool(bits >> lane & 1 == 1));
                }
            }
            for phase in 0..2 {
                if phase == 0 {
                    word.propagate(&n, &l);
                    scalar.iter_mut().for_each(|s| s.propagate(&n, &l));
                } else {
                    word.clock_edge(&n, &l);
                    scalar.iter_mut().for_each(|s| s.clock_edge(&n, &l));
                }
                for (net, _) in n.nets() {
                    let w64 = word.value(net);
                    for (lane, s) in scalar.iter().enumerate() {
                        assert_eq!(
                            w64.get(lane),
                            s.value(net),
                            "{}: net {net:?} lane {lane} cycle {cycle} phase {phase}",
                            w.name,
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn equiv_report_is_worker_count_invariant_on_every_family() {
    let l = lib();
    for w in standard_suite(SuiteScale::Smoke) {
        let n = generate(&l, &w.config).unwrap();
        // A flipped gate gives the merge step real mismatches to keep
        // ordered; fall back to the clean self-comparison if the design
        // happens to have no inverter. (Observability does not matter
        // here — the digest must hold either way.)
        let dut = inverter_flips(&n, &l)
            .into_iter()
            .next()
            .unwrap_or_else(|| n.clone());
        for fraig in [false, true] {
            let digests: Vec<u64> = [1usize, 2, 4, 8]
                .iter()
                .map(|&workers| {
                    let opts = EquivOptions {
                        cycles: 24,
                        seed: 0x51E9,
                        workers,
                        fraig,
                    };
                    check_equivalence_with(&n, &dut, &l, &opts)
                        .unwrap()
                        .digest()
                })
                .collect();
            assert!(
                digests.windows(2).all(|d| d[0] == d[1]),
                "{} (fraig={fraig}): digests varied with worker count: {digests:x?}",
                w.name,
            );
        }
    }
}

#[test]
fn fraig_certifies_self_comparison_without_simulating_on_every_family() {
    let l = lib();
    for w in standard_suite(SuiteScale::Smoke) {
        let n = generate(&l, &w.config).unwrap();
        let opts = EquivOptions {
            cycles: 24,
            seed: 7,
            workers: 1,
            fraig: true,
        };
        let rep = check_equivalence_with(&n, &n.clone(), &l, &opts).unwrap();
        assert!(rep.is_equivalent(), "{}", w.name);
        assert_eq!(rep.outputs_proven, rep.outputs_compared, "{}", w.name);
        assert_eq!(
            rep.cycles, 0,
            "{}: fraig-proven run still simulated",
            w.name
        );
        assert!(!rep.truncated, "{}", w.name);
    }
}

#[test]
fn single_gate_flips_are_caught_with_and_without_the_fast_path() {
    let l = lib();
    let mut caught = 0;
    for w in standard_suite(SuiteScale::Smoke) {
        let n = generate(&l, &w.config).unwrap();
        // Probe with the simulate-everything configuration for a flip
        // that is observable at an output — dead or redundant inverters
        // legitimately go unnoticed.
        let opts = EquivOptions {
            cycles: 48,
            seed: 0xBAD,
            workers: 0,
            fraig: false,
        };
        let Some(dut) = inverter_flips(&n, &l).into_iter().find(|dut| {
            !check_equivalence_with(&n, dut, &l, &opts)
                .unwrap()
                .is_equivalent()
        }) else {
            continue;
        };
        caught += 1;
        // The fast path may certify the untouched cones but must never
        // claim the broken output.
        let fast = check_equivalence_with(
            &n,
            &dut,
            &l,
            &EquivOptions {
                fraig: true,
                ..opts.clone()
            },
        )
        .unwrap();
        assert!(
            !fast.is_equivalent(),
            "{}: fraig fast path masked the flipped inverter",
            w.name,
        );
        // The scalar oracle agrees on the verdict (its single vector is
        // lane 0 of the word stimulus, so it sees a strict subset of
        // the evidence but the same functional divergence).
        let scalar = check_equivalence_scalar(&n, &dut, &l, 48, 0xBAD).unwrap();
        assert!(!scalar.is_equivalent(), "{}", w.name);
    }
    assert!(
        caught > 0,
        "no smoke design had an observable inverter to flip"
    );
}
