//! End-to-end integration: the three techniques of the paper's Table 1 on
//! one circuit under identical constraints, checking every qualitative
//! claim plus full verification.

use selective_mt::cells::library::Library;
use selective_mt::circuits::rtl::circuit_b_rtl_sized;
use selective_mt::core::flow::{run_flow, FlowConfig, Technique};

fn flows() -> [selective_mt::core::flow::FlowResult; 3] {
    let lib = Library::industrial_130nm();
    let rtl = circuit_b_rtl_sized(10);
    let mut base = FlowConfig {
        technique: Technique::DualVth,
        period_margin: 1.30,
        ..FlowConfig::default()
    };
    base.dualvth.max_high_fraction = Some(0.75);
    let dual = run_flow(&rtl, &lib, &base).expect("dual flow");
    let clock = dual.clock_period;

    let mut conv_cfg = base.clone();
    conv_cfg.technique = Technique::ConventionalSmt;
    conv_cfg.clock_period = Some(clock);
    let conv = run_flow(&rtl, &lib, &conv_cfg).expect("conventional flow");

    let mut imp_cfg = base.clone();
    imp_cfg.technique = Technique::ImprovedSmt;
    imp_cfg.clock_period = Some(clock);
    let imp = run_flow(&rtl, &lib, &imp_cfg).expect("improved flow");
    [dual, conv, imp]
}

#[test]
fn table1_shape_holds_end_to_end() {
    let [dual, conv, imp] = flows();

    // Everyone meets timing and passes verification.
    for (name, r) in [("dual", &dual), ("conv", &conv), ("imp", &imp)] {
        assert!(
            r.timing.setup_met(),
            "{name} misses setup: {}",
            r.timing.wns
        );
        assert!(r.hold_fix.remaining == 0, "{name} has hold violations");
        assert!(
            r.verify.passed(),
            "{name} verification: lint {:?}, equiv {}, floats {:?}",
            r.verify.lint,
            r.verify.equivalence.is_equivalent(),
            r.verify.floating_in_standby
        );
    }

    // Leakage ordering: improved < conventional << dual (Table 1).
    assert!(
        conv.standby_leakage.ua() < dual.standby_leakage.ua() * 0.5,
        "conv {} vs dual {}",
        conv.standby_leakage,
        dual.standby_leakage
    );
    assert!(
        imp.standby_leakage < conv.standby_leakage,
        "imp {} vs conv {}",
        imp.standby_leakage,
        conv.standby_leakage
    );

    // Area ordering: dual < improved < conventional (Table 1).
    assert!(dual.area < imp.area);
    assert!(
        imp.area < conv.area,
        "imp {} vs conv {}",
        imp.area,
        conv.area
    );

    // Structural expectations per technique.
    assert_eq!(dual.census.mt_embedded + dual.census.mt_vgnd, 0);
    assert!(conv.census.mt_embedded > 0);
    assert_eq!(
        conv.census.switches, 0,
        "conventional has no separate switches"
    );
    assert!(imp.census.mt_vgnd > 0);
    assert!(imp.census.switches > 0, "improved shares separate switches");
    assert!(
        imp.census.switches < imp.census.mt_vgnd,
        "sharing means fewer switches than MT-cells"
    );
}

#[test]
fn improved_flow_reports_are_consistent() {
    let [_, _, imp] = flows();
    let cluster = imp.cluster.expect("improved flow clusters");
    assert_eq!(cluster.clusters, imp.census.switches);
    assert_eq!(cluster.mt_cells, imp.census.mt_vgnd);
    assert!(cluster.worst_bounce.millivolts() <= 50.5);
    // Holders only exist where MT cells drive non-MT logic.
    assert!(imp.census.holders > 0);
    assert!(imp.census.holders <= imp.census.mt_vgnd);
    // Stage log covers the whole Fig. 4 pipeline.
    let stages: Vec<&str> = imp.stages.iter().map(|s| s.stage.as_str()).collect();
    assert!(stages.iter().any(|s| s.contains("dual-Vth")));
    assert!(stages.iter().any(|s| s.contains("switch structure")));
    assert!(stages.iter().any(|s| s.contains("routing")));
    assert!(stages.iter().any(|s| s.contains("re-optimization")));
    assert!(stages.iter().any(|s| s.contains("ECO")));
}

#[test]
fn techniques_share_function() {
    // All three final netlists are functionally equivalent to each other
    // in active mode (they came from the same RTL).
    let lib = Library::industrial_130nm();
    let [dual, conv, imp] = flows();
    let r1 = selective_mt::sim::check_equivalence(&dual.netlist, &conv.netlist, &lib, 48, 5);
    // Port sets differ by `mte`; compare via each one's golden instead.
    assert!(r1.is_err() || r1.unwrap().is_equivalent());
    for r in [&dual, &conv, &imp] {
        let eq = selective_mt::sim::check_equivalence(&r.golden, &r.netlist, &lib, 48, 5);
        match eq {
            Ok(rep) => assert!(rep.is_equivalent()),
            Err(e) => {
                // Acceptable only for the added `mte` port.
                assert!(e.to_string().contains("mte"), "{e}");
            }
        }
    }
}
