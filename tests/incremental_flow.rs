//! Whole-flow incrementality: warm what-if forks that graft the finals'
//! routing / CTS / extraction / equivalence / power caches must be
//! **bit-identical** to the same fork run from scratch, while actually
//! reusing the cached work:
//!
//! * after a Vth swap and an ECO hold-fix what-if, routed lengths,
//!   extracted RC, clock skew, leakage, the suite digest and the
//!   equivalence-report digest all match the cold fork exactly;
//! * `full_route_runs()` / `full_cts_runs()` stay at the single cold
//!   pass across session what-ifs — warm forks re-route and re-buffer
//!   incrementally, never from scratch;
//! * the parallel re-route fan-out is worker-count invariant (this is
//!   the test the nightly ThreadSanitizer matrix runs).
//!
//! The counters are process-global, so every test here serializes on
//! one mutex and asserts counter *deltas*, never absolute values.

use selective_mt::base::geom::Point;
use selective_mt::cells::corner::CornerSet;
use selective_mt::cells::library::Library;
use selective_mt::circuits::rtl::circuit_b_rtl_sized;
use selective_mt::core::dualvth::DualVthConfig;
use selective_mt::core::engine::{
    Checkpoint, FlowConfig, FlowEngine, FlowResult, StageId, Technique,
};
use selective_mt::core::session::{complete_flow, run_what_if, LibraryPool, Session, WhatIf};
use selective_mt::core::suite::SuiteOutcome;
use selective_mt::netlist::netlist::{NetId, Netlist};
use selective_mt::place::{place, PlacerConfig};
use selective_mt::route::{
    full_cts_runs, full_route_runs, reextractions_avoided, RouteConfig, Router,
};
use selective_mt::synth::{synthesize, SynthOptions};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Serializes the tests in this binary: the full-pass counters are
/// process-global, and concurrent flows would tear the deltas.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn lib() -> Library {
    Library::industrial_130nm()
}

/// Circuit B as an all-low-Vth netlist (the session API takes netlists,
/// not RTL).
fn circuit_b_netlist(l: &Library, width: usize) -> Netlist {
    synthesize(&circuit_b_rtl_sized(width), l, &SynthOptions::default())
        .expect("synthesize circuit B")
}

/// The session base configuration. FFs are excluded from Vth assignment
/// so a vth-swap what-if can never perturb the clock fabric — the CTS
/// replay gate below is then a guarantee, not a coincidence.
fn base_config() -> FlowConfig {
    let mut cfg = FlowConfig {
        technique: Technique::DualVth,
        ..FlowConfig::default()
    };
    cfg.dualvth.include_ffs = false;
    cfg
}

fn assert_results_match(warm: &FlowResult, cold: &FlowResult, what: &str) {
    assert_eq!(
        SuiteOutcome::from_flow(warm).digest(),
        SuiteOutcome::from_flow(cold).digest(),
        "{what}: suite digest"
    );
    assert_eq!(warm.timing.wns.ps(), cold.timing.wns.ps(), "{what}: WNS");
    assert_eq!(
        warm.cts.as_ref().map(|r| r.skew().ps()),
        cold.cts.as_ref().map(|r| r.skew().ps()),
        "{what}: clock skew"
    );
    assert_eq!(
        warm.standby_leakage.ua(),
        cold.standby_leakage.ua(),
        "{what}: standby leakage"
    );
    assert_eq!(
        warm.active_leakage.ua(),
        cold.active_leakage.ua(),
        "{what}: active leakage"
    );
    assert_eq!(
        warm.verify.equivalence.digest(),
        cold.verify.equivalence.digest(),
        "{what}: equivalence report digest"
    );
    assert_eq!(warm.hold_fix, cold.hold_fix, "{what}: hold fix");
}

#[test]
fn warm_what_ifs_are_bit_identical_and_skip_full_route_and_cts() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let l = lib();
    let cfg = base_config();
    let netlist = circuit_b_netlist(&l, 8);
    let mut pool = LibraryPool::new();
    let (corners, _) = pool.corner_libs(&l, &cfg.corners);
    let mut session =
        Session::open("inc", "circuit-b", 1, netlist, cfg.clone(), &l, &corners).expect("session");

    // The one and only full route + full CTS: the base flow.
    let route0 = full_route_runs();
    let cts0 = full_cts_runs();
    let (_, finals) = complete_flow(&l, &corners, &cfg, session.prefix()).expect("base flow");
    session.set_finals(finals);
    assert_eq!(full_route_runs() - route0, 1, "base flow routes once");
    assert_eq!(full_cts_runs() - cts0, 1, "base flow synthesizes one tree");

    let mut resolve = |set: &CornerSet| pool.corner_libs(&l, set).0.to_vec();
    let swap = WhatIf::VthSwap {
        dualvth: DualVthConfig {
            max_high_fraction: Some(0.10),
            ..cfg.dualvth.clone()
        },
    };
    let eco = WhatIf::Eco {
        hold_rounds: cfg.hold_rounds + 2,
    };

    // Warm what-ifs: the finals' caches ride along into the fork.
    let warm_swap = run_what_if(
        &l,
        &cfg,
        session.prefix(),
        session.finals(),
        &mut resolve,
        &swap,
        1,
    );
    let warm_eco = run_what_if(
        &l,
        &cfg,
        session.prefix(),
        session.finals(),
        &mut resolve,
        &eco,
        1,
    );
    assert_eq!(
        full_route_runs() - route0,
        1,
        "session what-ifs must re-route incrementally, not from scratch"
    );
    assert_eq!(
        full_cts_runs() - cts0,
        1,
        "session what-ifs must replay the recorded clock tree"
    );

    // From-scratch references: the same forks without warm caches.
    let cold_swap = run_what_if(&l, &cfg, session.prefix(), None, &mut resolve, &swap, 1);
    let cold_eco = run_what_if(&l, &cfg, session.prefix(), None, &mut resolve, &eco, 1);
    assert!(full_route_runs() - route0 > 1, "cold forks route in full");

    for (warm, cold, what) in [
        (&warm_swap, &cold_swap, "vth-swap"),
        (&warm_eco, &cold_eco, "eco"),
    ] {
        let w = warm[0].result.as_ref().expect(what);
        let c = cold[0].result.as_ref().expect(what);
        assert_results_match(w, c, what);
    }
}

#[test]
fn warm_fork_reuses_routes_and_extraction_bit_for_bit() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let l = lib();
    let cfg = base_config();
    let netlist = circuit_b_netlist(&l, 8);
    let mut pool = LibraryPool::new();
    let (corners, _) = pool.corner_libs(&l, &cfg.corners);
    let session =
        Session::open("inc2", "circuit-b", 1, netlist, cfg.clone(), &l, &corners).expect("session");
    let (_, finals) = complete_flow(&l, &corners, &cfg, session.prefix()).expect("base flow");

    // A Vth-swap fork, once warm (finals caches grafted into the prefix
    // fork, as `run_what_if` does) and once cold.
    let mut swap_cfg = cfg.clone();
    swap_cfg.dualvth.max_high_fraction = Some(0.10);
    let warm_from = {
        let mut state = session.prefix().restore();
        let warm = finals.restore();
        state.router = warm.router;
        state.cts_session = warm.cts_session;
        state.extracted = warm.extracted;
        state.equiv_cache = warm.equiv_cache;
        state.power_ledger = warm.power_ledger;
        Checkpoint::new(state)
    };

    let route0 = full_route_runs();
    let avoided0 = reextractions_avoided();
    let warm_finals = FlowEngine::with_corner_libraries(&l, swap_cfg.clone(), corners.to_vec())
        .resume_until(&warm_from, StageId::Signoff)
        .expect("warm fork");
    assert_eq!(
        full_route_runs() - route0,
        0,
        "warm fork never routes in full"
    );
    assert!(
        reextractions_avoided() - avoided0 > 0,
        "unmoved nets must keep their extracted RC entries"
    );
    let cold_finals = FlowEngine::with_corner_libraries(&l, swap_cfg, corners.to_vec())
        .resume_until(session.prefix(), StageId::Signoff)
        .expect("cold fork");

    let w = warm_finals.restore();
    let c = cold_finals.restore();
    let wr = w.router.expect("warm router");
    let cr = c.router.expect("cold router");
    // Routed lengths and paths: identical down to the digest.
    assert_eq!(wr.global().net_length, cr.global().net_length);
    assert_eq!(wr.digest(), cr.digest());
    // Extracted RC: every net's parasitics byte-identical.
    let we = w.extracted.expect("warm parasitics");
    let ce = c.extracted.expect("cold parasitics");
    for (id, _) in w.netlist.nets() {
        assert_eq!(we.net(id), ce.net(id), "net {id:?} parasitics");
    }
}

#[test]
fn reroute_fanout_is_worker_count_invariant() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let l = lib();
    let n = circuit_b_netlist(&l, 4);
    let p = place(&n, &l, &PlacerConfig::default());
    let cfg = RouteConfig::default();
    let base = Router::route(&n, &l, &p, &cfg, 1);

    // Shift a couple dozen instances; their incident nets form the
    // re-route candidate set.
    let mut moved = p.clone();
    let mut candidates: BTreeSet<NetId> = BTreeSet::new();
    for (id, inst) in n.instances().take(24) {
        let loc = moved.loc(id);
        moved.set_loc(id, Point::new(loc.x + 8.0, loc.y + 4.0));
        candidates.extend(inst.conns.iter().flatten().copied());
    }

    let reference = {
        let mut r = base.clone();
        r.reroute_nets(&n, &l, &moved, &cfg, Some(&candidates), 1);
        r.digest()
    };
    for workers in [2, 4, 8] {
        let mut r = base.clone();
        r.reroute_nets(&n, &l, &moved, &cfg, Some(&candidates), workers);
        assert_eq!(
            r.digest(),
            reference,
            "re-route fan-out must be invariant at {workers} workers"
        );
    }
    // And the incremental result equals routing the moved placement
    // from scratch.
    assert_eq!(
        Router::route(&n, &l, &moved, &cfg, 1).digest(),
        reference,
        "incremental re-route must match a from-scratch pass"
    );
}
