//! Cross-crate I/O round trips on real designs: Verilog-lite,
//! Liberty-lite, SPEF-lite and SNL all survive write→parse with the
//! design's semantics intact, and the SNL parser survives a seeded
//! corpus of mutated/malformed inputs without panicking.

use selective_mt::base::SplitMix64;
use selective_mt::cells::liberty;
use selective_mt::cells::library::Library;
use selective_mt::circuits::families::{generate, standard_suite, SuiteScale};
use selective_mt::circuits::rtl::circuit_b_rtl_sized;
use selective_mt::netlist::netlist::Netlist;
use selective_mt::netlist::verilog;
use selective_mt::place::{place, PlacerConfig};
use selective_mt::route::{route_global, spef, Parasitics, RouteConfig};
use selective_mt::sim::check_equivalence;
use selective_mt::synth::{snl, synthesize, SynthOptions};

#[test]
fn verilog_roundtrip_preserves_function() {
    let lib = Library::industrial_130nm();
    let n = synthesize(&circuit_b_rtl_sized(8), &lib, &SynthOptions::default()).unwrap();
    let text = verilog::write_with_lib(&n, &lib);
    let back = verilog::parse(&text, &lib).unwrap();
    assert_eq!(n.num_instances(), back.num_instances());
    let eq = check_equivalence(&n, &back, &lib, 64, 9).unwrap();
    assert!(eq.is_equivalent(), "{:?}", eq.mismatches.first());
}

#[test]
fn liberty_roundtrip_preserves_electricals() {
    let lib = Library::industrial_130nm();
    let text = liberty::write(&lib);
    let back = liberty::parse(&text, lib.tech.clone()).unwrap();
    assert_eq!(lib.len(), back.len());
    // A netlist mapped against the parsed library times identically.
    let n = synthesize(&circuit_b_rtl_sized(6), &back, &SynthOptions::default()).unwrap();
    assert!(n.num_instances() > 50);
}

/// The SNL corpus: every generator family at smoke scale, a synthesized
/// RTL design, and the paper's figure circuit.
fn snl_corpus(lib: &Library) -> Vec<(String, Netlist)> {
    let mut corpus: Vec<(String, Netlist)> = standard_suite(SuiteScale::Smoke)
        .into_iter()
        .map(|w| {
            let n = generate(lib, &w.config).unwrap();
            (w.name, n)
        })
        .collect();
    corpus.push((
        "circuit_b".to_owned(),
        synthesize(&circuit_b_rtl_sized(6), lib, &SynthOptions::default()).unwrap(),
    ));
    corpus.push((
        "fig_example".to_owned(),
        selective_mt::circuits::figures::fig_example(lib).netlist,
    ));
    corpus
}

#[test]
fn snl_roundtrip_preserves_function_across_the_corpus() {
    let lib = Library::industrial_130nm();
    for (name, n) in snl_corpus(&lib) {
        let text = snl::write(&n, &lib).unwrap_or_else(|e| panic!("{name}: {e}"));
        let back = snl::read(&text, &lib, &SynthOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let eq = check_equivalence(&n, &back, &lib, 64, 17).unwrap();
        assert!(eq.is_equivalent(), "{name}: {:?}", eq.mismatches.first());
    }
}

#[test]
fn snl_structural_load_reproduces_the_written_netlist() {
    // `load` (unlike the re-synthesising `read`) must reconstruct the
    // written netlist one-to-one: same function, and the gate count
    // grows only by the alias buffer each internally-named output port
    // needs in the text. `write(load(write(n)))` is a fixed point
    // immediately — no normalisation trips.
    let lib = Library::industrial_130nm();
    for (name, n) in snl_corpus(&lib) {
        let text = snl::write(&n, &lib).unwrap_or_else(|e| panic!("{name}: {e}"));
        let back = snl::load(&text, &lib).unwrap_or_else(|e| panic!("{name}: {e}"));
        let aliases = n
            .ports()
            .filter(|(_, p)| {
                p.dir == selective_mt::netlist::netlist::PortDir::Output
                    && n.net(p.net).name != p.name
            })
            .count();
        assert_eq!(
            back.num_instances(),
            n.num_instances() + aliases,
            "{name}: structural load must not restructure logic"
        );
        let eq = check_equivalence(&n, &back, &lib, 64, 23).unwrap();
        assert!(eq.is_equivalent(), "{name}: {:?}", eq.mismatches.first());
        let again = snl::write(&back, &lib).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            again,
            snl::write(&snl::load(&again, &lib).unwrap(), &lib).unwrap(),
            "{name}: write∘load must be a fixed point"
        );
    }
}

#[test]
fn snl_load_rejects_malformed_structure() {
    let lib = Library::industrial_130nm();
    // Duplicate driver.
    let dup = ".model m\n.inputs a\n.outputs y\n.gate inv A=a Z=y\n.gate buf A=a Z=y\n.end\n";
    assert!(snl::load(dup, &lib).is_err());
    // Dangling net: consumed but never driven.
    let dangling = ".model m\n.inputs a\n.outputs y\n.gate nd2 A=a B=ghost Z=y\n.end\n";
    assert!(snl::load(dangling, &lib).is_err());
    // Latch without a clock.
    let unclocked = ".model m\n.inputs a\n.outputs q\n.latch a q\n.end\n";
    assert!(snl::load(unclocked, &lib).is_err());
    // Undriven output.
    let no_out = ".model m\n.inputs a\n.outputs nope\n.gate inv A=a Z=y\n.end\n";
    assert!(snl::load(no_out, &lib).is_err());
    // Duplicate output (matching `read`'s rejection).
    let dup_out = ".model m\n.inputs a\n.outputs y y\n.gate inv A=a Z=y\n.end\n";
    assert!(snl::load(dup_out, &lib).is_err());
}

#[test]
fn snl_write_read_write_reaches_a_fixed_point_across_the_corpus() {
    // `read` is a re-synthesis, so the first trip (or two, for designs
    // rich in complex-gate covers) normalises the structure into the
    // mapper's normal form; that normal form must be a true fixed point
    // of write → parse → write, verified by one extra trip.
    let lib = Library::industrial_130nm();
    for (name, n) in snl_corpus(&lib) {
        let mut text = snl::write(&n, &lib).unwrap();
        let mut fixed = false;
        for _trip in 0..3 {
            let back = snl::read(&text, &lib, &SynthOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let next = snl::write(&back, &lib).unwrap();
            if next == text {
                fixed = true;
                break;
            }
            text = next;
        }
        assert!(fixed, "{name}: no fixed point within three trips");
        // And it stays fixed.
        let back = snl::read(&text, &lib, &SynthOptions::default()).unwrap();
        assert_eq!(snl::write(&back, &lib).unwrap(), text, "{name}");
    }
}

#[test]
fn snl_malformed_inputs_error_instead_of_panicking() {
    // Hand-picked malformations of every class the parser must reject.
    for (what, text) in [
        (
            "dangling net",
            ".model m\n.inputs a\n.outputs y\n.gate an2 A=a B=ghost Z=y\n.end\n",
        ),
        (
            "duplicate driver",
            ".model m\n.inputs a b\n.outputs y\n.gate inv A=a Z=y\n.gate inv A=b Z=y\n.end\n",
        ),
        (
            "duplicate driver via latch",
            ".model m\n.inputs a\n.clock clk\n.outputs q\n.latch a q\n.gate inv A=a Z=q\n.end\n",
        ),
        (
            "truncated",
            ".model m\n.inputs a\n.outputs y\n.gate buf A=a Z=y\n",
        ),
        ("empty", ""),
        ("no model", ".inputs a\n.end\n"),
        (
            "undriven output",
            ".model m\n.inputs a\n.outputs nothing\n.end\n",
        ),
    ] {
        assert!(snl::parse(text).is_err(), "{what} was accepted");
    }
}

#[test]
fn snl_seeded_mutation_fuzz_never_panics() {
    // Take a valid corpus text and apply hundreds of seeded mutations —
    // truncations, line drops/duplications, token smashes. Every parse
    // must return Ok or Err; a panic fails the harness.
    let lib = Library::industrial_130nm();
    let base = snl::write(
        &generate(&lib, &standard_suite(SuiteScale::Smoke)[0].config).unwrap(),
        &lib,
    )
    .unwrap();
    let mut rng = SplitMix64::new(20050307);
    for round in 0..300 {
        let mut text = base.clone();
        match rng.next_below(4) {
            // Truncate at an arbitrary byte (snap to a char boundary —
            // SNL output is ASCII, so any byte works).
            0 => {
                let cut = rng.next_below(text.len());
                text.truncate(cut);
            }
            // Drop a line.
            1 => {
                let lines: Vec<&str> = text.lines().collect();
                let drop = rng.next_below(lines.len());
                text = lines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, l)| *l)
                    .collect::<Vec<_>>()
                    .join("\n");
            }
            // Duplicate a line.
            2 => {
                let lines: Vec<&str> = text.lines().collect();
                let dup = rng.next_below(lines.len());
                let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
                for (i, l) in lines.iter().enumerate() {
                    out.push(l);
                    if i == dup {
                        out.push(l);
                    }
                }
                text = out.join("\n");
            }
            // Smash one byte with printable junk.
            _ => {
                let idx = rng.next_below(text.len());
                let junk = [b'=', b'.', b' ', b'(', b'z', b'0'][rng.next_below(6)];
                let mut bytes = text.into_bytes();
                bytes[idx] = junk;
                text = String::from_utf8(bytes).expect("ascii in, ascii out");
            }
        }
        // Ok or Err both fine — only a panic (or a wrong Ok on text the
        // parser then chokes mapping) is a bug. When the text still
        // parses, mapping it must succeed too.
        if let Ok(design) = snl::parse(&text) {
            let _ = selective_mt::synth::map_to_netlist(&design, &lib, &SynthOptions::default());
        }
        let _ = round;
    }
}

#[test]
fn spef_roundtrip_preserves_timing() {
    use selective_mt::sta::{analyze, Derating, StaConfig};
    let lib = Library::industrial_130nm();
    let n = synthesize(&circuit_b_rtl_sized(8), &lib, &SynthOptions::default()).unwrap();
    let p = place(&n, &lib, &PlacerConfig::default());
    let gr = route_global(&n, &lib, &p, &RouteConfig::default());
    let ext = Parasitics::extract(&n, &lib, &p, &gr);
    let text = spef::write(&n, &ext);
    let back = spef::parse(&text, &n).unwrap();

    let cfg = StaConfig::default();
    let t1 = analyze(&n, &lib, &ext, &cfg, &Derating::none()).unwrap();
    let t2 = analyze(&n, &lib, &back, &cfg, &Derating::none()).unwrap();
    assert!(
        (t1.wns.ps() - t2.wns.ps()).abs() < 0.1,
        "wns drifted across SPEF roundtrip: {} vs {}",
        t1.wns,
        t2.wns
    );
}
