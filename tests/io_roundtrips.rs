//! Cross-crate I/O round trips on a real synthesized design: Verilog-lite,
//! Liberty-lite and SPEF-lite all survive write→parse with the design's
//! semantics intact.

use selective_mt::cells::liberty;
use selective_mt::cells::library::Library;
use selective_mt::circuits::rtl::circuit_b_rtl_sized;
use selective_mt::netlist::verilog;
use selective_mt::place::{place, PlacerConfig};
use selective_mt::route::{route_global, spef, Parasitics, RouteConfig};
use selective_mt::sim::check_equivalence;
use selective_mt::synth::{synthesize, SynthOptions};

#[test]
fn verilog_roundtrip_preserves_function() {
    let lib = Library::industrial_130nm();
    let n = synthesize(&circuit_b_rtl_sized(8), &lib, &SynthOptions::default()).unwrap();
    let text = verilog::write_with_lib(&n, &lib);
    let back = verilog::parse(&text, &lib).unwrap();
    assert_eq!(n.num_instances(), back.num_instances());
    let eq = check_equivalence(&n, &back, &lib, 64, 9).unwrap();
    assert!(eq.is_equivalent(), "{:?}", eq.mismatches.first());
}

#[test]
fn liberty_roundtrip_preserves_electricals() {
    let lib = Library::industrial_130nm();
    let text = liberty::write(&lib);
    let back = liberty::parse(&text, lib.tech.clone()).unwrap();
    assert_eq!(lib.len(), back.len());
    // A netlist mapped against the parsed library times identically.
    let n = synthesize(&circuit_b_rtl_sized(6), &back, &SynthOptions::default()).unwrap();
    assert!(n.num_instances() > 50);
}

#[test]
fn spef_roundtrip_preserves_timing() {
    use selective_mt::sta::{analyze, Derating, StaConfig};
    let lib = Library::industrial_130nm();
    let n = synthesize(&circuit_b_rtl_sized(8), &lib, &SynthOptions::default()).unwrap();
    let p = place(&n, &lib, &PlacerConfig::default());
    let gr = route_global(&n, &lib, &p, &RouteConfig::default());
    let ext = Parasitics::extract(&n, &lib, &p, &gr);
    let text = spef::write(&n, &ext);
    let back = spef::parse(&text, &n).unwrap();

    let cfg = StaConfig::default();
    let t1 = analyze(&n, &lib, &ext, &cfg, &Derating::none()).unwrap();
    let t2 = analyze(&n, &lib, &back, &cfg, &Derating::none()).unwrap();
    assert!(
        (t1.wns.ps() - t2.wns.ps()).abs() < 0.1,
        "wns drifted across SPEF roundtrip: {} vs {}",
        t1.wns,
        t2.wns
    );
}
