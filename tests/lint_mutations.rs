//! Seeded mutation tests for the static-analysis engine: inject one
//! known defect into a known-good generated design and assert that the
//! analyzer reports exactly the expected rule(s) — the injected defect's
//! `RuleId` plus any structural consequence the mutation necessarily
//! carries — and nothing else.
//!
//! Comparing *fresh* rules (mutated minus baseline) keeps the tests
//! honest on a realistic ~150-gate circuit: pre-existing findings in
//! the generated design (dead logic the generator happens to emit, for
//! example) neither mask an injected defect nor count against it.

use selective_mt::cells::library::Library;
use selective_mt::circuits::gen::{random_logic, RandomLogicConfig};
use selective_mt::netlist::check::{analyze, analyze_with_threads, LintPolicy, RuleId};
use selective_mt::netlist::netlist::{InstId, NetDriver, NetId, Netlist};
use std::collections::BTreeSet;

fn lib() -> Library {
    Library::industrial_130nm()
}

/// The known-good subject: a deterministic ~150-gate, 8-FF circuit.
fn subject(lib: &Library) -> Netlist {
    random_logic(
        lib,
        &RandomLogicConfig {
            gates: 150,
            ffs: 8,
            inputs: 12,
            window: 32,
            seed: 20260808,
        },
    )
    .expect("subject generates")
}

fn rule_set(netlist: &Netlist, lib: &Library) -> BTreeSet<RuleId> {
    analyze(netlist, lib, &LintPolicy::structural())
        .diagnostics
        .iter()
        .map(|d| d.rule)
        .collect()
}

/// Rules the mutation introduced: present after, absent before.
fn fresh_rules(mutated: &Netlist, baseline: &BTreeSet<RuleId>, lib: &Library) -> BTreeSet<RuleId> {
    rule_set(mutated, lib)
        .difference(baseline)
        .copied()
        .collect()
}

/// A gate-driven net with at least one load, to mutate around.
fn victim_net(netlist: &Netlist) -> (NetId, InstId) {
    netlist
        .nets()
        .find_map(|(id, net)| match net.driver {
            Some(NetDriver::Inst(pr)) if !net.loads.is_empty() && net.port_loads.is_empty() => {
                Some((id, pr.inst))
            }
            _ => None,
        })
        .expect("generated circuit has a gate-driven loaded net")
}

#[test]
fn dropped_driver_fires_undriven_net() {
    let lib = lib();
    let mut n = subject(&lib);
    let baseline = rule_set(&n, &lib);

    let (net, driver) = victim_net(&n);
    let out_pin = n.inst(driver).conns.iter().position(|c| *c == Some(net));
    n.disconnect(driver, out_pin.expect("driver is bound to its net"));

    let fresh = fresh_rules(&n, &baseline, &lib);
    // The loaded net losing its driver is the defect; the driver gate's
    // now-unconnected output pin is the mutation's structural shadow.
    let expected: BTreeSet<_> = [RuleId::UndrivenNet, RuleId::DanglingOutput].into();
    assert_eq!(fresh, expected, "fresh rules: {fresh:?}");
}

#[test]
fn cross_wired_clock_fires_unconstrained_endpoint() {
    let lib = lib();
    let mut n = subject(&lib);
    let baseline = rule_set(&n, &lib);

    // Move one flip-flop's CK pin from the clock tree onto a data net:
    // the clock probe no longer reaches it.
    let ff = n
        .instances()
        .find_map(|(id, inst)| lib.cell(inst.cell).is_sequential().then_some(id))
        .expect("subject has flip-flops");
    let ck = lib
        .cell(n.inst(ff).cell)
        .pin_index("CK")
        .expect("DFF has CK");
    let (data_net, _) = victim_net(&n);
    n.disconnect(ff, ck);
    n.connect(ff, ck, data_net).unwrap();

    let fresh = fresh_rules(&n, &baseline, &lib);
    let expected: BTreeSet<_> = [RuleId::UnconstrainedEndpoint].into();
    assert_eq!(fresh, expected, "fresh rules: {fresh:?}");
}

#[test]
fn injected_three_gate_cycle_fires_comb_loop() {
    let lib = lib();
    let mut n = subject(&lib);
    let baseline = rule_set(&n, &lib);

    let inv = lib.find_id("INV_X1_L").unwrap();
    let n1 = n.add_net("mut_loop_1");
    let n2 = n.add_net("mut_loop_2");
    let n3 = n.add_net("mut_loop_3");
    let u = n.add_instance("mut_u", inv, &lib);
    let v = n.add_instance("mut_v", inv, &lib);
    let w = n.add_instance("mut_w", inv, &lib);
    n.connect_by_name(u, "A", n3, &lib).unwrap();
    n.connect_by_name(u, "Z", n1, &lib).unwrap();
    n.connect_by_name(v, "A", n1, &lib).unwrap();
    n.connect_by_name(v, "Z", n2, &lib).unwrap();
    n.connect_by_name(w, "A", n2, &lib).unwrap();
    n.connect_by_name(w, "Z", n3, &lib).unwrap();
    // Tap the ring so it is observable: the cycle itself stays the only
    // fresh defect.
    n.expose_output("mut_loop_tap", n3);

    let fresh = fresh_rules(&n, &baseline, &lib);
    let expected: BTreeSet<_> = [RuleId::CombinationalLoop].into();
    assert_eq!(fresh, expected, "fresh rules: {fresh:?}");

    // Exactly one cycle, reported once, as an error.
    let report = analyze(&n, &lib, &LintPolicy::structural());
    let loops: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == RuleId::CombinationalLoop)
        .collect();
    assert_eq!(loops.len(), 1, "{loops:?}");
    assert!(
        loops[0].message.contains("3 gate(s)"),
        "{}",
        loops[0].message
    );
}

#[test]
fn fanout_overload_fires_max_fanout() {
    let lib = lib();
    let mut n = subject(&lib);
    let baseline = rule_set(&n, &lib);

    // Pile enough extra inverter loads on one net to clear the library
    // limit (64) regardless of its existing fanout.
    let inv = lib.find_id("INV_X1_L").unwrap();
    let (net, _) = victim_net(&n);
    for i in 0..70 {
        let u = n.add_instance(&format!("mut_load_{i}"), inv, &lib);
        n.connect_by_name(u, "A", net, &lib).unwrap();
        let z = n.add_net(&format!("mut_load_out_{i}"));
        n.connect_by_name(u, "Z", z, &lib).unwrap();
        n.expose_output(&format!("mut_load_port_{i}"), z);
    }

    let fresh = fresh_rules(&n, &baseline, &lib);
    // 70 extra sinks clear both electrical limits at once: the fanout
    // count (64) and the summed pin capacitance (256 fF).
    let expected: BTreeSet<_> = [RuleId::MaxFanout, RuleId::MaxLoad].into();
    assert_eq!(fresh, expected, "fresh rules: {fresh:?}");

    // The finding names the overloaded net and the measured fanout.
    let report = analyze(&n, &lib, &LintPolicy::structural());
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.rule == RuleId::MaxFanout)
        .expect("max-fanout diagnostic");
    assert!(diag.message.contains("64"), "{}", diag.message);
}

#[test]
fn report_and_digest_are_worker_count_invariant() {
    let lib = lib();
    let mut n = subject(&lib);
    // Analyze a *dirty* netlist — determinism must hold with findings
    // from several rules in flight across workers, not just on clean
    // designs.
    let (net, driver) = victim_net(&n);
    let out_pin = n.inst(driver).conns.iter().position(|c| *c == Some(net));
    n.disconnect(driver, out_pin.expect("driver is bound to its net"));

    let policy = LintPolicy::structural();
    let one = analyze_with_threads(&n, &lib, &policy, 1);
    for workers in [2, 4, 8] {
        let w = analyze_with_threads(&n, &lib, &policy, workers);
        assert_eq!(one.diagnostics, w.diagnostics, "workers={workers}");
        assert_eq!(one.digest(), w.digest(), "workers={workers}");
    }
    assert!(!one.diagnostics.is_empty());
}
