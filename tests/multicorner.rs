//! Multi-corner subsystem integration tests.
//!
//! The two equivalence contracts the corner work rests on:
//!
//! 1. restricted to the single identity (`typ`) corner, `MultiCornerSta`
//!    is **bit-identical** to the single-corner `smt_sta::analyze`
//!    results — arrivals, min arrivals, WNS and hold checks — on the
//!    generated benchmark circuits (this is what guarantees the default
//!    flow is unchanged by the corner plumbing);
//! 2. incremental per-corner updates after an arbitrary sequence of Vth
//!    swaps match a from-scratch `MultiCornerSta` rebuild.
//!
//! Plus the flow-level acceptance: `run_three_techniques` under a
//! three-corner set emits a per-corner signoff table for every
//! technique, and the default (single-corner) configuration produces
//! bit-identical primary results to an explicit typical-only set.

use selective_mt::prelude::*;
use smt_cells::cell::VthClass;
use smt_cells::corner::CornerLibrary;
use smt_netlist::netlist::InstId;
use smt_place::{place, PlacerConfig};
use smt_route::Parasitics;
use smt_sta::{analyze, Derating, StaConfig};

fn bench_circuit(seed: u64, gates: usize, lib: &Library) -> smt_netlist::netlist::Netlist {
    random_logic(
        lib,
        &RandomLogicConfig {
            gates,
            seed,
            ..RandomLogicConfig::default()
        },
    )
    .expect("valid random_logic config")
}

/// Property: over the generated benchmark circuits, the typical-corner
/// restriction of `MultiCornerSta` reproduces `analyze` bit-for-bit.
#[test]
fn typical_corner_multicorner_sta_is_bit_identical_to_single_corner() {
    let lib = Library::industrial_130nm();
    for seed in [1u64, 7, 19, 42, 77] {
        let n = bench_circuit(seed, 220, &lib);
        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        let cfg = StaConfig::default();
        let der = Derating::none();

        let full = analyze(&n, &lib, &par, &cfg, &der).unwrap();
        let mc =
            MultiCornerSta::new(&n, &lib, &par, &cfg, &der, &CornerSet::typical_only()).unwrap();
        assert_eq!(mc.num_corners(), 1);

        for (net, _) in n.nets() {
            assert_eq!(
                mc.arrival(0, net),
                full.arrival[net.index()],
                "seed {seed} net {net}: arrival"
            );
            assert_eq!(
                mc.arrival_min(0, net),
                full.arrival_min[net.index()],
                "seed {seed} net {net}: min arrival"
            );
        }
        assert_eq!(mc.wns_at(0), full.wns, "seed {seed}: wns");
        assert_eq!(mc.setup_wns(), full.wns, "seed {seed}: setup wns");
        assert_eq!(
            mc.hold_violations_at(0),
            full.hold_violations,
            "seed {seed}: hold checks"
        );

        // Same property through the *regeneration* path (not the clone
        // shortcut): a library generated from the identity-derived
        // technology times identically.
        let regen = Library::generate(Corner::typical().derive(&lib.tech), lib.config.clone());
        let full_regen = analyze(&n, &regen, &par, &cfg, &der).unwrap();
        assert_eq!(full_regen.wns, full.wns, "seed {seed}: regenerated lib");
        assert_eq!(full_regen.arrival, full.arrival, "seed {seed}");
    }
}

/// Equivalence: incremental per-corner updates across a random Vth-swap
/// sequence match a from-scratch rebuild at every corner.
#[test]
fn incremental_corner_updates_match_rebuild_after_random_swaps() {
    let lib = Library::industrial_130nm();
    let set = CornerSet::slow_typ_fast();
    for seed in [3u64, 12, 31] {
        let mut n = bench_circuit(seed, 200, &lib);
        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        let cfg = StaConfig::default();
        let der = Derating::none();
        let mut mc = MultiCornerSta::new(&n, &lib, &par, &cfg, &der, &set).unwrap();

        let ids: Vec<InstId> = n
            .instances()
            .filter(|(_, i)| lib.cell(i.cell).is_logic())
            .map(|(id, _)| id)
            .collect();
        let mut rng = smt_base::SplitMix64::new(seed ^ 0xC0);
        for _ in 0..20 {
            let id = *rng.choose(&ids);
            let cell = lib.cell(n.inst(id).cell);
            let target = if cell.vth == VthClass::Low {
                VthClass::High
            } else {
                VthClass::Low
            };
            let Some(v) = lib.variant_id(n.inst(id).cell, target) else {
                continue;
            };
            n.replace_cell(id, v, &lib).unwrap();
            mc.update_after_swap(&n, &par, &der, id);
        }

        let fresh = MultiCornerSta::new(&n, &lib, &par, &cfg, &der, &set).unwrap();
        for k in 0..set.len() {
            assert!(
                (mc.wns_at(k) - fresh.wns_at(k)).abs().ps() < 1e-6,
                "seed {seed} corner {k}: {} vs {}",
                mc.wns_at(k),
                fresh.wns_at(k)
            );
            let (a, b) = (mc.hold_violations_at(k), fresh.hold_violations_at(k));
            assert_eq!(a.len(), b.len(), "seed {seed} corner {k}: hold count");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.ff, y.ff, "seed {seed} corner {k}");
                assert!((x.arrival_min - y.arrival_min).abs().ps() < 1e-6);
            }
            // Spot-check arrivals across the whole net set.
            for (net, _) in n.nets() {
                assert!(
                    (mc.arrival(k, net) - fresh.arrival(k, net)).abs().ps() < 1e-6,
                    "seed {seed} corner {k} net {net}"
                );
            }
        }
    }
}

/// Flow-level acceptance: the three-technique comparison under a
/// three-corner set reports a per-corner leakage/WNS row for every
/// corner, setup holds at every setup corner, and the slow corner is the
/// binding one.
#[test]
fn three_technique_flow_reports_three_corner_tables() {
    let lib = Library::industrial_130nm();
    let mut cfg = FlowConfig {
        corners: CornerSet::slow_typ_fast(),
        period_margin: 1.35,
        ..FlowConfig::default()
    };
    cfg.dualvth.max_high_fraction = Some(0.7);
    let results = run_three_techniques(&circuit_b_rtl_sized(8), &lib, &cfg).unwrap();
    for r in &results {
        assert_eq!(r.corner_signoff.len(), 3, "one row per corner");
        let by_name = |name: &str| {
            r.corner_signoff
                .iter()
                .find(|c| c.corner.name == name)
                .unwrap_or_else(|| panic!("corner {name} missing"))
        };
        let (slow, typ, fast) = (by_name("slow"), by_name("typ"), by_name("fast"));
        // Setup met at every setup-checked corner, slow binding.
        assert!(slow.wns.ps() >= 0.0, "slow corner setup met");
        assert!(typ.wns.ps() >= 0.0);
        assert!(slow.wns <= typ.wns, "slow corner is the binding one");
        assert!(fast.wns >= typ.wns, "fast corner has the most slack");
        // Leakage collapses at the cold fast corner and peaks hot.
        assert!(fast.standby_leakage < typ.standby_leakage);
        // The corner table made it into the signoff report.
        let text = smt_core::render_signoff(r, &lib, 1);
        assert!(text.contains("-- corners --"), "report: {text}");
        for name in ["slow", "typ", "fast"] {
            assert!(text.contains(name), "report misses corner {name}");
        }
    }
    // Hold is clean at the fast corner after the multi-corner ECO.
    for r in &results {
        let fast = r
            .corner_signoff
            .iter()
            .find(|c| c.corner.name == "fast")
            .unwrap();
        assert_eq!(fast.hold_violations, 0, "fast-corner hold clean");
    }
}

/// Bit-identity of the *flow*: the default configuration and an explicit
/// typical-only corner set produce identical primary results (the corner
/// plumbing is invisible until multi-corner sets are requested).
#[test]
fn default_flow_matches_explicit_typical_corner_set_bitwise() {
    let lib = Library::industrial_130nm();
    let base = FlowConfig::default();
    let explicit = FlowConfig {
        corners: CornerSet::typical_only(),
        ..FlowConfig::default()
    };
    let rtl = circuit_b_rtl_sized(6);
    let a = run_flow(&rtl, &lib, &base).unwrap();
    let b = run_flow(&rtl, &lib, &explicit).unwrap();
    assert_eq!(a.clock_period, b.clock_period);
    assert_eq!(a.timing.wns, b.timing.wns);
    assert_eq!(a.standby_leakage, b.standby_leakage);
    assert_eq!(a.active_leakage, b.active_leakage);
    assert_eq!(a.area, b.area);
    assert_eq!(a.census.low, b.census.low);
    assert_eq!(a.census.high, b.census.high);
    // Exactly one corner row, the identity corner, mirroring the
    // primary figures bit-for-bit.
    assert_eq!(a.corner_signoff.len(), 1);
    assert!(a.corner_signoff[0].corner.is_identity());
    assert_eq!(a.corner_signoff[0].wns, a.timing.wns);
    assert_eq!(a.corner_signoff[0].standby_leakage, a.standby_leakage);
}

/// The corner-library invariant the whole subsystem rests on: cell ids
/// are stable across per-corner libraries, and the power reports price
/// the same netlist differently per corner.
#[test]
fn per_corner_leakage_report_spans_orders_of_magnitude() {
    let lib = Library::industrial_130nm();
    let n = bench_circuit(5, 120, &lib);
    let corners = CornerLibrary::build_set(&lib, &CornerSet::slow_typ_fast());
    let text = smt_power::render_corner_leakage(&n, &corners, smt_power::StateSource::Mean);
    assert!(text.contains("per-corner leakage"));
    for name in ["slow", "typ", "fast"] {
        assert!(text.contains(name), "{text}");
    }
    let total = |cl: &CornerLibrary| {
        smt_power::standby_leakage(&n, &cl.lib, smt_power::StateSource::Mean).total()
    };
    let (slow, typ, fast) = (total(&corners[0]), total(&corners[1]), total(&corners[2]));
    // Hot corners leak; the cold fast corner's leakage collapses even
    // though its devices are the fastest (Vth shift < temperature swing).
    assert!(fast.ua() < typ.ua() * 0.05, "cold {fast} vs hot {typ}");
    assert!(slow.ua() < typ.ua(), "higher-Vth slow corner leaks less");
}
