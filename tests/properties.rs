//! Property-based tests (proptest) on the core invariants the
//! reproduction rests on.

use proptest::prelude::*;
use selective_mt::cells::cell::VthClass;
use selective_mt::cells::library::Library;
use selective_mt::circuits::gen::{random_logic, RandomLogicConfig};
use selective_mt::core::smtgen::{
    insert_initial_switch, insert_output_holders, to_improved_mt_cells,
};
use selective_mt::netlist::check::{is_clean, lint, LintConfig};
use selective_mt::sim::check_equivalence;
use selective_mt::synth::aig::{elaborate, NodeKind};
use selective_mt::synth::ast::parse_rtl;
use selective_mt::synth::Aig;

fn lib() -> Library {
    Library::industrial_130nm()
}

// ---- AIG soundness against a reference interpreter ----------------------

fn eval_lit(aig: &Aig, lit: selective_mt::synth::Lit, inputs: &[bool]) -> bool {
    fn node_val(aig: &Aig, idx: u32, inputs: &[bool]) -> bool {
        match aig.node(idx) {
            NodeKind::ConstFalse => false,
            NodeKind::Input(i) => inputs[i as usize],
            NodeKind::And(a, b) => {
                (node_val(aig, a.node(), inputs) ^ a.is_complemented())
                    && (node_val(aig, b.node(), inputs) ^ b.is_complemented())
            }
        }
    }
    node_val(aig, lit.node(), inputs) ^ lit.is_complemented()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random arithmetic RTL: the elaborated AIG computes the same value
    /// as u64 arithmetic for any operand assignment.
    #[test]
    fn aig_matches_integer_arithmetic(a in 0u64..256, b in 0u64..256, op in 0usize..5) {
        let expr = match op {
            0 => "x + y",
            1 => "x - y",
            2 => "x ^ y",
            3 => "(x & y) | (x ^ y)",
            _ => "x < y ? x + y : x - y",
        };
        let width = 9usize;
        let rtl = format!(
            "module t;\ninput [{w}:0] x, y;\noutput [{w}:0] z;\nassign z = {expr};\nendmodule\n",
            w = width - 1
        );
        let m = parse_rtl(&rtl).unwrap();
        let d = elaborate(&m).unwrap();
        let mut inputs = vec![false; 2 * width];
        for i in 0..width {
            inputs[i] = a >> i & 1 == 1;
            inputs[width + i] = b >> i & 1 == 1;
        }
        let mut got = 0u64;
        for (i, (_, l)) in d.outputs.iter().enumerate() {
            if eval_lit(&d.aig, *l, &inputs) {
                got |= 1 << i;
            }
        }
        let mask = (1u64 << width) - 1;
        let expect = match op {
            0 => (a + b) & mask,
            1 => a.wrapping_sub(b) & mask,
            2 => (a ^ b) & mask,
            3 => ((a & b) | (a ^ b)) & mask,
            _ => if a < b { (a + b) & mask } else { a.wrapping_sub(b) & mask },
        };
        prop_assert_eq!(got, expect);
    }

    /// Structural hashing never grows the graph for repeated sub-terms.
    #[test]
    fn aig_strash_is_idempotent(seed in 0u32..1000) {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        // Build the same expression twice with operand orders shuffled by
        // the seed; the node count must not change the second time.
        let build = |g: &mut Aig| {
            let t0 = if seed % 2 == 0 { g.and(a, b) } else { g.and(b, a) };
            let t1 = g.or(t0, c);
            g.xor(t1, a)
        };
        let l1 = build(&mut g);
        let n1 = g.len();
        let l2 = build(&mut g);
        prop_assert_eq!(l1, l2);
        prop_assert_eq!(g.len(), n1);
    }

    /// Any random (seeded) netlist survives the improved-SMT transform
    /// pipeline with structure intact and function preserved.
    #[test]
    fn improved_transform_preserves_function(seed in 0u64..30) {
        let lib = lib();
        let cfg = RandomLogicConfig { gates: 120, ffs: 8, seed, ..RandomLogicConfig::default() };
        let golden = random_logic(&lib, &cfg);
        let mut dut = golden.clone();
        to_improved_mt_cells(&mut dut, &lib);
        insert_output_holders(&mut dut, &lib);
        insert_initial_switch(&mut dut, &lib, selective_mt::base::units::Volt::from_millivolts(50.0));
        let issues = lint(&dut, &lib, LintConfig { require_mt_wiring: true });
        prop_assert!(is_clean(&issues), "{issues:?}");
        let mut golden2 = golden.clone();
        if dut.find_net("mte").is_some() {
            golden2.add_input("mte");
        }
        let eq = check_equivalence(&golden2, &dut, &lib, 24, seed).unwrap();
        prop_assert!(eq.is_equivalent(), "{:?}", eq.mismatches.first());
    }

    /// Vth variant swaps never change cell pin-out compatibility, logic
    /// function, or the netlist's structural health.
    #[test]
    fn variant_swaps_preserve_structure(seed in 0u64..30, flavour in 0usize..3) {
        let lib = lib();
        let cfg = RandomLogicConfig { gates: 80, ffs: 4, seed, ..RandomLogicConfig::default() };
        let golden = random_logic(&lib, &cfg);
        let mut dut = golden.clone();
        let target = [VthClass::High, VthClass::MtEmbedded, VthClass::MtVgnd][flavour];
        let ids: Vec<_> = dut.instances().map(|(id, _)| id).collect();
        for id in ids {
            let cell = lib.cell(dut.inst(id).cell);
            if cell.vth == VthClass::Low && cell.role == selective_mt::cells::cell::CellRole::Logic {
                let v = lib.variant_id(dut.inst(id).cell, target).unwrap();
                dut.replace_cell(id, v, &lib).unwrap();
            }
        }
        let issues = lint(&dut, &lib, LintConfig::default());
        prop_assert!(is_clean(&issues), "{issues:?}");
        let eq = check_equivalence(&golden, &dut, &lib, 16, seed).unwrap();
        prop_assert!(eq.is_equivalent());
    }

    /// Steiner wirelength is sandwiched between the HPWL lower bound and
    /// the star-topology upper bound.
    #[test]
    fn steiner_wirelength_bounds(points in prop::collection::vec((0.0f64..500.0, 0.0f64..500.0), 2..12)) {
        use selective_mt::base::geom::{Point, Rect};
        use selective_mt::route::steiner_tree;
        let pins: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let tree = steiner_tree(&pins);
        let hpwl = Rect::bounding(pins.iter().copied()).unwrap().half_perimeter();
        let star: f64 = pins[1..].iter().map(|p| p.manhattan(pins[0])).sum();
        prop_assert!(tree.wirelength() >= hpwl - 1e-6, "below HPWL bound");
        prop_assert!(tree.wirelength() <= star + 1e-6, "worse than star");
        // Every sink is actually connected.
        for s in 1..pins.len() {
            prop_assert!(tree.path_length(s) >= pins[s].manhattan(pins[0]) - 1e-6);
        }
    }

    /// Placement is always legal: every cell inside the die and no two
    /// same-row cells overlapping, for any random design.
    #[test]
    fn placement_is_always_legal(seed in 0u64..20, gates in 50usize..250) {
        use selective_mt::place::{place, PlacerConfig};
        let lib = lib();
        let n = random_logic(&lib, &RandomLogicConfig { gates, seed, ..RandomLogicConfig::default() });
        let p = place(&n, &lib, &PlacerConfig::default());
        let mut by_row: std::collections::HashMap<i64, Vec<(f64, f64)>> = Default::default();
        for (id, inst) in n.instances() {
            let loc = p.loc(id);
            prop_assert!(p.die.contains(loc), "{} at {}", inst.name, loc);
            let w = lib.cell(inst.cell).area.um2() / lib.tech.row_height_um;
            by_row.entry((loc.y * 1000.0) as i64).or_default().push((loc.x, w));
        }
        for (_, mut cells) in by_row {
            cells.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for pair in cells.windows(2) {
                let (x0, w0) = pair[0];
                let (x1, w1) = pair[1];
                prop_assert!(
                    x1 - x0 >= (w0 + w1) / 2.0 - 1e-6,
                    "overlap at x {x0}/{x1} (widths {w0}/{w1})"
                );
            }
        }
    }

    /// Verilog write→parse is the identity on connectivity for any random
    /// design.
    #[test]
    fn verilog_roundtrip_any_design(seed in 0u64..20) {
        use selective_mt::netlist::verilog;
        let lib = lib();
        let n = random_logic(&lib, &RandomLogicConfig { gates: 80, seed, ..RandomLogicConfig::default() });
        let text = verilog::write_with_lib(&n, &lib);
        let back = verilog::parse(&text, &lib).unwrap();
        prop_assert_eq!(n.num_instances(), back.num_instances());
        let eq = check_equivalence(&n, &back, &lib, 16, seed).unwrap();
        prop_assert!(eq.is_equivalent(), "{:?}", eq.mismatches.first());
    }

    /// Subthreshold leakage is monotone in width and anti-monotone in Vth
    /// and stack depth.
    #[test]
    fn leakage_model_monotonicity(w in 0.5f64..50.0, vth in 0.15f64..0.5, depth in 1u32..4) {
        use selective_mt::base::units::Volt;
        let t = selective_mt::cells::Technology::industrial_130nm();
        let base = t.subthreshold_leak(w, Volt::new(vth), depth);
        prop_assert!(base.ua() > 0.0);
        prop_assert!(t.subthreshold_leak(w * 2.0, Volt::new(vth), depth) > base);
        prop_assert!(t.subthreshold_leak(w, Volt::new(vth + 0.05), depth) < base);
        prop_assert!(t.subthreshold_leak(w, Volt::new(vth), depth + 1) < base);
    }
}
