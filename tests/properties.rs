//! Property-style tests on the core invariants the reproduction rests on.
//!
//! The cases are driven by the workspace's own deterministic
//! [`SplitMix64`] generator rather than an external property-testing
//! framework, so the sampled inputs are identical on every run and every
//! platform.

use selective_mt::base::SplitMix64;
use selective_mt::cells::cell::VthClass;
use selective_mt::cells::library::Library;
use selective_mt::circuits::gen::{random_logic, RandomLogicConfig};
use selective_mt::core::smtgen::{
    insert_initial_switch, insert_output_holders, to_improved_mt_cells,
};
use selective_mt::netlist::check::{analyze, LintPolicy};
use selective_mt::sim::check_equivalence;
use selective_mt::synth::aig::{elaborate, NodeKind};
use selective_mt::synth::ast::parse_rtl;
use selective_mt::synth::Aig;

fn lib() -> Library {
    Library::industrial_130nm()
}

// ---- AIG soundness against a reference interpreter ----------------------

fn eval_lit(aig: &Aig, lit: selective_mt::synth::Lit, inputs: &[bool]) -> bool {
    fn node_val(aig: &Aig, idx: u32, inputs: &[bool]) -> bool {
        match aig.node(idx) {
            NodeKind::ConstFalse => false,
            NodeKind::Input(i) => inputs[i as usize],
            NodeKind::And(a, b) => {
                (node_val(aig, a.node(), inputs) ^ a.is_complemented())
                    && (node_val(aig, b.node(), inputs) ^ b.is_complemented())
            }
        }
    }
    node_val(aig, lit.node(), inputs) ^ lit.is_complemented()
}

/// Random arithmetic RTL: the elaborated AIG computes the same value
/// as u64 arithmetic for any operand assignment.
#[test]
fn aig_matches_integer_arithmetic() {
    let mut rng = SplitMix64::new(0xA16);
    for _ in 0..64 {
        let a = rng.next_below(256) as u64;
        let b = rng.next_below(256) as u64;
        let op = rng.next_below(5);
        let expr = match op {
            0 => "x + y",
            1 => "x - y",
            2 => "x ^ y",
            3 => "(x & y) | (x ^ y)",
            _ => "x < y ? x + y : x - y",
        };
        let width = 9usize;
        let rtl = format!(
            "module t;\ninput [{w}:0] x, y;\noutput [{w}:0] z;\nassign z = {expr};\nendmodule\n",
            w = width - 1
        );
        let m = parse_rtl(&rtl).unwrap();
        let d = elaborate(&m).unwrap();
        let mut inputs = vec![false; 2 * width];
        for i in 0..width {
            inputs[i] = a >> i & 1 == 1;
            inputs[width + i] = b >> i & 1 == 1;
        }
        let mut got = 0u64;
        for (i, (_, l)) in d.outputs.iter().enumerate() {
            if eval_lit(&d.aig, *l, &inputs) {
                got |= 1 << i;
            }
        }
        let mask = (1u64 << width) - 1;
        let expect = match op {
            0 => (a + b) & mask,
            1 => a.wrapping_sub(b) & mask,
            2 => (a ^ b) & mask,
            3 => ((a & b) | (a ^ b)) & mask,
            _ => {
                if a < b {
                    (a + b) & mask
                } else {
                    a.wrapping_sub(b) & mask
                }
            }
        };
        assert_eq!(got, expect, "op `{expr}` on a={a} b={b}");
    }
}

/// Structural hashing never grows the graph for repeated sub-terms.
#[test]
fn aig_strash_is_idempotent() {
    for seed in 0u32..16 {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        // Build the same expression twice with operand orders shuffled by
        // the seed; the node count must not change the second time.
        let build = |g: &mut Aig| {
            let t0 = if seed % 2 == 0 {
                g.and(a, b)
            } else {
                g.and(b, a)
            };
            let t1 = g.or(t0, c);
            g.xor(t1, a)
        };
        let l1 = build(&mut g);
        let n1 = g.len();
        let l2 = build(&mut g);
        assert_eq!(l1, l2);
        assert_eq!(g.len(), n1);
    }
}

/// Any random (seeded) netlist survives the improved-SMT transform
/// pipeline with structure intact and function preserved.
#[test]
fn improved_transform_preserves_function() {
    let lib = lib();
    for seed in 0u64..30 {
        let cfg = RandomLogicConfig {
            gates: 120,
            ffs: 8,
            seed,
            ..RandomLogicConfig::default()
        };
        let golden = random_logic(&lib, &cfg).expect("valid random_logic config");
        let mut dut = golden.clone();
        to_improved_mt_cells(&mut dut, &lib);
        insert_output_holders(&mut dut, &lib);
        insert_initial_switch(
            &mut dut,
            &lib,
            selective_mt::base::units::Volt::from_millivolts(50.0),
        );
        let report = analyze(&dut, &lib, &LintPolicy::signoff());
        assert!(report.is_clean(), "seed {seed}: {report:?}");
        let mut golden2 = golden.clone();
        if dut.find_net("mte").is_some() {
            golden2.add_input("mte");
        }
        let eq = check_equivalence(&golden2, &dut, &lib, 24, seed).unwrap();
        assert!(
            eq.is_equivalent(),
            "seed {seed}: {:?}",
            eq.mismatches.first()
        );
    }
}

/// Vth variant swaps never change cell pin-out compatibility, logic
/// function, or the netlist's structural health.
#[test]
fn variant_swaps_preserve_structure() {
    let lib = lib();
    for seed in 0u64..10 {
        for (flavour, target) in [VthClass::High, VthClass::MtEmbedded, VthClass::MtVgnd]
            .into_iter()
            .enumerate()
        {
            let cfg = RandomLogicConfig {
                gates: 80,
                ffs: 4,
                seed,
                ..RandomLogicConfig::default()
            };
            let golden = random_logic(&lib, &cfg).expect("valid random_logic config");
            let mut dut = golden.clone();
            let ids: Vec<_> = dut.instances().map(|(id, _)| id).collect();
            for id in ids {
                let cell = lib.cell(dut.inst(id).cell);
                if cell.vth == VthClass::Low
                    && cell.role == selective_mt::cells::cell::CellRole::Logic
                {
                    let v = lib.variant_id(dut.inst(id).cell, target).unwrap();
                    dut.replace_cell(id, v, &lib).unwrap();
                }
            }
            let report = analyze(&dut, &lib, &LintPolicy::structural());
            assert!(
                report.is_clean(),
                "seed {seed} flavour {flavour}: {report:?}"
            );
            let eq = check_equivalence(&golden, &dut, &lib, 16, seed).unwrap();
            assert!(eq.is_equivalent(), "seed {seed} flavour {flavour}");
        }
    }
}

/// Steiner wirelength is sandwiched between the HPWL lower bound and
/// the star-topology upper bound.
#[test]
fn steiner_wirelength_bounds() {
    use selective_mt::base::geom::{Point, Rect};
    use selective_mt::route::steiner_tree;
    let mut rng = SplitMix64::new(0x57E);
    for case in 0..64 {
        let n = 2 + rng.next_below(10);
        let pins: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.next_f64() * 500.0, rng.next_f64() * 500.0))
            .collect();
        let tree = steiner_tree(&pins);
        let hpwl = Rect::bounding(pins.iter().copied())
            .unwrap()
            .half_perimeter();
        let star: f64 = pins[1..].iter().map(|p| p.manhattan(pins[0])).sum();
        assert!(
            tree.wirelength() >= hpwl - 1e-6,
            "case {case}: below HPWL bound"
        );
        assert!(
            tree.wirelength() <= star + 1e-6,
            "case {case}: worse than star"
        );
        // Every sink is actually connected.
        for s in 1..pins.len() {
            assert!(tree.path_length(s) >= pins[s].manhattan(pins[0]) - 1e-6);
        }
    }
}

/// Placement is always legal: every cell inside the die and no two
/// same-row cells overlapping, for any random design.
#[test]
fn placement_is_always_legal() {
    use selective_mt::place::{place, PlacerConfig};
    let lib = lib();
    let mut rng = SplitMix64::new(0x91A);
    for seed in 0u64..16 {
        let gates = 50 + rng.next_below(200);
        let n = random_logic(
            &lib,
            &RandomLogicConfig {
                gates,
                seed,
                ..RandomLogicConfig::default()
            },
        )
        .expect("valid random_logic config");
        let p = place(&n, &lib, &PlacerConfig::default());
        let mut by_row: std::collections::HashMap<i64, Vec<(f64, f64)>> = Default::default();
        for (id, inst) in n.instances() {
            let loc = p.loc(id);
            assert!(p.die.contains(loc), "{} at {}", inst.name, loc);
            let w = lib.cell(inst.cell).area.um2() / lib.tech.row_height_um;
            by_row
                .entry((loc.y * 1000.0) as i64)
                .or_default()
                .push((loc.x, w));
        }
        for (_, mut cells) in by_row {
            cells.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in cells.windows(2) {
                let (x0, w0) = pair[0];
                let (x1, w1) = pair[1];
                assert!(
                    x1 - x0 >= (w0 + w1) / 2.0 - 1e-6,
                    "overlap at x {x0}/{x1} (widths {w0}/{w1})"
                );
            }
        }
    }
}

/// Verilog write→parse is the identity on connectivity for any random
/// design.
#[test]
fn verilog_roundtrip_any_design() {
    use selective_mt::netlist::verilog;
    let lib = lib();
    for seed in 0u64..20 {
        let n = random_logic(
            &lib,
            &RandomLogicConfig {
                gates: 80,
                seed,
                ..RandomLogicConfig::default()
            },
        )
        .expect("valid random_logic config");
        let text = verilog::write_with_lib(&n, &lib);
        let back = verilog::parse(&text, &lib).unwrap();
        assert_eq!(n.num_instances(), back.num_instances());
        let eq = check_equivalence(&n, &back, &lib, 16, seed).unwrap();
        assert!(
            eq.is_equivalent(),
            "seed {seed}: {:?}",
            eq.mismatches.first()
        );
    }
}

/// Subthreshold leakage is monotone in width and anti-monotone in Vth
/// and stack depth.
#[test]
fn leakage_model_monotonicity() {
    use selective_mt::base::units::Volt;
    let t = selective_mt::cells::Technology::industrial_130nm();
    let mut rng = SplitMix64::new(0x1EA);
    for _ in 0..64 {
        let w = 0.5 + rng.next_f64() * 49.5;
        let vth = 0.15 + rng.next_f64() * 0.35;
        let depth = 1 + rng.next_below(3) as u32;
        let base = t.subthreshold_leak(w, Volt::new(vth), depth);
        assert!(base.ua() > 0.0);
        assert!(t.subthreshold_leak(w * 2.0, Volt::new(vth), depth) > base);
        assert!(t.subthreshold_leak(w, Volt::new(vth + 0.05), depth) < base);
        assert!(t.subthreshold_leak(w, Volt::new(vth), depth + 1) < base);
    }
}

/// The levelized `TimingGraph` kernel is bit-identical to the legacy
/// sequential propagation on randomized netlists — including after Vth
/// swaps (which reorder net load lists), with tombstoned instances, and
/// across `Netlist::compact`, on both estimated and default parasitics.
#[test]
fn timing_graph_analysis_is_bit_identical_to_legacy() {
    use selective_mt::place::{place, PlacerConfig};
    use selective_mt::route::Parasitics;
    use selective_mt::sta::{analyze, analyze_baseline, Derating, StaConfig, TimingReport};

    fn assert_same(seed: u64, tag: &str, a: &TimingReport, b: &TimingReport) {
        assert_eq!(a.arrival, b.arrival, "seed {seed} [{tag}]: arrival");
        assert_eq!(a.arrival_min, b.arrival_min, "seed {seed} [{tag}]: min");
        assert_eq!(a.slew, b.slew, "seed {seed} [{tag}]: slew");
        assert_eq!(a.required, b.required, "seed {seed} [{tag}]: required");
        assert_eq!(a.wns, b.wns, "seed {seed} [{tag}]: wns");
        assert_eq!(a.tns, b.tns, "seed {seed} [{tag}]: tns");
        assert_eq!(
            a.hold_violations, b.hold_violations,
            "seed {seed} [{tag}]: hold"
        );
    }

    let lib = lib();
    let mut rng = SplitMix64::new(0x71A1);
    for seed in 0u64..8 {
        let gates = 120 + rng.next_below(240);
        let mut n = random_logic(
            &lib,
            &RandomLogicConfig {
                gates,
                seed,
                ..RandomLogicConfig::default()
            },
        )
        .expect("valid random_logic config");
        let p = place(&n, &lib, &PlacerConfig::default());
        let par = Parasitics::estimate(&n, &lib, &p);
        let cfg = StaConfig::default();
        let der = Derating::none();

        let fresh = |n: &selective_mt::netlist::netlist::Netlist, tag: &str| {
            let new = analyze(n, &lib, &par, &cfg, &der).unwrap();
            let old = analyze_baseline(n, &lib, &par, &cfg, &der).unwrap();
            assert_same(seed, tag, &new, &old);
            new
        };
        fresh(&n, "fresh");

        // Vth swaps rebind pins, permuting load lists (and hence per-net
        // cap-sum order and sink ordinals).
        let logic: Vec<_> = n
            .instances()
            .filter(|(_, i)| lib.cell(i.cell).is_logic())
            .map(|(id, _)| id)
            .collect();
        for k in 0..24usize {
            let id = logic[(k * 31) % logic.len()];
            if let Some(v) = lib.variant_id(n.inst(id).cell, VthClass::High) {
                n.replace_cell(id, v, &lib).unwrap();
            }
        }
        fresh(&n, "after swaps");

        // Tombstones: drop a scattering of gates (their fanout loses its
        // driver; both implementations must skip dead slots identically).
        for k in 0..6usize {
            n.remove_instance(logic[(7 + k * 53) % logic.len()]);
        }
        let before_compact = fresh(&n, "with tombstones");

        // Compaction renumbers instances but leaves nets (and therefore
        // every net-indexed timing quantity) untouched.
        let map = n.compact();
        assert_eq!(n.inst_capacity(), n.num_instances());
        let after = fresh(&n, "compacted");
        assert_eq!(
            before_compact.arrival, after.arrival,
            "seed {seed}: compact"
        );
        assert_eq!(before_compact.wns, after.wns, "seed {seed}: compact wns");
        assert_eq!(
            before_compact.hold_violations.len(),
            after.hold_violations.len(),
            "seed {seed}: compact hold count"
        );
        // The map accounts for every slot: tombstones vanish, survivors
        // resolve to in-bounds dense ids.
        let live = (0..map.old_capacity())
            .filter_map(|i| map.new_id(selective_mt::netlist::netlist::InstId(i as u32)))
            .count();
        assert_eq!(live, n.num_instances(), "seed {seed}: compact map");
    }
}
