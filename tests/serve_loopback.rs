//! End-to-end contracts of the flow service, over real loopback TCP:
//!
//! * a cold `flow` through `smtd` is bit-identical (same outcome
//!   digest) to an in-process engine run on the same canonical
//!   netlist, and a warm second `flow` reuses the characterised
//!   library, the session, and the finals checkpoint — asserted via
//!   the reply's stats, not timing;
//! * a coordinator-driven two-worker sharded suite survives a worker
//!   that dies mid-request (retry reassigns its shard) and its merged
//!   report digests identically to the unsharded in-process run;
//! * garbage frames and unknown methods poison only their own
//!   connection, and a drain leaves no half-served requests behind.

use selective_mt::base::json::Json;
use selective_mt::cells::library::Library;
use selective_mt::circuits::families::{generate, standard_suite, SuiteScale, Workload};
use selective_mt::core::cache::DesignCache;
use selective_mt::core::engine::{FlowConfig, FlowEngine, Technique};
use selective_mt::core::suite::SuiteOutcome;
use selective_mt::serve::{Client, Daemon, DaemonConfig, DaemonHandle, SuiteSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn daemon(tag: &str) -> DaemonHandle {
    Daemon::spawn(DaemonConfig {
        cache_dir: temp_dir(tag),
        drain_timeout: Duration::from_secs(60),
        ..DaemonConfig::default()
    })
    .expect("daemon boots")
}

fn connect(handle: &DaemonHandle) -> Client {
    Client::connect(&handle.addr().to_string(), Duration::from_secs(5)).expect("client connects")
}

fn obj(pairs: &[(&str, Json)]) -> Json {
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn stat_bool(reply: &Json, key: &str) -> Option<bool> {
    reply
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(Json::as_bool)
}

/// The smallest Smoke workload keeps full-flow tests fast.
fn smallest_smoke() -> Workload {
    standard_suite(SuiteScale::Smoke)
        .into_iter()
        .min_by_key(|w| w.config.estimated_gates())
        .expect("smoke suite is non-empty")
}

fn await_finished(handle: &DaemonHandle) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !handle.is_finished() {
        assert!(Instant::now() < deadline, "daemon did not drain in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn warm_flow_is_bit_identical_to_cold_and_in_process_runs() {
    let handle = daemon("flow");
    let mut client = connect(&handle);
    let workload = smallest_smoke();
    let params = obj(&[
        ("design", Json::Str(workload.name.clone())),
        ("session", Json::Str("warm".to_owned())),
    ]);

    // Cold: everything is built from scratch.
    let cold = client.call("flow", params.clone()).expect("cold flow");
    let cold_digest = cold
        .get("digest")
        .and_then(Json::as_str)
        .expect("flow reply carries a digest")
        .to_owned();
    assert_eq!(stat_bool(&cold, "library_warm"), Some(false));
    assert_eq!(stat_bool(&cold, "session_reused"), Some(false));
    assert_eq!(stat_bool(&cold, "finals_reused"), Some(false));
    let cold_misses = cold
        .get("stats")
        .and_then(|s| s.get("cache"))
        .and_then(|c| c.get("misses"))
        .and_then(Json::as_usize);
    assert_eq!(cold_misses, Some(1), "cold flow realises the design once");

    // Warm: same request is served from the session's finals
    // checkpoint, the library pool, and the design cache — and is
    // bit-identical.
    let warm = client.call("flow", params).expect("warm flow");
    assert_eq!(
        warm.get("digest").and_then(Json::as_str),
        Some(cold_digest.as_str())
    );
    assert_eq!(stat_bool(&warm, "library_warm"), Some(true));
    assert_eq!(stat_bool(&warm, "session_reused"), Some(true));
    assert_eq!(stat_bool(&warm, "finals_reused"), Some(true));
    let warm_hits = warm
        .get("stats")
        .and_then(|s| s.get("cache"))
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_usize);
    assert_eq!(warm_hits, Some(1), "warm flow reads the cached design");

    // A what-if forks the warm session without disturbing it: an ECO
    // with the default hold budget reproduces the base digest.
    let eco = client
        .call(
            "eco",
            obj(&[
                ("design", Json::Str(workload.name.clone())),
                ("session", Json::Str("warm".to_owned())),
                ("hold_rounds", Json::Num(f64::from(6))),
            ]),
        )
        .expect("eco what-if");
    assert_eq!(stat_bool(&eco, "session_reused"), Some(true));
    let runs = eco.get("runs").and_then(Json::as_arr).expect("eco runs");
    assert_eq!(runs.len(), 1);
    assert_eq!(
        runs[0].get("digest").and_then(Json::as_str),
        Some(cold_digest.as_str()),
        "an ECO at the session's own hold budget is the identity fork"
    );

    // In-process reference: same canonical netlist (through a design
    // cache of our own), same configuration, one-shot engine.
    let lib = Library::industrial_130nm();
    let mut cache =
        DesignCache::open(temp_dir("flow-reference"), &lib).expect("reference cache opens");
    let netlist = cache
        .get_or_insert(
            &workload.name,
            workload.config.family(),
            workload.config.fingerprint(),
            &lib,
            || generate(&lib, &workload.config).map_err(|e| e.to_string()),
        )
        .expect("reference design realises");
    let config = FlowConfig {
        technique: Technique::DualVth,
        ..FlowConfig::default()
    };
    let result = FlowEngine::new(&lib, config)
        .run_netlist(netlist)
        .expect("reference flow");
    let reference = format!("{:016x}", SuiteOutcome::from_flow(&result).digest());
    assert_eq!(
        cold_digest, reference,
        "daemon flow and in-process engine run must be bit-identical"
    );

    // The wire `lint` method answers from the same warm design cache
    // and digests identically to a local analysis of the same netlist.
    let lint = client
        .call("lint", obj(&[("design", Json::Str(workload.name.clone()))]))
        .expect("lint");
    assert_eq!(lint.get("clean").and_then(Json::as_bool), Some(true));
    let local = selective_mt::netlist::check::analyze(
        &cache
            .get_or_insert(
                &workload.name,
                workload.config.family(),
                workload.config.fingerprint(),
                &lib,
                || generate(&lib, &workload.config).map_err(|e| e.to_string()),
            )
            .expect("reference design realises again"),
        &lib,
        &selective_mt::netlist::check::LintPolicy::signoff(),
    );
    assert_eq!(
        lint.get("digest").and_then(Json::as_str),
        Some(format!("{:016x}", local.digest()).as_str()),
        "wire lint digest must match a local signoff analysis"
    );

    // Drain: the shutdown reply confirms, and the accept loop exits.
    let bye = client.call("shutdown", obj(&[])).expect("shutdown");
    assert_eq!(bye.get("draining").and_then(Json::as_bool), Some(true));
    await_finished(&handle);
    handle.wait();
}

#[test]
fn coordinator_retries_past_a_dead_worker_and_merges_bit_identical() {
    // Two live workers, plus a "worker" that accepts a connection and
    // immediately drops it — a worker dying mid-request.
    let worker_a = daemon("worker-a");
    let worker_b = daemon("worker-b");
    let dead = std::net::TcpListener::bind("127.0.0.1:0").expect("dead listener binds");
    let dead_addr = dead.local_addr().expect("dead addr");
    std::thread::spawn(move || {
        for stream in dead.incoming() {
            drop(stream);
        }
    });

    let coordinator = daemon("coordinator");
    let mut client = connect(&coordinator);
    // The dead worker is registered FIRST, so shard 0's dispatch hits
    // it and must retry onto a live worker.
    for spec in [
        format!("tcp:{dead_addr}"),
        format!("tcp:{}", worker_a.addr()),
        format!("tcp:{}", worker_b.addr()),
    ] {
        client
            .call("register-worker", obj(&[("worker", Json::Str(spec))]))
            .expect("register worker");
    }

    let spec = SuiteSpec {
        take: Some(2),
        equiv_cycles: 8,
        ..SuiteSpec::default()
    };
    let mut params = match spec.to_json() {
        Json::Obj(m) => m,
        other => panic!("spec JSON is an object, got {other:?}"),
    };
    params.insert("shards".to_owned(), Json::Num(2.0));
    // No local fallback: the merge below proves the work really ran on
    // the TCP workers.
    params.insert("local_fallback".to_owned(), Json::Bool(false));
    let reply = client
        .call_timeout("suite", Json::Obj(params), Some(Duration::from_secs(1800)))
        .expect("sharded suite");

    assert_eq!(reply.get("passed").and_then(Json::as_bool), Some(true));
    let shards = reply
        .get("shards")
        .and_then(Json::as_arr)
        .expect("shard table");
    assert_eq!(shards.len(), 2);
    for shard in shards {
        let executor = shard
            .get("executor")
            .and_then(Json::as_str)
            .expect("executor");
        assert!(
            executor.starts_with("tcp:"),
            "every shard must run on a TCP worker, got `{executor}`"
        );
    }
    let shard0 = shards
        .iter()
        .find(|s| s.get("shard").and_then(Json::as_usize) == Some(0))
        .expect("shard 0 row");
    assert!(
        shard0
            .get("attempts")
            .and_then(Json::as_usize)
            .expect("attempts")
            >= 2,
        "shard 0 hits the dead worker first and must retry"
    );

    // In-process reference: the same spec, unsharded, fresh cache.
    let lib = Library::industrial_130nm();
    let mut cache =
        DesignCache::open(temp_dir("suite-reference"), &lib).expect("reference cache opens");
    let workloads = spec.workloads();
    let all: Vec<usize> = (0..workloads.len()).collect();
    let suite = spec
        .build_shard(&lib, &mut cache, &workloads, 0, &all)
        .expect("reference suite builds");
    let report = suite.run(&lib);
    assert!(report.all_passed());
    assert_eq!(
        reply.get("digest").and_then(Json::as_str),
        Some(format!("{:016x}", report.digest()).as_str()),
        "coordinator merge must be bit-identical to the unsharded in-process run"
    );

    for handle in [coordinator, worker_a, worker_b] {
        let mut c = connect(&handle);
        c.call("shutdown", obj(&[])).expect("shutdown");
        await_finished(&handle);
        handle.wait();
    }
}

#[test]
fn garbage_frames_and_unknown_methods_poison_only_their_connection() {
    use std::io::{BufRead, BufReader, Write};

    let handle = daemon("hygiene");

    // A raw connection spewing non-JSON gets one bad-frame error and a
    // closed connection.
    let mut raw = std::net::TcpStream::connect(handle.addr()).expect("raw connect");
    raw.write_all(b"this is not json\n").expect("send garbage");
    raw.flush().expect("flush");
    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut line = String::new();
    BufReader::new(raw.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("error reply");
    assert!(line.contains("bad-frame"), "got: {line}");

    // The daemon is still perfectly healthy for everyone else.
    let mut client = connect(&handle);
    assert_eq!(
        client.call("ping", obj(&[])).expect("ping"),
        Json::Bool(true)
    );

    // Unknown methods are structured errors, not disconnects.
    let err = client.call("frobnicate", obj(&[]));
    match err {
        Err(selective_mt::serve::CallError::Remote(e)) => {
            assert_eq!(e.code, "unknown-method");
        }
        other => panic!("expected a remote error, got {other:?}"),
    }
    assert_eq!(
        client.call("ping", obj(&[])).expect("ping again"),
        Json::Bool(true)
    );

    // Status reflects the traffic and the drain finishes clean.
    let status = client.call("status", obj(&[])).expect("status");
    assert!(
        status
            .get("served")
            .and_then(Json::as_usize)
            .expect("served")
            >= 3
    );
    client.call("shutdown", obj(&[])).expect("shutdown");
    await_finished(&handle);
    handle.wait();
}
