//! Standby-mode semantics across the stack: the paper's output-holder rule
//! must guarantee that, with the footer switches off, no powered cell ever
//! observes a floating input — on any design the transforms are given.

use selective_mt::base::units::Volt;
use selective_mt::cells::cell::CellRole;
use selective_mt::cells::library::Library;
use selective_mt::circuits::gen::{random_logic, RandomLogicConfig};
use selective_mt::core::smtgen::{
    insert_initial_switch, insert_output_holders, to_improved_mt_cells,
};
use selective_mt::netlist::netlist::PortDir;
use selective_mt::sim::{Mode, Simulator, Value};

fn check_no_powered_floats(seed: u64) {
    let lib = Library::industrial_130nm();
    let mut n = random_logic(
        &lib,
        &RandomLogicConfig {
            gates: 200,
            ffs: 12,
            seed,
            ..RandomLogicConfig::default()
        },
    )
    .expect("valid random_logic config");
    to_improved_mt_cells(&mut n, &lib);
    let holders = insert_output_holders(&mut n, &lib);
    insert_initial_switch(&mut n, &lib, Volt::from_millivolts(50.0));

    let mut sim = Simulator::new(&n, &lib).expect("acyclic");
    for (i, (_, p)) in n
        .ports()
        .filter(|(_, p)| p.dir == PortDir::Input && !p.is_clock)
        .enumerate()
    {
        sim.set_input(p.net, Value::from_bool(i % 3 != 0));
    }
    for (id, inst) in n.instances() {
        if lib.cell(inst.cell).is_sequential() {
            sim.set_ff_state(id, Value::from_bool(id.index() % 2 == 0));
        }
    }
    sim.set_mode(Mode::Standby);
    sim.propagate(&n, &lib);

    let mut floats = Vec::new();
    for (_, inst) in n.instances() {
        let cell = lib.cell(inst.cell);
        let powered = match cell.role {
            CellRole::Logic => !cell.is_mt(),
            CellRole::Sequential => true,
            _ => false,
        };
        if !powered {
            continue;
        }
        let pins: Vec<usize> = if cell.is_sequential() {
            cell.pin_index("D").into_iter().collect()
        } else {
            cell.logic_input_pins()
        };
        for pin in pins {
            if let Some(net) = inst.net_on(pin) {
                if sim.value(net) == Value::X {
                    floats.push(format!("{}:{}", inst.name, cell.pins[pin].name));
                }
            }
        }
    }
    assert!(
        floats.is_empty(),
        "seed {seed}: {} powered inputs floating ({} holders inserted): {:?}",
        floats.len(),
        holders,
        &floats[..floats.len().min(5)]
    );
}

#[test]
fn holder_rule_protects_powered_cells_across_seeds() {
    for seed in 0..10 {
        check_no_powered_floats(seed);
    }
}

#[test]
fn active_mode_is_unaffected_by_the_gating_fabric() {
    // With MTE on (active mode), the transformed design computes exactly
    // the golden function — checked cycle-accurately over FF state too.
    let lib = Library::industrial_130nm();
    for seed in [3u64, 17, 29] {
        let golden = random_logic(
            &lib,
            &RandomLogicConfig {
                gates: 150,
                ffs: 10,
                seed,
                ..RandomLogicConfig::default()
            },
        )
        .expect("valid random_logic config");
        let mut dut = golden.clone();
        to_improved_mt_cells(&mut dut, &lib);
        insert_output_holders(&mut dut, &lib);
        insert_initial_switch(&mut dut, &lib, Volt::from_millivolts(50.0));
        let mut golden2 = golden.clone();
        golden2.add_input("mte");
        let eq = selective_mt::sim::check_equivalence(&golden2, &dut, &lib, 64, seed).unwrap();
        assert!(
            eq.is_equivalent(),
            "seed {seed}: {:?}",
            eq.mismatches.first()
        );
    }
}

#[test]
fn standby_cuts_leakage_on_the_same_state() {
    // For the same frozen state, gating must strictly reduce total leakage
    // vs the ungated low-Vth design.
    use selective_mt::power::{standby_leakage, StateSource};
    let lib = Library::industrial_130nm();
    let golden = random_logic(
        &lib,
        &RandomLogicConfig {
            gates: 200,
            ffs: 8,
            seed: 77,
            ..RandomLogicConfig::default()
        },
    )
    .expect("valid random_logic config");
    let mut dut = golden.clone();
    to_improved_mt_cells(&mut dut, &lib);
    insert_output_holders(&mut dut, &lib);
    insert_initial_switch(&mut dut, &lib, Volt::from_millivolts(50.0));

    let before = standby_leakage(&golden, &lib, StateSource::Mean).total();
    let after = standby_leakage(&dut, &lib, StateSource::Mean).total();
    assert!(
        after.ua() < before.ua() * 0.2,
        "gating should cut >80%: before {before}, after {after}"
    );
}
