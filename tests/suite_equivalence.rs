//! End-to-end functional-equivalence contract of the flow: for every
//! generator family and the figure circuit, the post-flow (dual-Vth +
//! ECO, and improved-SMT) netlist must compute exactly the function of
//! the input netlist — the flow must never change logic.
//!
//! The checks go through `smt_sim::equiv::check_equivalence` directly
//! (not the flow's own verification report), with a stimulus seed
//! unrelated to the flow's, so a bug in the flow-internal verification
//! path cannot mask a real divergence.

use selective_mt::cells::library::Library;
use selective_mt::circuits::families::{generate, standard_suite, SuiteScale};
use selective_mt::circuits::figures::fig_example;
use selective_mt::core::flow::{FlowConfig, Technique};
use selective_mt::core::suite::WorkloadSuite;
use selective_mt::netlist::netlist::Netlist;
use selective_mt::sim::check_equivalence;

fn lib() -> Library {
    Library::industrial_130nm()
}

/// Runs one netlist through the flow and asserts pre/post equivalence
/// via `smt_sim::equiv` under two independent stimulus seeds.
fn assert_flow_preserves_function(name: &str, input: Netlist, technique: Technique, l: &Library) {
    let cfg = FlowConfig {
        technique,
        ..FlowConfig::default()
    };
    let result = selective_mt::core::flow::run_flow_netlist(input.clone(), l, &cfg)
        .unwrap_or_else(|e| panic!("{name} under {technique}: flow failed: {e}"));
    // The transforms may add the `mte` standby-control input; mirror it
    // on the reference so the port sets match (same rule the flow's own
    // verify step applies).
    let mut reference = input;
    selective_mt::core::verify::mirror_control_ports(&mut reference, &result.netlist);
    for seed in [0xBEEF, 0x5EED] {
        let eq = check_equivalence(&reference, &result.netlist, l, 96, seed)
            .unwrap_or_else(|e| panic!("{name} under {technique}: equiv setup failed: {e}"));
        assert!(
            eq.is_equivalent(),
            "{name} under {technique} diverged (seed {seed}): {:?}",
            eq.mismatches.first()
        );
    }
}

#[test]
fn every_family_survives_the_dual_vth_flow() {
    let l = lib();
    for w in standard_suite(SuiteScale::Smoke) {
        let n = generate(&l, &w.config).unwrap();
        assert_flow_preserves_function(&w.name, n, Technique::DualVth, &l);
    }
}

#[test]
fn every_family_survives_the_improved_smt_flow() {
    let l = lib();
    for w in standard_suite(SuiteScale::Smoke) {
        let n = generate(&l, &w.config).unwrap();
        assert_flow_preserves_function(&w.name, n, Technique::ImprovedSmt, &l);
    }
}

#[test]
fn figure_circuit_survives_both_flows() {
    let l = lib();
    for technique in [Technique::DualVth, Technique::ImprovedSmt] {
        let fig = fig_example(&l);
        assert_flow_preserves_function("fig_example", fig.netlist, technique, &l);
    }
}

/// The ROADMAP-scale acceptance run: the ≥50k-gate large pipeline
/// completes the full flow through the batch driver and stays
/// functionally identical. Takes minutes in release (and far longer in
/// debug), so it is opt-in:
///
/// ```text
/// cargo test --release --test suite_equivalence -- --ignored
/// ```
///
/// (equivalent to `cargo run --release -p smt-bench --bin suite -- --scale large`,
/// which runs all five large designs).
#[test]
#[ignore = "minutes-long 50k-gate flow; run with --ignored in release"]
fn fifty_thousand_gate_design_completes_the_flow() {
    let l = lib();
    let big = standard_suite(SuiteScale::Large)
        .into_iter()
        .next()
        .expect("large suite has the pipeline first");
    let n = generate(&l, &big.config).unwrap();
    assert!(n.num_instances() >= 50_000, "{}", n.num_instances());
    let mut suite = WorkloadSuite::new(FlowConfig {
        technique: Technique::DualVth,
        ..FlowConfig::default()
    });
    suite.push(&big.name, n);
    let report = suite.run(&l);
    assert!(report.all_passed(), "{}", report.render());
    assert_eq!(
        report.rows[0].outcome.as_ref().unwrap().equivalent,
        Some(true)
    );
}

#[test]
fn suite_driver_reports_the_same_equivalence() {
    // The batch driver's independent check must agree with the direct
    // per-design checks above.
    let l = lib();
    let mut suite = WorkloadSuite::new(FlowConfig {
        technique: Technique::ImprovedSmt,
        ..FlowConfig::default()
    })
    .with_equiv_cycles(64);
    for w in standard_suite(SuiteScale::Smoke) {
        suite.push(&w.name, generate(&l, &w.config).unwrap());
    }
    let report = suite.run(&l);
    assert!(report.all_passed(), "{}", report.render());
    for row in &report.rows {
        assert_eq!(
            row.outcome.as_ref().unwrap().equivalent,
            Some(true),
            "{}",
            row.name
        );
    }
}
