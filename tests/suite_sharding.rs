//! Shard/merge and design-cache contracts of the suite runtime:
//!
//! * merging K shard reports (in any order, through the JSON
//!   round-trip) is bit-identical in all deterministic content to the
//!   unsharded run on the Smoke scale;
//! * a warm design cache serves every design with zero misses and the
//!   re-run's report digests identically to the run that filled it.

use selective_mt::cells::library::Library;
use selective_mt::circuits::families::{generate, standard_suite, SuiteScale};
use selective_mt::core::cache::DesignCache;
use selective_mt::core::flow::{FlowConfig, Technique};
use selective_mt::core::suite::{render_suite, ShardStrategy, SuiteReport, WorkloadSuite};

fn lib() -> Library {
    Library::industrial_130nm()
}

fn smoke_suite(l: &Library) -> WorkloadSuite {
    let mut suite = WorkloadSuite::new(FlowConfig {
        technique: Technique::DualVth,
        ..FlowConfig::default()
    })
    // Equivalence coverage at full stimulus depth lives in
    // tests/suite_equivalence.rs; a shallower check keeps this file
    // about sharding while still exercising the verdict plumbing.
    .with_equiv_cycles(16);
    for w in standard_suite(SuiteScale::Smoke) {
        let netlist = generate(l, &w.config)
            .unwrap_or_else(|e| panic!("generating workload `{}`: {e}", w.name));
        suite.push(&w.name, netlist);
    }
    suite
}

#[test]
fn sharded_smoke_run_merges_bit_identical_to_unsharded() {
    let l = lib();
    let suite = smoke_suite(&l);
    let unsharded = suite.run(&l);
    assert!(unsharded.all_passed(), "{}", unsharded.render());

    for strategy in [ShardStrategy::ByGates, ShardStrategy::ByIndex] {
        let plan = suite.plan(2, strategy);
        let shard0 = suite.run_shard(&l, &plan, 0);
        let shard1 = suite.run_shard(&l, &plan, 1);
        assert_eq!(
            shard0.rows.len() + shard1.rows.len(),
            unsharded.rows.len(),
            "{strategy:?}: plans must partition the suite"
        );

        // Through the JSON round trip (what CI's --shard/--merge does),
        // merged in swapped order to exercise commutativity.
        let reload = |r: &SuiteReport| {
            SuiteReport::from_json(&r.to_json()).expect("shard report JSON round trip")
        };
        let merged = SuiteReport::merge([reload(&shard1), reload(&shard0)]).expect("shards merge");
        assert!(merged.missing_ordinals().is_empty(), "{strategy:?}");
        assert_eq!(
            merged.digest(),
            unsharded.digest(),
            "{strategy:?}: merged shards differ from the unsharded run:\n{}\nvs\n{}",
            render_suite(&merged),
            render_suite(&unsharded),
        );

        // Spot-check the digest is honest: rows align field by field,
        // and the derived stage profile matches stage for stage.
        for (a, b) in merged.rows.iter().zip(&unsharded.rows) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ordinal, b.ordinal);
            assert_eq!(a.gates_in, b.gates_in);
            let oa = a
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("workload `{}` failed: {e}", a.name));
            let ob = b
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("workload `{}` failed: {e}", b.name));
            assert_eq!(oa.cells, ob.cells, "{}", a.name);
            assert_eq!(oa.wns, ob.wns, "{}", a.name);
            assert_eq!(oa.standby_leakage, ob.standby_leakage, "{}", a.name);
            assert_eq!(oa.census, ob.census, "{}", a.name);
            assert_eq!(oa.corner_signoff.len(), ob.corner_signoff.len());
        }
        let (pa, pb) = (merged.stage_profile(), unsharded.stage_profile());
        assert_eq!(pa.rows.len(), pb.rows.len());
        for (a, b) in pa.rows.iter().zip(&pb.rows) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.runs, b.runs, "{}", a.id);
            assert_eq!(a.wns_delta, b.wns_delta, "{}", a.id);
            assert_eq!(a.wns_runs, b.wns_runs, "{}", a.id);
        }

        // Merging the same shard twice must be rejected, not silently
        // double-counted.
        assert!(SuiteReport::merge([reload(&shard0), reload(&shard0)]).is_err());
    }
}

#[test]
fn warm_design_cache_reproduces_the_cold_run_bit_identically() {
    let l = lib();
    let dir = std::env::temp_dir().join(format!("smt-suite-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Two passes over the same two-design suite, through the cache. The
    // first fills it (all misses); the second must be served entirely
    // from disk and reproduce the report digest exactly.
    let mut digests = Vec::new();
    for pass in 0..2 {
        let mut cache = DesignCache::open(&dir, &l)
            .unwrap_or_else(|e| panic!("opening design cache at {}: {e}", dir.display()));
        let mut suite = WorkloadSuite::new(FlowConfig {
            technique: Technique::DualVth,
            ..FlowConfig::default()
        })
        .with_equiv_cycles(16);
        for w in standard_suite(SuiteScale::Smoke).into_iter().take(2) {
            let netlist = cache
                .get_or_insert(
                    &w.name,
                    w.config.family(),
                    w.config.fingerprint(),
                    &l,
                    || generate(&l, &w.config).map_err(|e| e.to_string()),
                )
                .unwrap_or_else(|e| panic!("pass {pass}: caching `{}`: {e}", w.name));
            suite.push(&w.name, netlist);
        }
        let stats = cache.stats();
        if pass == 0 {
            assert_eq!((stats.hits, stats.misses), (0, 2), "cold pass fills");
        } else {
            assert_eq!((stats.hits, stats.misses), (2, 0), "warm pass is 100% hits");
        }
        let mut report = suite.run(&l);
        report.cache = Some(stats);
        assert!(report.all_passed(), "pass {pass}: {}", report.render());
        digests.push(report.digest());
    }
    assert_eq!(
        digests[0], digests[1],
        "warm-cache run must be bit-identical to the run that filled the cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
